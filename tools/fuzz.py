#!/usr/bin/env python3
"""Standalone launcher for the differential fuzz harness.

Equivalent to ``repro fuzz``; exists so CI and developers can run the
fuzzer without installing the package::

    PYTHONPATH=src python tools/fuzz.py --cases 300 --seed 0

Exit status is 0 iff every oracle agreed on every case; any divergence
exits 1 after writing replayable repro files (see ``docs/generator.md``).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fuzz import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
