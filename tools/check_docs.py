#!/usr/bin/env python
"""Documentation checks, runnable locally and in CI.

Two gates:

1. **Links** — every intra-repository markdown link in ``README.md``
   and ``docs/*.md`` must resolve to an existing file (external URLs
   are ignored, anchors are stripped).
2. **CLI smoke** — every ``repro`` command line documented in
   ``docs/cli.md`` fenced code blocks must actually run: the
   documented subcommand is invoked with ``--help`` in a subprocess
   and must exit 0.  A documented verb that argparse no longer knows
   fails the build.
3. **No orphan pages** — every page under ``docs/`` must be linked
   from at least one *other* markdown file (``README.md`` or a
   sibling page), so new documentation is always reachable from the
   docs graph instead of silently unindexed.

Run::

    python tools/check_docs.py
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path
from typing import List

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL = re.compile(r"^[a-z][a-z0-9+.-]*://|^mailto:")


def check_links() -> List[str]:
    """Broken intra-repo link descriptions, one per offence."""
    errors = []
    for doc in DOC_FILES:
        for match in _LINK.finditer(doc.read_text()):
            target = match.group(1).split("#", 1)[0]
            if not target or _EXTERNAL.match(match.group(1)):
                continue
            if not (doc.parent / target).resolve().exists():
                errors.append(
                    f"{doc.relative_to(ROOT)}: broken link -> {target}"
                )
    return errors


def check_orphans() -> List[str]:
    """Docs pages no other markdown file links to, one per offence."""
    linked = set()
    for doc in DOC_FILES:
        for match in _LINK.finditer(doc.read_text()):
            target = match.group(1).split("#", 1)[0]
            if not target or _EXTERNAL.match(match.group(1)):
                continue
            resolved = (doc.parent / target).resolve()
            if resolved != doc.resolve():
                linked.add(resolved)
    return [
        f"docs/{page.name}: orphan page (no other markdown links to it)"
        for page in sorted((ROOT / "docs").glob("*.md"))
        if page.resolve() not in linked
    ]


def documented_cli_lines() -> List[str]:
    """Every ``repro`` invocation inside docs/cli.md code fences."""
    lines = []
    in_fence = False
    for line in (ROOT / "docs" / "cli.md").read_text().splitlines():
        if line.strip().startswith("```"):
            in_fence = not in_fence
            continue
        stripped = line.strip()
        if in_fence and "-m repro" in stripped and not stripped.startswith("#"):
            lines.append(stripped)
    return lines


def _subcommand(line: str) -> List[str]:
    """The subcommand tokens of one documented line (may be empty)."""
    tokens = line.split()
    rest = tokens[tokens.index("repro") + 1 :]
    skip_value = False
    for token in rest:
        if skip_value:
            skip_value = False
            continue
        if token.startswith("--"):
            # global options before the subcommand take a value
            skip_value = "=" not in token and token == "--workspace"
            continue
        return [token]
    return []


def check_cli_lines(lines: List[str]) -> List[str]:
    """Failures from running each documented subcommand with ``--help``."""
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    errors = []
    seen = set()
    for line in lines:
        argv = _subcommand(line)
        key = tuple(argv)
        if key in seen:
            continue
        seen.add(key)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", *argv, "--help"],
            capture_output=True,
            text=True,
            env=env,
            cwd=ROOT,
        )
        if proc.returncode != 0:
            errors.append(
                f"docs/cli.md: `repro {' '.join(argv)} --help` exited "
                f"{proc.returncode}: {proc.stderr.strip().splitlines()[-1:]}"
            )
    return errors


def main() -> int:
    link_errors = check_links()
    orphan_errors = check_orphans()
    lines = documented_cli_lines()
    cli_errors = check_cli_lines(lines)
    for error in link_errors + orphan_errors + cli_errors:
        print(f"FAIL {error}")
    if not link_errors:
        print(f"OK   {len(DOC_FILES)} markdown file(s), links resolve")
    if not orphan_errors:
        print("OK   every docs page is linked from another page")
    if not cli_errors:
        print(f"OK   {len(lines)} documented command line(s) run --help")
    return 1 if (link_errors or orphan_errors or cli_errors) else 0


if __name__ == "__main__":
    sys.exit(main())
