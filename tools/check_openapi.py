#!/usr/bin/env python
"""OpenAPI / documentation drift gate, runnable locally and in CI.

The service's route table (``repro.service.app.ROUTES``) is the single
source of truth for the HTTP surface: the running server dispatches
from it and ``GET /v1/openapi.json`` renders it.  This tool keeps the
other two representations honest:

1. **Route table ↔ spec** — the generated OpenAPI 3.1 document must
   contain exactly one operation per route (same path templates, same
   methods, unique ``operationId`` per route name), declare bearer
   security on every non-public route, and mark exactly the legacy
   routes deprecated.
2. **Spec ↔ docs** — every *current* (non-deprecated) route must be
   documented in ``docs/service.md`` as a backtick-quoted
   ``METHOD /path`` entry, and every such documented entry must name a
   route that actually exists (deprecated aliases included) — stale
   docs fail the build in both directions.
3. **Error codes** — every code in the service's error vocabulary
   (``repro.service.routes.ERROR_CODES``) must be documented in
   ``docs/service.md``, and the spec's ``ErrorEnvelope`` schema must
   enumerate exactly that vocabulary.

Run::

    python tools/check_openapi.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.service.app import ROUTES  # noqa: E402
from repro.service.routes import ERROR_CODES, build_openapi  # noqa: E402

SERVICE_DOC = ROOT / "docs" / "service.md"

#: A documented endpoint: `` `GET /v1/registries/{registry}` `` etc.
_DOC_ENDPOINT = re.compile(r"`(GET|POST|PUT|DELETE|PATCH) (/[^`\s]*)`")


def check_spec_against_routes() -> List[str]:
    """Drift between the route table and the generated OpenAPI spec."""
    errors = []
    spec = build_openapi(ROUTES)
    spec_ops = {
        (method.upper(), path)
        for path, methods in spec["paths"].items()
        for method in methods
    }
    route_ops = {(route.method, route.label) for route in ROUTES}
    for method, path in sorted(route_ops - spec_ops):
        errors.append(f"spec: route {method} {path} has no operation")
    for method, path in sorted(spec_ops - route_ops):
        errors.append(f"spec: operation {method} {path} has no route")

    operation_ids = [
        operation["operationId"]
        for methods in spec["paths"].values()
        for operation in methods.values()
    ]
    if sorted(operation_ids) != sorted(route.name for route in ROUTES):
        errors.append(
            "spec: operationIds do not match route names one-to-one"
        )
    for path, methods in spec["paths"].items():
        for method, operation in methods.items():
            route = next(
                r
                for r in ROUTES
                if r.method == method.upper() and r.label == path
            )
            if bool(operation.get("deprecated")) != route.deprecated:
                errors.append(
                    f"spec: {method.upper()} {path} deprecation flag "
                    f"disagrees with the route table"
                )
            has_security = "security" in operation
            if has_security != (route.auth != "public"):
                errors.append(
                    f"spec: {method.upper()} {path} security declaration "
                    f"disagrees with auth class {route.auth!r}"
                )

    enum = spec["components"]["schemas"]["ErrorEnvelope"]["properties"][
        "error"
    ]["properties"]["code"]["enum"]
    if enum != sorted(ERROR_CODES):
        errors.append(
            "spec: ErrorEnvelope code enum does not match ERROR_CODES"
        )
    return errors


def check_docs_against_routes() -> List[str]:
    """Drift between docs/service.md and the route table."""
    errors = []
    text = SERVICE_DOC.read_text()
    documented = {
        (method, path) for method, path in _DOC_ENDPOINT.findall(text)
    }
    current = {
        (route.method, route.label)
        for route in ROUTES
        if not route.deprecated
    }
    known = {(route.method, route.label) for route in ROUTES}
    for method, path in sorted(current - documented):
        errors.append(
            f"docs/service.md: current endpoint {method} {path} "
            "is undocumented"
        )
    for method, path in sorted(documented - known):
        errors.append(
            f"docs/service.md: documents {method} {path}, which no "
            "route serves"
        )
    return errors


def check_error_codes_documented() -> List[str]:
    """Every error code the service can emit appears in the docs."""
    text = SERVICE_DOC.read_text()
    return [
        f"docs/service.md: error code `{code}` is undocumented"
        for code in sorted(ERROR_CODES)
        if f"`{code}`" not in text
    ]


def main() -> int:
    spec_errors = check_spec_against_routes()
    doc_errors = check_docs_against_routes()
    code_errors = check_error_codes_documented()
    for error in spec_errors + doc_errors + code_errors:
        print(f"FAIL {error}")
    if not spec_errors:
        print(f"OK   spec covers the route table ({len(ROUTES)} routes)")
    if not doc_errors:
        print("OK   docs/service.md matches the served endpoints")
    if not code_errors:
        print(
            f"OK   all {len(ERROR_CODES)} error codes are documented"
        )
    return 1 if (spec_errors or doc_errors or code_errors) else 0


if __name__ == "__main__":
    sys.exit(main())
