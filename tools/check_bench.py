#!/usr/bin/env python
"""Benchmark trajectory checks, runnable locally and in CI.

Every benchmark emits a ``BENCH_*.json`` artifact recording what it
measured and the floor it gates.  This tool is the CI
``bench-trajectory`` job's brain — it

1. **validates** each artifact against a small schema (required keys,
   value types, correctness flags that must be true),
2. **gates the floor** the artifact itself declares (e.g.
   ``speedup >= min_speedup_floor``), and
3. **gates the trajectory**: the fresh metric must not regress more
   than 20 % below the committed floors in ``benchmarks/floors.json``
   (``BENCH_*.json`` artifacts themselves are generated, gitignored
   files — the floors file is the versioned baseline).

Run against freshly produced artifacts (every registered artifact must
be present)::

    python tools/check_bench.py --artifacts path/to/downloaded

or with no arguments to self-check whatever artifacts exist at the
repository root plus the floors file's consistency::

    python tools/check_bench.py
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

ROOT = Path(__file__).resolve().parent.parent

#: The versioned baseline the trajectory gate compares against.
FLOORS_PATH = ROOT / "benchmarks" / "floors.json"

#: How far below the committed floor a fresh run may land before the
#: trajectory job fails (20 %).
REGRESSION_TOLERANCE = 0.20

_NUMBER = "number"
_BOOL = "bool"
_INT = "int"

#: Per-artifact schema: required keys with types, the primary metric,
#: the floor key it must clear, and flags that must be true.  Optional
#: entries: ``extra_floors`` — further ``(metric, floor_key)`` pairs
#: gated as ``metric >= floor``; ``ceilings`` — ``(metric,
#: ceiling_key)`` pairs gated as ``metric <= ceiling`` (latency-style
#: bounds).  Only the primary metric participates in the trajectory
#: comparison against ``floors.json``.
SCHEMAS: Dict[str, Dict[str, object]] = {
    "BENCH_sharded_batch.json": {
        "required": {
            "n_workspaces": _INT,
            "speedup_eval": _NUMBER,
            "speedup_mc": _NUMBER,
            "identical_across_worker_counts": _BOOL,
            "matches_sequential_reference": _BOOL,
            "min_speedup_floor": _NUMBER,
        },
        "metric": "speedup_eval",
        "floor": "min_speedup_floor",
        "must_be_true": (
            "identical_across_worker_counts",
            "matches_sequential_reference",
        ),
    },
    "BENCH_registry_index.json": {
        "required": {
            "n_workspaces": _INT,
            "speedup_warm": _NUMBER,
            "byte_identical_warm_output": _BOOL,
            "matches_no_cache_output": _BOOL,
            "min_speedup_floor": _NUMBER,
        },
        "metric": "speedup_warm",
        "floor": "min_speedup_floor",
        "must_be_true": (
            "byte_identical_warm_output",
            "matches_no_cache_output",
        ),
    },
    "BENCH_service.json": {
        "required": {
            "throughput_rps": _NUMBER,
            "speedup_warm_over_cold": _NUMBER,
            "byte_identical_warm_responses": _BOOL,
            "min_throughput_floor_rps": _NUMBER,
            "min_warm_over_cold_floor": _NUMBER,
            "federated_threads": _INT,
            "federated_writer_edits": _INT,
            "federated_throughput_rps": _NUMBER,
            "federated_p99_ms": _NUMBER,
            "federated_reader_bytes_stable": _BOOL,
            "min_federated_throughput_floor_rps": _NUMBER,
            "max_federated_p99_floor_ms": _NUMBER,
        },
        "metric": "throughput_rps",
        "floor": "min_throughput_floor_rps",
        "must_be_true": (
            "byte_identical_warm_responses",
            "federated_reader_bytes_stable",
        ),
        "extra_floors": (
            ("federated_throughput_rps", "min_federated_throughput_floor_rps"),
        ),
        "ceilings": (("federated_p99_ms", "max_federated_p99_floor_ms"),),
    },
    "BENCH_group.json": {
        "required": {
            "n_workspaces": _INT,
            "n_members": _INT,
            "speedup": _NUMBER,
            "identical_to_scalar_loop": _BOOL,
            "min_speedup_floor": _NUMBER,
        },
        "metric": "speedup",
        "floor": "min_speedup_floor",
        "must_be_true": ("identical_to_scalar_loop",),
    },
    "BENCH_delta.json": {
        "required": {
            "n_workspaces": _INT,
            "speedup_delta": _NUMBER,
            "byte_identical_delta_output": _BOOL,
            "delta_slice_only": _BOOL,
            "min_speedup_floor": _NUMBER,
        },
        "metric": "speedup_delta",
        "floor": "min_speedup_floor",
        "must_be_true": (
            "byte_identical_delta_output",
            "delta_slice_only",
        ),
    },
    "BENCH_generator.json": {
        "required": {
            "n_workspaces": _INT,
            "throughput_wps": _NUMBER,
            "deterministic": _BOOL,
            "distinct_seeds_distinct": _BOOL,
            "min_throughput_floor_wps": _NUMBER,
        },
        "metric": "throughput_wps",
        "floor": "min_throughput_floor_wps",
        "must_be_true": (
            "deterministic",
            "distinct_seeds_distinct",
        ),
    },
    "BENCH_faults.json": {
        "required": {
            "n_workspaces": _INT,
            "speedup_no_fault": _NUMBER,
            "n_retried_under_kill": _INT,
            "completed_under_worker_kill": _BOOL,
            "byte_identical_under_faults": _BOOL,
            "min_no_fault_floor": _NUMBER,
        },
        "metric": "speedup_no_fault",
        "floor": "min_no_fault_floor",
        "must_be_true": (
            "completed_under_worker_kill",
            "byte_identical_under_faults",
        ),
    },
    "BENCH_obs.json": {
        "required": {
            "n_workspaces": _INT,
            "n_spans": _INT,
            "n_stage_names": _INT,
            "overhead_pct": _NUMBER,
            "speedup_traced": _NUMBER,
            "trace_valid_chrome_json": _BOOL,
            "has_worker_spans": _BOOL,
            "stage_names_cover_pipeline": _BOOL,
            "byte_identical_under_tracing": _BOOL,
            "min_traced_speedup_floor": _NUMBER,
        },
        "metric": "speedup_traced",
        "floor": "min_traced_speedup_floor",
        "must_be_true": (
            "trace_valid_chrome_json",
            "has_worker_spans",
            "stage_names_cover_pipeline",
            "byte_identical_under_tracing",
        ),
    },
}


def _type_ok(value: object, kind: str) -> bool:
    """Schema type check; bools never masquerade as numbers."""
    if kind == _BOOL:
        return isinstance(value, bool)
    if kind == _INT:
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def load_floors(path: Optional[Path] = None) -> Dict[str, Dict[str, float]]:
    """The committed floors, keyed by artifact name (``_comment`` aside)."""
    payload = json.loads((path or FLOORS_PATH).read_text())
    return {
        name: floors
        for name, floors in payload.items()
        if not name.startswith("_")
    }


def check_floors_file(floors: Dict[str, Dict[str, float]]) -> List[str]:
    """The floors file must cover every schema's primary metric."""
    errors = []
    for name, schema in SCHEMAS.items():
        entry = floors.get(name)
        if entry is None:
            errors.append(f"floors.json: no committed floor for {name}")
        elif not _type_ok(entry.get(schema["metric"]), _NUMBER):
            errors.append(
                f"floors.json: {name} needs a numeric "
                f"{schema['metric']!r} floor"
            )
    for name in sorted(set(floors) - set(SCHEMAS)):
        errors.append(
            f"floors.json: floor for unknown artifact {name} "
            "(register in SCHEMAS)"
        )
    return errors


def check_artifact(
    path: Path,
    floors: Optional[Dict[str, Dict[str, float]]] = None,
) -> List[str]:
    """All failures for one artifact file (empty list = pass)."""
    name = path.name
    schema = SCHEMAS.get(name)
    if schema is None:
        return [f"{name}: unknown benchmark artifact (register in SCHEMAS)"]
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{name}: unreadable artifact: {exc}"]
    if not isinstance(payload, dict):
        return [f"{name}: artifact must be a JSON object"]

    errors: List[str] = []
    for key, kind in schema["required"].items():
        if key not in payload:
            errors.append(f"{name}: missing required key {key!r}")
        elif not _type_ok(payload[key], kind):
            errors.append(
                f"{name}: key {key!r} must be {kind}, "
                f"got {payload[key]!r}"
            )
    if errors:
        return errors

    for flag in schema["must_be_true"]:
        if payload[flag] is not True:
            errors.append(f"{name}: correctness flag {flag!r} is false")
    metric, floor = payload[schema["metric"]], payload[schema["floor"]]
    if metric < floor:
        errors.append(
            f"{name}: {schema['metric']} {metric:.2f} is below the "
            f"declared floor {floor:.2f}"
        )
    for extra_metric, extra_floor in schema.get("extra_floors", ()):
        if payload[extra_metric] < payload[extra_floor]:
            errors.append(
                f"{name}: {extra_metric} {payload[extra_metric]:.2f} is "
                f"below the declared floor {payload[extra_floor]:.2f}"
            )
    for bounded, ceiling in schema.get("ceilings", ()):
        if payload[bounded] > payload[ceiling]:
            errors.append(
                f"{name}: {bounded} {payload[bounded]:.2f} exceeds the "
                f"declared ceiling {payload[ceiling]:.2f}"
            )
    if floors is not None:
        baseline = floors.get(name, {}).get(schema["metric"])
        if _type_ok(baseline, _NUMBER):
            allowed = (1.0 - REGRESSION_TOLERANCE) * baseline
            if metric < allowed:
                errors.append(
                    f"{name}: {schema['metric']} {metric:.2f} regressed "
                    f"more than {REGRESSION_TOLERANCE:.0%} below the "
                    f"committed floor {baseline:.2f} "
                    f"(allowed >= {allowed:.2f})"
                )
    return errors


def check_directory(
    artifacts: Path,
    floors: Dict[str, Dict[str, float]],
    require_all: bool = True,
) -> List[str]:
    """Failures across one artifact directory.

    ``require_all`` (the CI mode) also fails when a registered
    benchmark produced no artifact at all.
    """
    errors: List[str] = []
    seen = set()
    for path in sorted(artifacts.rglob("BENCH_*.json")):
        seen.add(path.name)
        errors.extend(check_artifact(path, floors))
    if require_all:
        for missing in sorted(set(SCHEMAS) - seen):
            errors.append(f"{missing}: artifact was not produced")
    return errors


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; exit 1 on any validation or regression failure."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help=(
            "directory of freshly produced BENCH_*.json files; every "
            "registered benchmark must be present (default: self-check "
            "whatever artifacts exist at the repository root)"
        ),
    )
    args = parser.parse_args(argv)
    floors = load_floors()
    errors = check_floors_file(floors)
    artifacts = Path(args.artifacts) if args.artifacts else ROOT
    errors += check_directory(
        artifacts, floors, require_all=args.artifacts is not None
    )
    for error in errors:
        print(f"FAIL {error}")
    if not errors:
        print(
            f"OK   benchmark artifacts validate, clear their declared "
            f"floors and hold the committed trajectory "
            f"({len(SCHEMAS)} registered)"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
