"""The 14 reuse criteria and the Fig. 1 objective hierarchy.

§II adapts the NeOn criteria set to the multimedia domain, producing
"14 criteria organized according to four main objectives": Reuse Cost,
Understandability, Integration (workload) and Reliability.  This module
is the single source of truth for their identifiers, display labels
(the truncated strings GMAA shows in Fig. 1), scales and default
component utilities — every other layer (assessment, case study,
reporting) references criteria through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.hierarchy import Hierarchy, ObjectiveNode
from ..core.scales import ContinuousScale, DiscreteScale
from ..core.utility import (
    DiscreteUtility,
    PiecewiseLinearUtility,
    banded_discrete_utility,
    linear_utility,
)

__all__ = [
    "Criterion",
    "CRITERIA",
    "CRITERIA_BY_ID",
    "ATTRIBUTE_IDS",
    "OBJECTIVES",
    "ROOT_OBJECTIVE",
    "PRECISE_BEST_ATTRIBUTES",
    "build_hierarchy",
    "default_scales",
    "default_utilities",
]

ROOT_OBJECTIVE = "Reuse Ontology"

#: The four mid-level objectives, in Fig. 1 order.
OBJECTIVES: Tuple[str, ...] = (
    "Reuse Cost",
    "Understandability",
    "Integration",
    "Reliability",
)


@dataclass(frozen=True)
class Criterion:
    """One lowest-level objective and the attribute measuring it.

    ``attribute`` is the stable python identifier; ``objective`` is the
    full node name; ``short`` is the truncated GMAA display label from
    Fig. 1 (kept for figure-faithful rendering); ``levels`` the
    discrete scale labels worst-first (``None`` for the continuous
    ``ValueT`` criterion).
    """

    attribute: str
    objective: str
    short: str
    branch: str
    description: str
    levels: "Tuple[str, ...] | None"


CRITERIA: Tuple[Criterion, ...] = (
    Criterion(
        "financial_cost",
        "Financial cost of reuse",
        "Financ. Cost",
        "Reuse Cost",
        "Estimate of the economic cost of accessing and using the "
        "candidate ontology (best level: freely available).",
        ("prohibitive", "expensive", "affordable", "free"),
    ),
    Criterion(
        "required_time",
        "Required time for reuse",
        "RequiredTime",
        "Reuse Cost",
        "The time it takes to access the candidate ontology "
        "(best level: immediately available).",
        ("months", "weeks", "days", "immediate"),
    ),
    Criterion(
        "documentation_quality",
        "Documentation Quality",
        "Doc Quality",
        "Understandability",
        "Whether communicable material (wiki, article, web page) "
        "explains the candidate ontology's modeling decisions.",
        ("none", "sparse", "adequate", "rich"),
    ),
    Criterion(
        "external_knowledge",
        "Avail. of External Knowl",
        "Ext Knowledg",
        "Understandability",
        "Whether the ontology references documentation sources and/or "
        "experts are easily available.",
        ("unavailable", "scarce", "reachable", "abundant"),
    ),
    Criterion(
        "code_clarity",
        "Code Clarity",
        "Code Clarity",
        "Understandability",
        "Whether the code is easy to understand and modify: unified "
        "patterns, clear and coherent definitions and comments.",
        ("opaque", "confusing", "readable", "clear"),
    ),
    Criterion(
        "functional_requirements",
        "N. Functional Requirements",
        "Funct Requir",
        "Integration",
        "Number of competency questions covered, transformed onto "
        "[0, MNVLT] via the ValueT formula (MNVLT = 3).",
        None,
    ),
    Criterion(
        "knowledge_extraction",
        "Adequacy Knwlgd Extraction",
        "Knowl Extrac",
        "Integration",
        "Whether it is easy to identify and extract the parts of the "
        "candidate ontology to be reused.",
        ("entangled", "hard", "feasible", "modular"),
    ),
    Criterion(
        "naming_conventions",
        "Adequacy naming conventions",
        "Naming Conv",
        "Integration",
        "Low if names are not intuitive, medium if clearly "
        "understandable, high if taken from a standard (W3C, MPEG7...).",
        ("unknown", "low", "medium", "high"),
    ),
    Criterion(
        "implementation_language",
        "Adequacy Implement Language",
        "Imp Language",
        "Integration",
        "High when candidate and target share the language; medium "
        "when a transformation mechanism exists; low otherwise.",
        ("unknown", "low", "medium", "high"),
    ),
    Criterion(
        "test_availability",
        "Availability of test",
        "Availab test",
        "Reliability",
        "Whether tests are available for the candidate ontology.",
        ("none", "few", "partial", "extensive"),
    ),
    Criterion(
        "former_evaluation",
        "Former Evaluation",
        "Former Eval",
        "Reliability",
        "Whether the ontology has been properly evaluated, i.e. has "
        "passed a set of unit tests.",
        ("unevaluated", "failed", "partially", "passed"),
    ),
    Criterion(
        "team_reputation",
        "Development team reputation",
        "Team Reputat",
        "Reliability",
        "Whether the development team is reliable.",
        ("unknown", "novice", "known", "renowned"),
    ),
    Criterion(
        "purpose_reliability",
        "Purpose Reliability",
        "Purpose Rel",
        "Reliability",
        "0-unknown, 1-low (academic use), 2-medium (transformed from "
        "standard metadata), 3-high (developed in a project) — Fig. 4.",
        ("unknown", "low", "medium", "high"),
    ),
    Criterion(
        "practical_support",
        "Practical Support",
        "Prac Support",
        "Reliability",
        "Whether well-known projects or ontologies have reused the "
        "candidate; project + ontology-design-pattern use scores highest.",
        ("none", "isolated", "adopted", "widely adopted"),
    ),
)

CRITERIA_BY_ID: Dict[str, Criterion] = {c.attribute: c for c in CRITERIA}
ATTRIBUTE_IDS: Tuple[str, ...] = tuple(c.attribute for c in CRITERIA)

#: Range of the continuous ValueT attribute (Fig. 3).
_VALUET_SCALE = ContinuousScale("ValueT", 0.0, 3.0, ascending=True, unit="ValueT")


def build_hierarchy() -> Hierarchy:
    """The Fig. 1 objective hierarchy (4 objectives, 14 leaves)."""
    children = []
    for objective in OBJECTIVES:
        leaves = [
            ObjectiveNode(c.objective, attribute=c.attribute, description=c.description)
            for c in CRITERIA
            if c.branch == objective
        ]
        children.append(ObjectiveNode(objective, children=leaves))
    return Hierarchy(ObjectiveNode(ROOT_OBJECTIVE, children=children))


def default_scales() -> Dict[str, object]:
    """Attribute name -> scale, as §II establishes them."""
    scales: Dict[str, object] = {}
    for criterion in CRITERIA:
        if criterion.levels is None:
            scales[criterion.attribute] = _VALUET_SCALE
        else:
            scales[criterion.attribute] = DiscreteScale(
                criterion.attribute, criterion.levels
            )
    return scales


#: Attributes whose best level keeps the precise utility 1.0.  Fig. 4
#: anchors *Purpose reliability*'s level 3 at exactly 1.0; the other
#: discrete criteria keep an imprecise best level ``[1 - band, 1]``.
#: That imprecision is what lets §V's screening retain 20 of 23
#: candidates: with every best level pinned at 1.0, the potentially-
#: optimal set collapses to near-clones of the leader, contradicting
#: the published result (see DESIGN.md).
PRECISE_BEST_ATTRIBUTES: Tuple[str, ...] = ("purpose_reliability",)


def default_utilities(
    band_width: float = 0.20,
    precise_best_attributes: Tuple[str, ...] = PRECISE_BEST_ATTRIBUTES,
) -> Dict[str, object]:
    """Component utilities in the paper's Figs. 3-4 shapes.

    The continuous criterion gets the precise linear utility of Fig. 3;
    every discrete criterion gets the banded imprecise utilities of
    Fig. 4 (level k spans ``[k*band, (k+1)*band]``).  Attributes listed
    in ``precise_best_attributes`` give the best level exactly 1.0 (the
    Fig. 4 shape); the rest keep an imprecise best ``[1 - band, 1]``.
    """
    scales = default_scales()
    utilities: Dict[str, object] = {}
    for criterion in CRITERIA:
        scale = scales[criterion.attribute]
        if isinstance(scale, ContinuousScale):
            utilities[criterion.attribute] = linear_utility(scale)
        else:
            utilities[criterion.attribute] = banded_discrete_utility(
                scale,
                band_width=band_width,
                best_is_precise=criterion.attribute in precise_best_attributes,
            )
    return utilities
