"""The end-to-end NeOn reuse pipeline: search → assess → select → integrate.

The four activities the NeOn Methodology prescribes for reuse ([8],
§I of the paper), chained over an :class:`~repro.ontology.corpus.
OntologyRegistry`:

1. **search** — keyword query over the registry (the paper found 40
   multimedia ontologies);
2. **assess** — measure every hit on the 14 criteria
   (:mod:`repro.neon.assessment`);
3. **select** — evaluate the additive model, optionally run the §V
   screening, then apply the CQ-coverage rule
   (:mod:`repro.neon.selection`);
4. **integrate** — merge the selected ontologies into the target
   network (:mod:`repro.ontology.merge`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..core.dominance import DominanceResult, screen
from ..core.model import AdditiveModel, Evaluation
from ..core.problem import DecisionProblem
from ..core.weights import WeightSystem
from ..ontology.corpus import OntologyRegistry, SearchHit
from ..ontology.cq import CompetencyQuestion
from ..ontology.merge import MergeReport, integrate
from ..ontology.model import Ontology
from .assessment import CandidateAssessment, batch_assessment_table
from .criteria import build_hierarchy, default_utilities
from .selection import SelectionResult, select

__all__ = ["PipelineReport", "ReusePipeline"]


@dataclass(frozen=True)
class PipelineReport:
    """Everything one pipeline run produced, stage by stage."""

    query: str
    hits: Tuple[SearchHit, ...]
    assessments: Tuple[CandidateAssessment, ...]
    problem: DecisionProblem
    evaluation: Evaluation
    screening: Optional[DominanceResult]
    selection: SelectionResult
    network: Optional[Ontology]
    merge_report: Optional[MergeReport]

    @property
    def candidate_names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.assessments)

    @property
    def selected(self) -> Tuple[str, ...]:
        return self.selection.selected

    def summary(self) -> str:
        """A terse multi-line account of the run."""
        lines = [
            f"query: {self.query!r}",
            f"hits: {len(self.hits)}  assessed: {len(self.assessments)}",
            f"best ranked: {self.evaluation.best.name} "
            f"(avg utility {self.evaluation.best.average:.4f})",
        ]
        if self.screening is not None:
            lines.append(
                f"screening discarded: {list(self.screening.discarded) or 'none'}"
            )
        lines.append(
            f"selected {self.selection.n_selected} covering "
            f"{self.selection.coverage_ratio:.0%} of CQs: "
            f"{', '.join(self.selection.selected)}"
        )
        if self.merge_report is not None:
            lines.append(
                f"network: {self.merge_report.n_entities} entities, "
                f"{len(self.merge_report.collisions)} alignment candidates"
            )
        return "\n".join(lines)


class ReusePipeline:
    """A configured reuse process over one registry and CQ set.

    ``weights`` defaults to uniform local weights over the Fig. 1
    hierarchy; pass the elicited system (e.g. the case study's Fig. 5
    intervals) for paper-faithful behaviour.  ``utilities`` defaults to
    the Figs. 3-4 shapes from :func:`repro.neon.criteria.
    default_utilities`.
    """

    def __init__(
        self,
        registry: OntologyRegistry,
        questions: Sequence[CompetencyQuestion],
        target: Optional[Ontology] = None,
        weights: Optional[WeightSystem] = None,
        utilities: Optional[Dict[str, object]] = None,
        target_language: str = "OWL",
    ) -> None:
        if not questions:
            raise ValueError("the pipeline needs the target's competency questions")
        self.registry = registry
        self.questions = tuple(questions)
        self.target = target
        self.hierarchy = build_hierarchy()
        self.weights = weights or WeightSystem.uniform(self.hierarchy)
        self.utilities = utilities or default_utilities()
        self.target_language = target_language

    # ------------------------------------------------------------------
    def run(
        self,
        query: str,
        min_score: float = 0.0,
        coverage_threshold: float = 0.70,
        run_screening: bool = False,
        integrate_selection: bool = True,
        max_candidates: Optional[int] = None,
    ) -> PipelineReport:
        """Execute all four activities and return the full report."""
        hits = self.registry.search(query, min_score=min_score)
        if not hits:
            raise ValueError(
                f"no registry entries match query {query!r} at "
                f"min_score {min_score}"
            )
        if max_candidates is not None:
            hits = hits[:max_candidates]

        assessments, table = batch_assessment_table(
            [self.registry.get(hit.name) for hit in hits],
            self.questions,
            self.target_language,
        )
        problem = DecisionProblem(
            self.hierarchy,
            table,
            self.utilities,
            self.weights,
            name=f"reuse:{query}",
        )
        model = AdditiveModel(problem)
        evaluation = model.evaluate()
        screening = screen(model) if run_screening else None

        selection = select(
            problem, assessments, threshold=coverage_threshold, evaluation=evaluation
        )

        network = None
        merge_report = None
        if integrate_selection and self.target is not None and selection.selected:
            chosen = [
                self.registry.get(name).ontology for name in selection.selected
            ]
            network, merge_report = integrate(self.target, chosen)

        return PipelineReport(
            query=query,
            hits=hits,
            assessments=assessments,
            problem=problem,
            evaluation=evaluation,
            screening=screening,
            selection=selection,
            network=network,
            merge_report=merge_report,
        )
