"""NeOn activity 3: select ontologies for reuse (the paper's subject).

The decision rule closing §V: "as the number of CQs covered by the five
best-ranked MM ontologies was higher than 70%, no more ontologies were
necessary for reuse".  Formally — walk the ranking from the top,
accumulate the union of covered competency questions, and stop as soon
as the union covers at least the threshold fraction of all CQs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Set, Tuple

from ..core.model import Evaluation, evaluate
from ..core.problem import DecisionProblem
from .assessment import CandidateAssessment

__all__ = ["SelectionResult", "select_for_coverage", "select"]


@dataclass(frozen=True)
class SelectionResult:
    """The selected reuse set and the coverage evidence behind it."""

    selected: Tuple[str, ...]
    covered_cqs: Tuple[str, ...]
    total_cqs: int
    threshold: float
    reached_threshold: bool
    ranking: Tuple[str, ...]

    @property
    def coverage_ratio(self) -> float:
        return len(self.covered_cqs) / self.total_cqs if self.total_cqs else 0.0

    @property
    def n_selected(self) -> int:
        return len(self.selected)


def select_for_coverage(
    ranking: Sequence[str],
    coverage_sets: Mapping[str, FrozenSet[str]],
    total_cqs: int,
    threshold: float = 0.70,
    max_candidates: Optional[int] = None,
) -> SelectionResult:
    """Take best-ranked candidates until CQ coverage reaches ``threshold``.

    ``coverage_sets`` maps candidate name -> ids of the CQs it covers.
    When the whole ranking cannot reach the threshold the result's
    ``reached_threshold`` is False and every considered candidate is
    selected (capped by ``max_candidates``).
    """
    if total_cqs <= 0:
        raise ValueError("total_cqs must be positive")
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    missing = [name for name in ranking if name not in coverage_sets]
    if missing:
        raise KeyError(f"no coverage information for: {missing}")
    limit = len(ranking) if max_candidates is None else min(max_candidates, len(ranking))

    selected = []
    union: Set[str] = set()
    reached = False
    for name in ranking[:limit]:
        selected.append(name)
        union |= set(coverage_sets[name])
        if len(union) / total_cqs >= threshold - 1e-12:
            reached = True
            break
    return SelectionResult(
        selected=tuple(selected),
        covered_cqs=tuple(sorted(union)),
        total_cqs=total_cqs,
        threshold=threshold,
        reached_threshold=reached,
        ranking=tuple(ranking),
    )


def select(
    problem: DecisionProblem,
    assessments: Sequence[CandidateAssessment],
    threshold: float = 0.70,
    evaluation: Optional[Evaluation] = None,
) -> SelectionResult:
    """Run the selection rule on an assessed decision problem.

    ``evaluation`` may be passed to reuse an existing ranking;
    otherwise the problem is evaluated (ranking by average overall
    utility, §IV).
    """
    if evaluation is None:
        evaluation = evaluate(problem)
    by_name: Dict[str, CandidateAssessment] = {a.name: a for a in assessments}
    extra = [n for n in evaluation.names_by_rank if n not in by_name]
    if extra:
        raise KeyError(f"no assessments for ranked candidates: {extra}")
    totals = {a.cq_coverage.total for a in assessments}
    if len(totals) != 1:
        raise ValueError(
            f"assessments disagree on the CQ universe size: {sorted(totals)}"
        )
    coverage_sets = {
        a.name: frozenset(a.cq_coverage.covered) for a in assessments
    }
    return select_for_coverage(
        evaluation.names_by_rank, coverage_sets, totals.pop(), threshold
    )
