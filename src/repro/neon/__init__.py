"""NeOn Methodology reuse activities (search, assess, select, integrate).

The paper sits inside the NeOn Methodology's ontology-reuse guidelines;
this package implements those activities around the :mod:`repro.core`
decision engine: the 14 criteria and the Fig. 1 hierarchy, the
candidate assessment that derives attribute performances from measured
ontology signals, the CQ-coverage selection rule, and the end-to-end
pipeline.
"""

from .assessment import (
    TRANSFORMABLE_LANGUAGES,
    CandidateAssessment,
    assess,
    assessment_table,
)
from .criteria import (
    ATTRIBUTE_IDS,
    CRITERIA,
    CRITERIA_BY_ID,
    OBJECTIVES,
    ROOT_OBJECTIVE,
    Criterion,
    build_hierarchy,
    default_scales,
    default_utilities,
)
from .pipeline import PipelineReport, ReusePipeline
from .selection import SelectionResult, select, select_for_coverage

__all__ = [
    "Criterion",
    "CRITERIA",
    "CRITERIA_BY_ID",
    "ATTRIBUTE_IDS",
    "OBJECTIVES",
    "ROOT_OBJECTIVE",
    "build_hierarchy",
    "default_scales",
    "default_utilities",
    "CandidateAssessment",
    "assess",
    "assessment_table",
    "TRANSFORMABLE_LANGUAGES",
    "SelectionResult",
    "select",
    "select_for_coverage",
    "PipelineReport",
    "ReusePipeline",
]
