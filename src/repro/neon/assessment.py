"""NeOn activity 2: assess candidate ontologies against the criteria.

This module turns measurable signals — :class:`~repro.ontology.metrics.
OntologyMetrics`, competency-question coverage and the registry's
:class:`~repro.ontology.corpus.ReuseMetadata` — into the 14 attribute
performances of §II.  Structural criteria are always assessable;
provenance criteria (costs, tests, team, purpose, adoption) become
:data:`~repro.core.scales.MISSING` when the corresponding metadata fact
is unknown, which is exactly the situation §III models with the [0, 1]
utility interval.

The level thresholds are deliberately wide bands; the synthetic
generator (:mod:`repro.ontology.generator`) targets the middle of each
band, and the calibration tests pin the two sides together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.performance import Alternative, PerformanceTable, PerformanceValue
from ..core.scales import MISSING
from ..ontology.corpus import RegisteredOntology, ReuseMetadata
from ..ontology.cq import CompetencyQuestion, CoverageResult, coverage
from ..ontology.metrics import OntologyMetrics, compute_metrics
from .criteria import ATTRIBUTE_IDS, default_scales

__all__ = [
    "TRANSFORMABLE_LANGUAGES",
    "CandidateAssessment",
    "assess",
    "assess_batch",
    "assessment_table",
    "batch_assessment_table",
]

#: Language pairs with "an available mechanism to make the
#: transformation" (§II's medium level for implementation language).
TRANSFORMABLE_LANGUAGES: frozenset = frozenset(
    {
        ("OWL", "RDFS"),
        ("RDFS", "OWL"),
        ("OWL", "OBO"),
        ("OBO", "OWL"),
    }
)


def _doc_quality(m: OntologyMetrics) -> int:
    if m.documentation_coverage >= 0.75 and m.n_documentation_urls >= 1:
        return 3
    if m.documentation_coverage >= 0.45:
        return 2
    if m.documentation_coverage >= 0.15:
        return 1
    return 0


def _external_knowledge(m: OntologyMetrics, meta: ReuseMetadata) -> int:
    density = m.n_see_also / m.n_entities if m.n_entities else 0.0
    if density >= 0.5:
        level = 3
    elif density >= 0.25:
        level = 2
    elif density >= 0.08:
        level = 1
    else:
        level = 0
    if meta.experts_contactable:
        level = max(level, 2)
    return level


def _code_clarity(m: OntologyMetrics) -> int:
    if m.comment_coverage >= 0.85 and m.case_consistency >= 0.90:
        return 3
    if m.comment_coverage >= 0.55 and m.case_consistency >= 0.75:
        return 2
    if m.comment_coverage >= 0.25:
        return 1
    return 0


def _knowledge_extraction(m: OntologyMetrics) -> int:
    if m.tangledness <= 0.05 and m.n_roots >= 3:
        return 3
    if m.tangledness <= 0.15:
        return 2
    if m.tangledness <= 0.30:
        return 1
    return 0


def _naming(m: OntologyMetrics) -> int:
    if m.standard_term_fraction >= 0.40:
        return 3
    if m.intuitive_name_fraction >= 0.70:
        return 2
    return 1


def _language(candidate_language: str, target_language: str) -> int:
    if candidate_language == target_language:
        return 3
    if (candidate_language, target_language) in TRANSFORMABLE_LANGUAGES:
        return 2
    return 1


def _financial_cost(meta: ReuseMetadata) -> PerformanceValue:
    if meta.financial_cost is None:
        return MISSING
    if meta.financial_cost <= 0:
        return 3
    if meta.financial_cost <= 100:
        return 2
    if meta.financial_cost <= 1000:
        return 1
    return 0


def _required_time(meta: ReuseMetadata) -> PerformanceValue:
    if meta.access_time_days is None:
        return MISSING
    if meta.access_time_days <= 1:
        return 3
    if meta.access_time_days <= 7:
        return 2
    if meta.access_time_days <= 30:
        return 1
    return 0


def _tests(meta: ReuseMetadata) -> PerformanceValue:
    if meta.n_test_suites is None:
        return MISSING
    return min(int(meta.n_test_suites), 3)


def _former_evaluation(meta: ReuseMetadata) -> PerformanceValue:
    if meta.evaluation_level is None:
        return MISSING
    return int(meta.evaluation_level)


def _team_reputation(meta: ReuseMetadata) -> PerformanceValue:
    if meta.team_publications is None:
        return MISSING
    if meta.team_publications > 5:
        return 3
    if meta.team_publications > 2:
        return 2
    if meta.team_publications > 0:
        return 1
    return 0


def _purpose(meta: ReuseMetadata) -> PerformanceValue:
    # Fig. 4's level 0 ("unknown") is a *scale level*: the assessors
    # concluded the purpose fits no category.  A purpose nobody could
    # establish at all is a missing performance instead.
    if meta.purpose is None:
        return MISSING
    return {
        "unclassified": 0,
        "academic": 1,
        "standard-transform": 2,
        "project": 3,
    }[meta.purpose]


def _practical_support(meta: ReuseMetadata) -> PerformanceValue:
    if meta.reused_by is None:
        return MISSING
    adopters = len(meta.reused_by)
    if adopters >= 2 and meta.uses_design_patterns:
        return 3
    if adopters >= 2:
        return 2
    if adopters == 1:
        return 1
    return 0


@dataclass(frozen=True)
class CandidateAssessment:
    """The assessed performances of one candidate, with the evidence."""

    name: str
    performances: Dict[str, PerformanceValue]
    metrics: OntologyMetrics
    cq_coverage: CoverageResult

    def performance(self, attribute: str) -> PerformanceValue:
        return self.performances[attribute]

    @property
    def missing_attributes(self) -> Tuple[str, ...]:
        return tuple(
            attr for attr, value in self.performances.items() if value is MISSING
        )


def assess(
    entry: RegisteredOntology,
    questions: Sequence[CompetencyQuestion],
    target_language: str = "OWL",
) -> CandidateAssessment:
    """Assess one registered candidate on all 14 criteria."""
    metrics = compute_metrics(entry.ontology)
    cq_result = coverage(entry.ontology, questions)
    meta = entry.metadata
    performances: Dict[str, PerformanceValue] = {
        "financial_cost": _financial_cost(meta),
        "required_time": _required_time(meta),
        "documentation_quality": _doc_quality(metrics),
        "external_knowledge": _external_knowledge(metrics, meta),
        "code_clarity": _code_clarity(metrics),
        "functional_requirements": cq_result.value_t,
        "knowledge_extraction": _knowledge_extraction(metrics),
        "naming_conventions": _naming(metrics),
        "implementation_language": _language(metrics.language, target_language),
        "test_availability": _tests(meta),
        "former_evaluation": _former_evaluation(meta),
        "team_reputation": _team_reputation(meta),
        "purpose_reliability": _purpose(meta),
        "practical_support": _practical_support(meta),
    }
    assert set(performances) == set(ATTRIBUTE_IDS)
    return CandidateAssessment(entry.name, performances, metrics, cq_result)


def assess_batch(
    entries: Sequence[RegisteredOntology],
    questions: Sequence[CompetencyQuestion],
    target_language: str = "OWL",
) -> Tuple[CandidateAssessment, ...]:
    """Assess a whole registry of candidates in one scoring pass.

    The measurable signals (metrics, CQ coverage) still come from each
    ontology's graph, but every §II criterion level is then derived for
    *all* candidates at once with vectorised threshold comparisons —
    one ``np.select`` per criterion instead of a Python branch ladder
    per candidate.  Bit-equal to mapping :func:`assess` over
    ``entries`` (pinned by tests).
    """
    if not entries:
        return ()
    n = len(entries)
    metrics = [compute_metrics(e.ontology) for e in entries]
    cq_results = [coverage(e.ontology, questions) for e in entries]
    metas = [e.metadata for e in entries]

    def signal(values, default=np.nan):
        return np.array(
            [default if v is None else v for v in values], dtype=float
        )

    def known(values):
        return np.array([v is not None for v in values], dtype=bool)

    levels: Dict[str, np.ndarray] = {}
    missing: Dict[str, np.ndarray] = {}
    no_missing = np.zeros(n, dtype=bool)

    # -- structural criteria (always assessable) -----------------------
    doc = np.array([m.documentation_coverage for m in metrics])
    urls = np.array([m.n_documentation_urls for m in metrics])
    levels["documentation_quality"] = np.select(
        [(doc >= 0.75) & (urls >= 1), doc >= 0.45, doc >= 0.15], [3, 2, 1], 0
    )
    missing["documentation_quality"] = no_missing

    entities = np.array([m.n_entities for m in metrics], dtype=float)
    see_also = np.array([m.n_see_also for m in metrics], dtype=float)
    density = np.divide(
        see_also, entities, out=np.zeros(n), where=entities > 0
    )
    ext = np.select(
        [density >= 0.5, density >= 0.25, density >= 0.08], [3, 2, 1], 0
    )
    contactable = np.array([m.experts_contactable for m in metas], dtype=bool)
    levels["external_knowledge"] = np.where(
        contactable, np.maximum(ext, 2), ext
    )
    missing["external_knowledge"] = no_missing

    comments = np.array([m.comment_coverage for m in metrics])
    consistency = np.array([m.case_consistency for m in metrics])
    levels["code_clarity"] = np.select(
        [
            (comments >= 0.85) & (consistency >= 0.90),
            (comments >= 0.55) & (consistency >= 0.75),
            comments >= 0.25,
        ],
        [3, 2, 1],
        0,
    )
    missing["code_clarity"] = no_missing

    tangled = np.array([m.tangledness for m in metrics])
    roots = np.array([m.n_roots for m in metrics])
    levels["knowledge_extraction"] = np.select(
        [(tangled <= 0.05) & (roots >= 3), tangled <= 0.15, tangled <= 0.30],
        [3, 2, 1],
        0,
    )
    missing["knowledge_extraction"] = no_missing

    standard = np.array([m.standard_term_fraction for m in metrics])
    intuitive = np.array([m.intuitive_name_fraction for m in metrics])
    levels["naming_conventions"] = np.select(
        [standard >= 0.40, intuitive >= 0.70], [3, 2], 1
    )
    missing["naming_conventions"] = no_missing

    same_language = np.array(
        [m.language == target_language for m in metrics], dtype=bool
    )
    transformable = np.array(
        [
            (m.language, target_language) in TRANSFORMABLE_LANGUAGES
            for m in metrics
        ],
        dtype=bool,
    )
    levels["implementation_language"] = np.select(
        [same_language, transformable], [3, 2], 1
    )
    missing["implementation_language"] = no_missing

    # functional_requirements carries the continuous ValueT score
    # (reused from CoverageResult so its validation stays in one place).
    levels["functional_requirements"] = np.array(
        [r.value_t for r in cq_results]
    )
    missing["functional_requirements"] = no_missing

    # -- provenance criteria (unknown facts become MISSING) ------------
    cost = signal([m.financial_cost for m in metas])
    levels["financial_cost"] = np.select(
        [cost <= 0, cost <= 100, cost <= 1000], [3, 2, 1], 0
    )
    missing["financial_cost"] = ~known([m.financial_cost for m in metas])

    days = signal([m.access_time_days for m in metas])
    levels["required_time"] = np.select(
        [days <= 1, days <= 7, days <= 30], [3, 2, 1], 0
    )
    missing["required_time"] = ~known([m.access_time_days for m in metas])

    suites = signal([m.n_test_suites for m in metas], default=0.0)
    levels["test_availability"] = np.minimum(suites.astype(int), 3)
    missing["test_availability"] = ~known([m.n_test_suites for m in metas])

    evaluated = signal([m.evaluation_level for m in metas], default=0.0)
    levels["former_evaluation"] = evaluated.astype(int)
    missing["former_evaluation"] = ~known(
        [m.evaluation_level for m in metas]
    )

    pubs = signal([m.team_publications for m in metas])
    levels["team_reputation"] = np.select(
        [pubs > 5, pubs > 2, pubs > 0], [3, 2, 1], 0
    )
    missing["team_reputation"] = ~known(
        [m.team_publications for m in metas]
    )

    purposes = np.array(
        [m.purpose if m.purpose is not None else "" for m in metas]
    )
    levels["purpose_reliability"] = np.select(
        [
            purposes == "project",
            purposes == "standard-transform",
            purposes == "academic",
        ],
        [3, 2, 1],
        0,
    )
    missing["purpose_reliability"] = ~known([m.purpose for m in metas])

    adopters = signal(
        [None if m.reused_by is None else len(m.reused_by) for m in metas]
    )
    patterns = np.array([m.uses_design_patterns for m in metas], dtype=bool)
    levels["practical_support"] = np.select(
        [(adopters >= 2) & patterns, adopters >= 2, adopters == 1],
        [3, 2, 1],
        0,
    )
    missing["practical_support"] = ~known([m.reused_by for m in metas])

    assert set(levels) == set(ATTRIBUTE_IDS)
    assessments = []
    for i, entry in enumerate(entries):
        performances: Dict[str, PerformanceValue] = {
            attr: (
                MISSING
                if missing[attr][i]
                else (
                    float(levels[attr][i])
                    if attr == "functional_requirements"
                    else int(levels[attr][i])
                )
            )
            for attr in ATTRIBUTE_IDS
        }
        assessments.append(
            CandidateAssessment(
                entry.name, performances, metrics[i], cq_results[i]
            )
        )
    return tuple(assessments)


def assessment_table(
    assessments: Sequence[CandidateAssessment],
    scales: "Optional[Mapping[str, object]]" = None,
) -> PerformanceTable:
    """Bundle assessments into the §II performance table (Fig. 2)."""
    if not assessments:
        raise ValueError("need at least one assessment")
    scales = dict(scales) if scales is not None else default_scales()
    alternatives = [
        Alternative(a.name, dict(a.performances)) for a in assessments
    ]
    return PerformanceTable(scales, alternatives)


def batch_assessment_table(
    entries: Sequence[RegisteredOntology],
    questions: Sequence[CompetencyQuestion],
    target_language: str = "OWL",
    scales: "Optional[Mapping[str, object]]" = None,
) -> Tuple[Tuple[CandidateAssessment, ...], PerformanceTable]:
    """Score a registry and build the §II table in one pass.

    ``(assessments, table)`` — the vectorised :func:`assess_batch`
    scoring followed by a single :class:`PerformanceTable`
    construction, the shape the reuse pipeline consumes.
    """
    assessments = assess_batch(entries, questions, target_language)
    return assessments, assessment_table(assessments, scales)
