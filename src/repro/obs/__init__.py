"""Observability layer: tracing, metrics, and profiling hooks.

``repro.obs`` is the cross-cutting telemetry package the runtime,
engine, index and service all hook into:

* :mod:`repro.obs.trace` — span tracing with a module-global no-op
  default (install a tracer to record; pay one ``is None`` check when
  off), cross-process stitching for ``ShardedRunner`` workers, and
  Chrome trace-event export for Perfetto.
* :mod:`repro.obs.metrics` — always-on counters/gauges/histograms
  with Prometheus text exposition, shared through a process-wide
  default registry.

The :func:`stage` helper fuses both: it opens a span *and* observes
the elapsed seconds into the ``repro_eval_stage_seconds`` histogram,
so one ``with stage("eval.stacked"):`` line feeds the trace file, the
``--stats`` breakdown, and the ``/metrics`` scrape at once.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from . import metrics, trace
from .metrics import (
    MetricsRegistry,
    registry,
    render_prometheus,
    reset_registry,
)
from .trace import Span, Tracer, active, span, tracing

__all__ = [
    "metrics",
    "trace",
    "MetricsRegistry",
    "registry",
    "render_prometheus",
    "reset_registry",
    "Span",
    "Tracer",
    "active",
    "span",
    "tracing",
    "stage",
    "stage_histogram",
]

#: Bounds for per-stage eval timings: microseconds through cold
#: multi-second compiles.
_STAGE_BUCKETS = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
)


def stage_histogram() -> metrics.Histogram:
    """The shared ``repro_eval_stage_seconds`` histogram.

    Resolved lazily from the current default registry so tests that
    swap registries (:func:`reset_registry`) observe into the fresh
    one.
    """
    return registry().histogram(
        "repro_eval_stage_seconds",
        "Wall-clock seconds spent per pipeline stage.",
        labelnames=("stage",),
        buckets=_STAGE_BUCKETS,
    )


@contextmanager
def stage(name: str, **attributes: object) -> Iterator[None]:
    """Span + stage-seconds histogram for one pipeline stage.

    Opens ``span(name, **attributes)`` (a no-op without an installed
    tracer) and always observes the block's elapsed seconds into
    ``repro_eval_stage_seconds{stage=name}``.
    """
    start = time.perf_counter()
    with span(name, **attributes):
        try:
            yield
        finally:
            stage_histogram().observe(
                time.perf_counter() - start, stage=name
            )
