"""Process-wide metrics registry with Prometheus text exposition.

A zero-dependency implementation of the three instrument kinds the
registry fabric needs — :class:`Counter`, :class:`Gauge`,
:class:`Histogram` — collected in a :class:`MetricsRegistry` and
rendered in the Prometheus text exposition format (version 0.0.4) by
:func:`render_prometheus`, which ``GET /metrics?format=prometheus``
serves.

Unlike tracing (:mod:`repro.obs.trace`), metrics are always on: the
instruments are plain dict-and-float bookkeeping cheap enough to leave
enabled, and a process-wide default registry (:func:`registry`) lets
instrumented modules share one scrape surface without plumbing.
Instruments declare their label *names* up front; each distinct label
*value* combination materialises a separate child series, exactly the
Prometheus data model.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "set_registry",
    "reset_registry",
    "render_prometheus",
    "escape_label_value",
    "PROMETHEUS_CONTENT_TYPE",
]

#: The content type Prometheus scrapers expect from a text endpoint.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default histogram buckets — tuned for sub-second eval latencies but
#: wide enough for cold multi-second compiles (upper bounds in the
#: instrument's native unit, typically seconds).
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_LabelKey = Tuple[str, ...]


def escape_label_value(value: str) -> str:
    """A label value escaped per the exposition format.

    Backslash, double-quote and newline are the three characters the
    format requires escaping inside quoted label values.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """A sample value rendered the way Prometheus parsers expect."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _label_pairs(
    names: Sequence[str], values: _LabelKey
) -> List[Tuple[str, str]]:
    return list(zip(names, values))


def _render_labels(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{escape_label_value(str(value))}"'
        for name, value in pairs
    )
    return "{" + body + "}"


class _Instrument:
    """Shared bookkeeping for all instrument kinds.

    Holds the metric name, help string, declared label names and the
    per-label-value children map; subclasses define what a child's
    state looks like and how it renders.
    """

    kind = "untyped"

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> None:
        """Declare the instrument (no series exist until first use)."""
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[_LabelKey, object] = {}

    def _key(self, labels: Dict[str, str]) -> _LabelKey:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def samples(self) -> List[Tuple[str, List[Tuple[str, str]], float]]:
        """``(suffix, label_pairs, value)`` rows for exposition."""
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing count (restarts reset it)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (default 1) to the labelled series."""
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up")
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """The current count of the labelled series (0 if unused)."""
        with self._lock:
            return float(self._children.get(self._key(labels), 0.0))

    def samples(self) -> List[Tuple[str, List[Tuple[str, str]], float]]:
        """``(suffix, label_pairs, value)`` rows for exposition."""
        with self._lock:
            children = dict(self._children)
        return [
            ("", _label_pairs(self.labelnames, key), float(total))
            for key, total in sorted(children.items())
        ]


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, breaker state)."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        """Set the labelled series to ``value``."""
        key = self._key(labels)
        with self._lock:
            self._children[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (may be negative) to the labelled series."""
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """The current value of the labelled series (0 if unset)."""
        with self._lock:
            return float(self._children.get(self._key(labels), 0.0))

    def samples(self) -> List[Tuple[str, List[Tuple[str, str]], float]]:
        """``(suffix, label_pairs, value)`` rows for exposition."""
        with self._lock:
            children = dict(self._children)
        return [
            ("", _label_pairs(self.labelnames, key), float(value))
            for key, value in sorted(children.items())
        ]


class Histogram(_Instrument):
    """Cumulative-bucket distribution of observed values.

    Renders the full Prometheus histogram contract: one
    ``_bucket{le="..."}`` series per declared upper bound plus
    ``le="+Inf"``, and ``_sum`` / ``_count`` totals.  Bucket counts are
    cumulative, so they are monotonically non-decreasing across
    increasing ``le`` — the property the exposition tests pin.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        """Declare the histogram with sorted finite bucket bounds."""
        super().__init__(name, help, labelnames)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"{name}: at least one bucket bound required")
        self.buckets = tuple(bounds)

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into the labelled series."""
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = {
                    "counts": [0] * len(self.buckets),
                    "sum": 0.0,
                    "count": 0,
                }
            slot = bisect_left(self.buckets, value)
            if slot < len(self.buckets):
                child["counts"][slot] += 1
            child["sum"] += value
            child["count"] += 1

    def count(self, **labels: str) -> int:
        """Total observations recorded for the labelled series."""
        with self._lock:
            child = self._children.get(self._key(labels))
            return int(child["count"]) if child else 0

    def samples(self) -> List[Tuple[str, List[Tuple[str, str]], float]]:
        """``(suffix, label_pairs, value)`` rows for exposition."""
        with self._lock:
            children = {
                key: {
                    "counts": list(child["counts"]),
                    "sum": child["sum"],
                    "count": child["count"],
                }
                for key, child in self._children.items()
            }
        rows: List[Tuple[str, List[Tuple[str, str]], float]] = []
        for key, child in sorted(children.items()):
            pairs = _label_pairs(self.labelnames, key)
            cumulative = 0
            for bound, count in zip(self.buckets, child["counts"]):
                cumulative += count
                rows.append(
                    (
                        "_bucket",
                        pairs + [("le", _format_value(float(bound)))],
                        float(cumulative),
                    )
                )
            rows.append(
                ("_bucket", pairs + [("le", "+Inf")], float(child["count"]))
            )
            rows.append(("_sum", pairs, float(child["sum"])))
            rows.append(("_count", pairs, float(child["count"])))
        return rows


class MetricsRegistry:
    """A named collection of instruments with one scrape surface.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the
    first call declares the instrument, later calls with the same name
    return the same object (and reject conflicting redeclarations), so
    distant modules can share a series without import-order coupling.
    """

    def __init__(self) -> None:
        """An empty registry."""
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    def _get_or_create(
        self, cls, name: str, help: str, labelnames: Sequence[str], **kwargs
    ) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != (
                    tuple(labelnames)
                ):
                    raise ValueError(
                        f"{name}: already registered as "
                        f"{existing.kind}{existing.labelnames}"
                    )
                return existing
            instrument = cls(name, help, labelnames, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        """Get or declare a counter."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Get or declare a gauge."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or declare a histogram."""
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def instruments(self) -> List[_Instrument]:
        """Every declared instrument, sorted by metric name."""
        with self._lock:
            return [
                self._instruments[name]
                for name in sorted(self._instruments)
            ]


def render_prometheus(
    source: Optional[MetricsRegistry] = None,
    extra_lines: Iterable[str] = (),
) -> str:
    """The registry in Prometheus text exposition format.

    Every declared instrument renders a ``# HELP`` / ``# TYPE`` header
    even before its first sample, so scrapers discover the full metric
    set immediately.  ``extra_lines`` lets a caller append pre-rendered
    lines (the service uses it for snapshot-derived series).
    """
    reg = source if source is not None else registry()
    lines: List[str] = []
    for instrument in reg.instruments():
        help_text = (
            instrument.help.replace("\\", "\\\\").replace("\n", "\\n")
        )
        lines.append(f"# HELP {instrument.name} {help_text}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        for suffix, pairs, value in instrument.samples():
            lines.append(
                f"{instrument.name}{suffix}"
                f"{_render_labels(pairs)} {_format_value(value)}"
            )
    lines.extend(extra_lines)
    return "\n".join(lines) + "\n"


#: The process-wide default registry instrumented modules share.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _REGISTRY


def set_registry(reg: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = reg
    return previous


def reset_registry() -> MetricsRegistry:
    """Swap in a fresh, empty process-wide registry and return it."""
    fresh = MetricsRegistry()
    set_registry(fresh)
    return fresh
