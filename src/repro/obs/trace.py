"""Lightweight span tracing for the registry pipeline.

The runtime, index and service are instrumented with *spans* — named,
timed intervals with attributes — so a single batch run can answer
"where did this 200-workspace registry spend its time" without a
profiler attached.  The design follows :mod:`repro.core.faults`: a
module-global no-op default (``active()`` is ``None``) keeps every
hook site a single attribute check, and installing a
:class:`Tracer` (usually via the :func:`tracing` context manager)
turns the same sites into real span recording.

Spans form a tree: each carries a ``trace_id`` shared by the whole
trace, its own random ``span_id``, and the ``span_id`` of the span
that was open on the same thread when it started (``parent_id``).
Clocks are monotonic (``time.perf_counter_ns``), so span durations
never jump with wall-clock adjustments.

Cross-process stitching: spans recorded inside
:class:`~concurrent.futures.ProcessPoolExecutor` workers cannot reach
the parent's tracer directly, so the worker collects them into a local
:class:`Tracer`, ships them back as payload dicts inside the chunk
result (:func:`Span.to_payload`), and the parent re-parents them under
its own trace with :meth:`Tracer.adopt` — worker-side spans appear in
the merged trace under the dispatching span, in deterministic registry
order.

Export is Chrome trace-event JSON (:func:`chrome_trace` /
:func:`write_chrome_trace`): load the file in Perfetto or
``chrome://tracing`` to see the per-process, per-thread timeline.
:func:`summarize` aggregates a trace (or a trace file) into per-stage
totals for the ``repro trace summarize`` report.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Span",
    "Tracer",
    "span",
    "tracing",
    "install",
    "uninstall",
    "active",
    "chrome_trace",
    "write_chrome_trace",
    "read_chrome_trace",
    "summarize",
]


def _new_id() -> str:
    """A fresh 64-bit hex identifier (span and trace ids)."""
    return os.urandom(8).hex()


def _coerce(value: object) -> object:
    """An attribute value as a JSON-safe scalar (str fallback)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


@dataclass
class Span:
    """One named, timed interval in a trace.

    ``start_us`` and ``duration_us`` are microseconds on the recording
    process's monotonic clock; ``pid``/``tid`` identify the recording
    process and thread (the Chrome trace rows).  ``seq`` is the
    tracer-local record order — the deterministic sort key the
    stitched trace preserves.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    start_us: float
    duration_us: float
    pid: int
    tid: int
    attributes: Dict[str, object] = field(default_factory=dict)
    seq: int = 0

    def to_payload(self) -> Dict[str, object]:
        """A picklable/JSON-safe dict for shipping across processes."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "pid": self.pid,
            "tid": self.tid,
            "attributes": dict(self.attributes),
            "seq": self.seq,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "Span":
        """Rebuild a span from :meth:`to_payload` output."""
        return cls(
            name=str(payload["name"]),
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            start_us=float(payload["start_us"]),
            duration_us=float(payload["duration_us"]),
            pid=int(payload["pid"]),
            tid=int(payload["tid"]),
            attributes=dict(payload.get("attributes") or {}),
            seq=int(payload.get("seq", 0)),
        )


class Tracer:
    """A thread-safe collector of finished :class:`Span` records.

    One tracer is one trace: every span it opens (and every shipped
    span it adopts) carries its ``trace_id``.  Parenting is per
    thread — the innermost open span on the current thread becomes the
    parent of the next one — so concurrent request threads build
    independent subtrees under one trace.
    """

    def __init__(self, trace_id: Optional[str] = None) -> None:
        """An empty trace with a fresh (or supplied) ``trace_id``."""
        self.trace_id = trace_id or _new_id()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._local = threading.local()
        self._seq = 0

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost span open on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Open a child span for the duration of the ``with`` block."""
        parent = self.current()
        record = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=_new_id(),
            parent_id=parent.span_id if parent is not None else None,
            start_us=time.perf_counter_ns() / 1000.0,
            duration_us=0.0,
            pid=os.getpid(),
            tid=threading.get_ident(),
            attributes={k: _coerce(v) for k, v in attributes.items()},
        )
        stack = self._stack()
        stack.append(record)
        try:
            yield record
        finally:
            stack.pop()
            record.duration_us = (
                time.perf_counter_ns() / 1000.0 - record.start_us
            )
            self.record(record)

    def record(self, record: Span) -> None:
        """Append one finished span (stamping its record order)."""
        with self._lock:
            record.seq = self._seq
            self._seq += 1
            self._spans.append(record)

    def adopt(
        self,
        payloads: Sequence[Dict[str, object]],
        parent_id: Optional[str] = None,
    ) -> List[Span]:
        """Stitch shipped worker spans into this trace.

        Every payload (from :meth:`Span.to_payload` in the worker) is
        rebuilt, rebranded with this tracer's ``trace_id``, and
        recorded in payload order.  Spans that were roots in the worker
        (no parent there) re-parent under ``parent_id`` — typically the
        span that dispatched the chunk — while worker-internal
        parent/child links survive untouched.
        """
        adopted = []
        for payload in payloads:
            record = Span.from_payload(payload)
            record.trace_id = self.trace_id
            if record.parent_id is None:
                record.parent_id = parent_id
            self.record(record)
            adopted.append(record)
        return adopted

    def mark(self) -> int:
        """A position marker; pass to :meth:`spans_since` later."""
        with self._lock:
            return len(self._spans)

    def spans_since(self, mark: int) -> List[Span]:
        """Spans recorded after :meth:`mark` (record order)."""
        with self._lock:
            return list(self._spans[mark:])

    def spans(self) -> List[Span]:
        """Every recorded span, in deterministic record order."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        """The number of recorded spans."""
        with self._lock:
            return len(self._spans)


#: The tracer visible to in-process hook sites; ``None`` (the default)
#: keeps every :func:`span` call a single attribute check.
_ACTIVE: Optional[Tracer] = None


def install(tracer: Tracer) -> None:
    """Make ``tracer`` the process's active span collector."""
    global _ACTIVE
    _ACTIVE = tracer


def uninstall() -> None:
    """Restore the zero-overhead no-tracing default."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[Tracer]:
    """The currently installed tracer, if any."""
    return _ACTIVE


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install a tracer (a fresh one by default) for a ``with`` block.

    Restores whatever was installed before on exit, so nested scopes
    compose instead of clobbering each other.
    """
    previous = _ACTIVE
    current = tracer if tracer is not None else Tracer()
    install(current)
    try:
        yield current
    finally:
        install(previous) if previous is not None else uninstall()


@contextmanager
def span(name: str, **attributes: object) -> Iterator[Optional[Span]]:
    """Record a span under the active tracer (no-op when none).

    The module-level hook every instrumented site uses::

        with span("eval.stacked", problems=12):
            ...

    Without an installed tracer the block body runs with nothing
    recorded and near-zero overhead.
    """
    tracer = _ACTIVE
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attributes) as record:
        yield record


# ----------------------------------------------------------------------
# Chrome trace-event export and summaries
# ----------------------------------------------------------------------

def chrome_trace(spans: Sequence[Span]) -> Dict[str, object]:
    """Spans as a Chrome trace-event JSON document.

    Every span becomes one complete (``"ph": "X"``) event; Perfetto and
    ``chrome://tracing`` lay them out per process and thread with
    nesting derived from the timestamps.  Span identity and attributes
    travel in ``args`` so nothing recorded is lost in export.
    """
    events = []
    for record in spans:
        events.append(
            {
                "name": record.name,
                "cat": "repro",
                "ph": "X",
                "ts": record.start_us,
                "dur": record.duration_us,
                "pid": record.pid,
                "tid": record.tid,
                "args": {
                    "trace_id": record.trace_id,
                    "span_id": record.span_id,
                    "parent_id": record.parent_id,
                    **record.attributes,
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    spans: Sequence[Span], path: Union[str, Path]
) -> Path:
    """Write spans as a Chrome trace-event file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(spans), indent=1) + "\n")
    return path


def read_chrome_trace(path: Union[str, Path]) -> List[Dict[str, object]]:
    """The ``traceEvents`` list of a Chrome trace-event file.

    Accepts both the object form this module writes and the bare
    JSON-array form other tools emit.
    """
    payload = json.loads(Path(path).read_text())
    events = (
        payload.get("traceEvents") if isinstance(payload, dict) else payload
    )
    if not isinstance(events, list):
        raise ValueError(f"{path}: not a Chrome trace-event document")
    return events


def summarize(
    source: Union[str, Path, Sequence[Span]],
) -> List[Dict[str, object]]:
    """Per-stage totals of a trace (file path or span sequence).

    Returns one row per span name — ``{"name", "count", "total_ms",
    "mean_ms", "max_ms"}`` — sorted by total time descending (name
    ascending on ties), the table ``repro trace summarize`` renders.
    """
    if isinstance(source, (str, Path)):
        rows: List[Tuple[str, float]] = [
            (str(event.get("name", "?")), float(event.get("dur", 0.0)))
            for event in read_chrome_trace(source)
            if event.get("ph") in (None, "X")
        ]
    else:
        rows = [(record.name, record.duration_us) for record in source]
    totals: Dict[str, List[float]] = {}
    for name, duration_us in rows:
        entry = totals.setdefault(name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += duration_us
        entry[2] = max(entry[2], duration_us)
    return [
        {
            "name": name,
            "count": int(count),
            "total_ms": total_us / 1000.0,
            "mean_ms": total_us / 1000.0 / count if count else 0.0,
            "max_ms": max_us / 1000.0,
        }
        for name, (count, total_us, max_us) in sorted(
            totals.items(), key=lambda item: (-item[1][1], item[0])
        )
    ]
