"""Differential fuzzing — tensor paths versus the scalar reference.

Every generated problem (see :mod:`repro.core.genreg`) is driven
through the stacked, delta, group and Monte-Carlo tensor paths, and
each output is asserted **bit-identical** to the per-problem scalar
reference computed through :class:`~repro.core.engine.BatchEvaluator`
and full recompilation.  The oracles:

``roundtrip``
    Workspace JSON encode → decode preserves the content hash and
    every compiled array bit-for-bit.
``stacked-eval``
    :class:`~repro.core.engine.StackedEvaluator` min/avg/max utilities
    and ranking orders equal every member's scalar run.
``stacked-mc``
    Stacked Monte Carlo ranks (all three §V weight classes × all three
    utility-sampling modes, cycled per chunk) equal per-problem seeded
    runs.
``delta``
    :func:`~repro.core.engine.delta_compile` after a deterministic
    cell/weight mutation equals a from-scratch compile on every array
    field.
``group``
    The members-axis :meth:`~repro.core.engine.BatchEvaluator.group_result`
    equals a scalar loop that *recompiles* ``problem.with_weights(member)``
    per member, and the stacked
    :meth:`~repro.core.engine.StackedEvaluator.group_results` equals the
    per-problem results.
``dominance``
    Stacked dominance tensors and rank intervals (LP paths) equal the
    per-problem screens, on a deterministic subsample of chunks.

A divergence is shrunk by greedily simplifying the failing spec while
the failure persists, then re-emitted as a replayable JSON repro file
(``repro-fuzz/1``) that :func:`replay` — or ``repro fuzz --replay`` —
re-executes.

CLI entry points: ``repro fuzz --cases N --seed S`` and the standalone
``python tools/fuzz.py``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .core import genreg, workspace
from .core.engine import (
    BatchEvaluator,
    StackedEvaluator,
    StackedRoster,
    compile_problem,
    compile_roster,
    delta_compile,
    stack_problems,
)
from .core.genreg import RegistrySpec
from .core.group import members_from_spec
from .core.performance import Alternative, PerformanceTable
from .core.problem import DecisionProblem
from .core.scales import MISSING, DiscreteScale
from .core.weights import WeightSystem
from .core.interval import Interval

__all__ = [
    "REPRO_FORMAT",
    "Divergence",
    "FuzzReport",
    "run_fuzz",
    "check_chunk",
    "shrink_spec",
    "write_repro",
    "replay",
    "main",
]

#: Format tag of an emitted repro file.
REPRO_FORMAT = "repro-fuzz/1"

#: The compiled-form array fields every bit-identity oracle compares.
_ARRAY_FIELDS = (
    "u_low",
    "u_avg",
    "u_up",
    "missing",
    "w_low",
    "w_avg",
    "w_up",
    "key_low",
    "key_up",
    "key_count",
    "alt_key",
)

_MC_METHODS = ("random", "rank_order", "intervals")
_MC_MODES = (False, "missing", "all")


@dataclass(frozen=True)
class Divergence:
    """One observed disagreement between a tensor path and the reference."""

    oracle: str
    case: int
    detail: str


@dataclass
class FuzzReport:
    """Everything one fuzz run produced (see :func:`run_fuzz`)."""

    spec: RegistrySpec
    cases: int
    n_checks: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    repro_files: List[Path] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every oracle agreed on every case."""
        return not self.divergences


def _mc_seed(spec: RegistrySpec, index: int) -> int:
    """The per-case Monte Carlo seed (deterministic, spec-keyed)."""
    return (int(spec.seed) * 1_000_003 + index) & 0x7FFFFFFF


def _chunk_method_mode(chunk_no: int) -> Tuple[str, object]:
    """Cycle the 3×3 (weight method, utility mode) grid across chunks."""
    return _MC_METHODS[chunk_no % 3], _MC_MODES[(chunk_no // 3) % 3]


def _arrays_equal(a: object, b: object) -> Optional[str]:
    """Name of the first differing compiled array field, or ``None``."""
    for name in _ARRAY_FIELDS:
        if not np.array_equal(getattr(a, name), getattr(b, name)):
            return name
    return None


def _member_spec(
    spec: RegistrySpec, index: int, problem: DecisionProblem, members: int
):
    """A deterministic roster spec over the problem's hierarchy."""
    rng = np.random.default_rng([0x6D656D, int(spec.seed), int(index)])
    nodes = [
        n.name
        for n in problem.hierarchy.nodes()
        if n.name != problem.hierarchy.root.name
    ]
    roster = []
    for k in range(members):
        intervals = []
        for node in nodes:
            lo = 0.2 + 0.6 * float(rng.random())
            hi = lo + 0.5 * float(rng.random())
            intervals.append((node, lo, hi))
        roster.append((f"dm{k}", tuple(intervals)))
    return tuple(roster)


def _mutate(
    spec: RegistrySpec, index: int, problem: DecisionProblem
) -> Tuple[DecisionProblem, List[int]]:
    """A deterministic single-component edit of ``problem``.

    Returns the edited problem and the ``changed_rows`` list
    :func:`~repro.core.engine.delta_compile` needs (empty for a
    weights-only edit).
    """
    rng = np.random.default_rng([0x6D7574, int(spec.seed), int(index)])
    if rng.random() < 0.3:
        # Weights-only edit: rescale every raw local interval.
        raw: Dict[str, Interval] = {}
        for node in problem.hierarchy.nodes():
            if node.name == problem.hierarchy.root.name:
                continue
            iv = problem.weights.local_interval(node.name)
            factor = 0.5 + float(rng.random())
            raw[node.name] = Interval(iv.lower * factor, iv.upper * factor + 1e-9)
        edited = problem.with_weights(
            WeightSystem.from_raw_intervals(problem.hierarchy, raw)
        )
        return edited, []

    # Cell edit: one (alternative, attribute) performance.
    alts = list(problem.table.alternatives)
    row = int(rng.integers(0, len(alts)))
    attrs = problem.hierarchy.attribute_names
    attr = attrs[int(rng.integers(0, len(attrs)))]
    scale = problem.table.scale_of(attr)
    old = alts[row].performance(attr)
    if old is not MISSING and rng.random() < 0.3:
        new: object = MISSING
    elif isinstance(scale, DiscreteScale):
        new = (int(old) + 1) % len(scale) if old is not MISSING else 0
        if new == old:
            new = MISSING
    else:
        mid = round((scale.minimum + scale.maximum) / 2.0, 6)
        new = mid if old != mid else round(
            scale.minimum + 0.25 * (scale.maximum - scale.minimum), 6
        )
    performances = dict(alts[row].performances)
    performances[attr] = new
    alts[row] = Alternative(alts[row].name, performances)
    scales = {a: problem.table.scale_of(a) for a in problem.table.attribute_names}
    edited = DecisionProblem(
        problem.hierarchy,
        PerformanceTable(scales, alts),
        problem.utilities,
        problem.weights,
        name=problem.name,
    )
    return edited, [row]


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------

def check_chunk(
    spec: RegistrySpec,
    indices: Sequence[int],
    simulations: int = 24,
    members: int = 3,
    with_dominance: bool = False,
) -> Tuple[List[Divergence], int]:
    """Run every oracle over one chunk of case indices.

    Returns ``(divergences, n_checks)``.  The chunk is the unit of
    stacking — cases inside it stack by shape, so cross-problem tensor
    behaviour is exercised without requiring the whole registry in
    memory.  Deterministic in ``(spec, indices)``.
    """
    out: List[Divergence] = []
    checks = 0
    chunk_no = min(indices) // max(1, len(indices))
    method, mode = _chunk_method_mode(chunk_no)

    problems = [genreg.generate_problem(spec, i) for i in indices]
    compiled = []
    for i, problem in zip(indices, problems):
        # -- roundtrip oracle ------------------------------------------
        checks += 1
        payload = json.dumps(workspace.to_dict(problem), sort_keys=True)
        decoded = workspace.from_dict(json.loads(payload))
        if workspace.content_hash(problem) != workspace.content_hash(decoded):
            out.append(
                Divergence(
                    "roundtrip", i, "content hash changed across JSON round-trip"
                )
            )
        c = compile_problem(problem)
        bad = _arrays_equal(c, compile_problem(decoded))
        if bad:
            out.append(
                Divergence(
                    "roundtrip", i, f"compiled field {bad!r} changed across round-trip"
                )
            )
        compiled.append(c)

    # -- scalar references ---------------------------------------------
    refs = []
    for i, c in zip(indices, compiled):
        ev = BatchEvaluator(c)
        ranks, acceptance = ev.monte_carlo_ranks(
            method=method,
            n_simulations=simulations,
            seed=_mc_seed(spec, i),
            sample_utilities=mode,
        )
        refs.append(
            {
                "min": ev.minimum_utilities(),
                "avg": ev.average_utilities(),
                "max": ev.maximum_utilities(),
                "order": ev.ranking_order(),
                "mc": ranks,
                "acc": acceptance,
            }
        )

    # -- stacked oracles -----------------------------------------------
    for stack in stack_problems(compiled):
        sev = StackedEvaluator(stack)
        mins = sev.minimum_utilities()
        avgs = sev.average_utilities()
        maxs = sev.maximum_utilities()
        orders = sev.ranking_orders()
        seeds = [_mc_seed(spec, indices[pos]) for pos in stack.source_indices]
        mc, acc = sev.monte_carlo_ranks(
            method=method,
            n_simulations=simulations,
            seed=seeds,
            sample_utilities=mode,
        )
        for pos, src in enumerate(stack.source_indices):
            i, ref = indices[src], refs[src]
            checks += 2
            for label, got, want in (
                ("minimum utilities", mins[pos], ref["min"]),
                ("average utilities", avgs[pos], ref["avg"]),
                ("maximum utilities", maxs[pos], ref["max"]),
                ("ranking order", orders[pos], ref["order"]),
            ):
                if not np.array_equal(got, want):
                    out.append(
                        Divergence(
                            "stacked-eval",
                            i,
                            f"{label} diverge from the scalar reference",
                        )
                    )
            if not np.array_equal(mc[pos], ref["mc"]) or acc[pos] != ref["acc"]:
                out.append(
                    Divergence(
                        "stacked-mc",
                        i,
                        f"Monte Carlo ranks diverge (method={method}, "
                        f"sample_utilities={mode!r})",
                    )
                )

        # -- dominance / rank intervals (LP paths, subsampled) ---------
        if with_dominance and stack.n_alternatives <= 6:
            checks += stack.n_problems
            matrices = sev.dominance_matrices()
            intervals = sev.rank_intervals_all()
            for pos, src in enumerate(stack.source_indices):
                i = indices[src]
                single = BatchEvaluator(stack.members[pos])
                if not np.array_equal(matrices[pos], single.dominance_matrix()):
                    out.append(
                        Divergence(
                            "dominance", i, "stacked dominance matrix diverges"
                        )
                    )
                elif intervals[pos] != single.rank_intervals():
                    out.append(
                        Divergence(
                            "dominance", i, "stacked rank intervals diverge"
                        )
                    )

    # -- delta oracle ---------------------------------------------------
    for i, problem, c in zip(indices, problems, compiled):
        checks += 1
        edited, changed_rows = _mutate(spec, i, problem)
        patched = delta_compile(c, edited, changed_rows)
        fresh = compile_problem(edited)
        bad = _arrays_equal(patched, fresh)
        if bad:
            out.append(
                Divergence(
                    "delta",
                    i,
                    f"delta_compile field {bad!r} differs from full recompile",
                )
            )
            continue
        if BatchEvaluator(patched).evaluate() != BatchEvaluator(fresh).evaluate():
            out.append(
                Divergence("delta", i, "delta evaluation differs from recompile")
            )

    # -- group oracle ---------------------------------------------------
    rosters = []
    for i, problem, c in zip(indices, problems, compiled):
        checks += 1
        mspec = _member_spec(spec, i, problem, members)
        roster_members = members_from_spec(mspec, problem.hierarchy)
        roster = compile_roster(roster_members, problem.hierarchy)
        rosters.append(roster)
        result = BatchEvaluator(c).group_result(roster)
        scalar_rankings = tuple(
            BatchEvaluator(
                compile_problem(problem.with_weights(member.weights))
            ).evaluate().names_by_rank
            for member in roster_members
        )
        if result.member_rankings != scalar_rankings:
            out.append(
                Divergence(
                    "group",
                    i,
                    "members-axis rankings diverge from per-member recompiles",
                )
            )

    for stack in stack_problems(compiled):
        stacked_roster = StackedRoster(
            [rosters[pos] for pos in stack.source_indices]
        )
        results = StackedEvaluator(stack).group_results(stacked_roster)
        for pos, src in enumerate(stack.source_indices):
            checks += 1
            i = indices[src]
            single = BatchEvaluator(stack.members[pos]).group_result(
                rosters[src]
            )
            if results[pos] != single:
                out.append(
                    Divergence(
                        "group",
                        i,
                        "stacked group result diverges from per-problem result",
                    )
                )

    return out, checks


# ----------------------------------------------------------------------
# Shrinking and repro files
# ----------------------------------------------------------------------

def _reductions(spec: RegistrySpec) -> List[RegistrySpec]:
    """Candidate simpler specs, most aggressive first."""
    candidates = []

    def add(**overrides: object) -> None:
        try:
            reduced = spec.replace(**overrides)
        except ValueError:
            return
        if reduced != spec:
            candidates.append(reduced)

    alo, ahi = spec.alternatives
    if ahi > alo:
        add(alternatives=(alo, max(alo, ahi // 2)))
    add(depth=(1, 1))
    add(branching=(spec.branching[0], max(spec.branching[0], 2)))
    add(max_attributes=max(1, spec.max_attributes // 2))
    add(levels=(2, 2))
    if len(spec.scale_kinds) > 1:
        for kind in spec.scale_kinds:
            add(scale_kinds=(kind,))
    add(missing_rate=0.0)
    add(all_missing_row_rate=0.0)
    add(uncertain_rate=0.0)
    if spec.weight_style != "precise":
        add(weight_style="precise")
    if spec.utility_style != "precise":
        add(utility_style="precise")
    return candidates


def shrink_spec(
    spec: RegistrySpec,
    divergence: Divergence,
    chunk_indices: Sequence[int],
    simulations: int,
    members: int,
    max_rounds: int = 12,
) -> RegistrySpec:
    """Greedily simplify ``spec`` while the chunk still diverges.

    Each round tries the candidate reductions of :func:`_reductions`
    in order and keeps the first one under which re-running the failing
    chunk (same indices, same oracle family) still reports a
    divergence.  Stops when no reduction reproduces the failure.
    """
    current = spec
    for _ in range(max_rounds):
        for candidate in _reductions(current):
            try:
                found, _ = check_chunk(
                    candidate,
                    chunk_indices,
                    simulations=simulations,
                    members=members,
                    with_dominance=divergence.oracle == "dominance",
                )
            except Exception:
                # A reduction that crashes still reproduces a defect;
                # prefer it (the repro file captures the crash).
                current = candidate
                break
            if any(d.oracle == divergence.oracle for d in found):
                current = candidate
                break
        else:
            return current
    return current


def write_repro(
    directory: Path,
    spec: RegistrySpec,
    divergence: Divergence,
    chunk_indices: Sequence[int],
    simulations: int,
    members: int,
) -> Path:
    """Emit one replayable ``repro-fuzz/1`` JSON file; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": REPRO_FORMAT,
        "oracle": divergence.oracle,
        "case": divergence.case,
        "detail": divergence.detail,
        "chunk": list(int(i) for i in chunk_indices),
        "simulations": simulations,
        "members": members,
        "spec": spec.to_dict(),
    }
    path = directory / f"repro-{divergence.oracle}-{divergence.case:05d}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def replay(path: Path) -> List[Divergence]:
    """Re-run the chunk a repro file recorded; return surviving divergences."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != REPRO_FORMAT:
        raise ValueError(
            f"{path}: not a {REPRO_FORMAT} repro file "
            f"(format={payload.get('format')!r})"
        )
    spec = RegistrySpec.from_dict(payload["spec"])
    found, _ = check_chunk(
        spec,
        [int(i) for i in payload["chunk"]],
        simulations=int(payload.get("simulations", 24)),
        members=int(payload.get("members", 3)),
        with_dominance=payload.get("oracle") == "dominance",
    )
    return found


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------

def run_fuzz(
    cases: int = 300,
    seed: int = 0,
    spec: Optional[RegistrySpec] = None,
    out_dir: Optional[Path] = None,
    simulations: int = 24,
    members: int = 3,
    chunk: int = 8,
    dominance_every: int = 4,
    shrink: bool = True,
    max_repros: int = 5,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Differentially fuzz ``cases`` generated problems.

    ``spec`` defaults to the ``"fuzz"`` preset with ``seed`` and
    ``cases`` applied.  Divergences are shrunk (when ``shrink``) and
    written as repro files under ``out_dir`` (at most ``max_repros``).
    Every ``dominance_every``-th chunk also runs the LP screens.
    Deterministic end to end.
    """
    if spec is None:
        spec = genreg.preset("fuzz")
    spec = spec.replace(seed=seed, n_workspaces=max(cases, 1))
    report = FuzzReport(spec=spec, cases=cases)
    say = log or (lambda message: None)

    chunks = [
        list(range(start, min(start + chunk, cases)))
        for start in range(0, cases, chunk)
    ]
    for chunk_no, indices in enumerate(chunks):
        with_dominance = chunk_no % max(1, dominance_every) == 0
        found, checks = check_chunk(
            spec,
            indices,
            simulations=simulations,
            members=members,
            with_dominance=with_dominance,
        )
        report.n_checks += checks
        if found:
            say(
                f"chunk {chunk_no} (cases {indices[0]}..{indices[-1]}): "
                f"{len(found)} divergence(s)"
            )
        report.divergences.extend(found)

    emitted = set()
    for divergence in report.divergences:
        if out_dir is None or len(report.repro_files) >= max_repros:
            break
        key = (divergence.oracle, divergence.case // chunk)
        if key in emitted:
            continue
        emitted.add(key)
        chunk_indices = chunks[divergence.case // chunk]
        final = spec
        if shrink:
            say(f"shrinking case {divergence.case} ({divergence.oracle})")
            final = shrink_spec(
                spec, divergence, chunk_indices, simulations, members
            )
        report.repro_files.append(
            write_repro(
                out_dir, final, divergence, chunk_indices, simulations, members
            )
        )
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone CLI driver (also backs ``repro fuzz``); exit 0 iff clean."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="fuzz",
        description="Differentially fuzz the tensor engine against the "
        "scalar reference.",
    )
    parser.add_argument("--cases", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", default="fuzz-repros", help="directory for repro files"
    )
    parser.add_argument("--simulations", type=int, default=24)
    parser.add_argument("--members", type=int, default=3)
    parser.add_argument("--chunk", type=int, default=8)
    parser.add_argument(
        "--preset", default="fuzz", choices=sorted(genreg.PRESETS)
    )
    parser.add_argument("--no-shrink", action="store_true")
    parser.add_argument(
        "--replay", metavar="FILE", default=None, help="re-run one repro file"
    )
    args = parser.parse_args(argv)

    if args.replay:
        found = replay(Path(args.replay))
        for divergence in found:
            print(
                f"DIVERGE [{divergence.oracle}] case {divergence.case}: "
                f"{divergence.detail}"
            )
        if found:
            print(f"replay: {len(found)} divergence(s) still present")
            return 1
        print("replay: clean (no divergence)")
        return 0

    report = run_fuzz(
        cases=args.cases,
        seed=args.seed,
        spec=genreg.preset(args.preset),
        out_dir=Path(args.out),
        simulations=args.simulations,
        members=args.members,
        chunk=args.chunk,
        shrink=not args.no_shrink,
        log=print,
    )
    for divergence in report.divergences:
        print(
            f"DIVERGE [{divergence.oracle}] case {divergence.case}: "
            f"{divergence.detail}"
        )
    for path in report.repro_files:
        print(f"repro file: {path}")
    status = "clean" if report.ok else f"{len(report.divergences)} divergence(s)"
    print(
        f"fuzz: {report.cases} cases, {report.n_checks} checks, {status} "
        f"(seed {args.seed})"
    )
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
