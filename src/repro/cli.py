"""The ``repro`` command-line interface.

Subcommands map onto the paper's workflow:

* ``repro figure N`` — recompute paper figure N as text (1-10).
* ``repro rank [--objective NAME]`` — the Fig. 6 / Fig. 7 rankings.
* ``repro stability [--mode best|ranking]`` — Fig. 8.
* ``repro screen`` — §V non-dominance / potential optimality.
* ``repro simulate [--method M] [-n N] [--seed S]`` — §V Monte Carlo.
* ``repro pipeline [--query Q] [--threshold T]`` — the NeOn reuse
  pipeline over the synthetic multimedia corpus.
* ``repro workspace save/load`` — GMAA-style JSON workspaces.
* ``repro batch [WORKSPACE ...]`` — evaluate a whole registry of
  decision problems in one call through the vectorized batch engine
  (compile once per problem, array-program evaluation, optional
  Monte Carlo per problem).  ``--workers N`` engages the sharded
  runtime and, by default, the persistent registry index
  (``--no-cache`` / ``--refresh`` control it).
* ``repro index build|status|vacuum|doctor DIR`` — manage the sqlite
  registry index that caches batch results across runs; ``doctor``
  checks integrity, rebuilds a corrupted database and re-probes
  quarantined workspaces (see ``docs/robustness.md``).
* ``repro chaos --registry DIR --plan NAME`` — run a registry batch
  under deterministic fault injection (killed workers, failing
  artifact reads, a torn index) and assert the output is
  byte-identical to a clean run.
* ``repro group --registry DIR --members FILE`` — group-decision
  rankings for every workspace in a registry: each decision maker's
  ranking, consensus (interval intersection) and tolerant (hull)
  aggregations, Borda counts and disagreement, evaluated through the
  engine's members tensor axis (see ``docs/group.md``).  ``repro batch
  --group FILE`` rides the same axis inside a batch run.
* ``repro serve --registry DIR [--members FILE] [--mount NAME=DIR]
  [--auth-token TOKEN] [--warm-writes]`` — serve cached registry
  rankings (and group results) over the federated, versioned v1 HTTP
  API (the registry query service; see ``docs/service.md``).
* ``repro registry pull SRC DST`` — registry-to-registry sync:
  workspaces copy skip-if-present by content hash and their cached
  result sets travel through the index (idempotent).
* ``repro generate DIR [--preset NAME] [--seed S]`` — write a seeded,
  deterministic synthetic registry from a generator spec (see
  ``docs/generator.md``).
* ``repro fuzz --cases N --seed S`` — differentially fuzz the
  stacked/delta/group/Monte-Carlo tensor paths against the scalar
  reference; failing specs are shrunk and re-emitted as replayable
  JSON repro files.
* ``repro trace summarize FILE`` — per-stage wall-time totals of a
  Chrome trace-event file recorded with ``repro batch --trace FILE``
  (see ``docs/observability.md``); ``repro batch --stats`` prints the
  same breakdown inline without writing a file.

All subcommands operate on the built-in multimedia case study unless
``--workspace FILE`` points at a saved problem.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .casestudy.cqs import m3_competency_questions
from .casestudy.problem import multimedia_problem
from .core.model import AdditiveModel, evaluate
from .core.problem import DecisionProblem
from .core.workspace import load as load_workspace
from .core.workspace import save as save_workspace
from .reporting import figures
from .reporting.tables import render_table

__all__ = ["main", "build_parser"]


def _load_problem(path: Optional[str]) -> DecisionProblem:
    if path is None:
        return multimedia_problem()
    return load_workspace(path)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A MAUT Approach for Reusing Ontologies' "
            "(GMAA-style imprecise additive MAUT + NeOn reuse pipeline)."
        ),
    )
    parser.add_argument(
        "--workspace",
        metavar="FILE",
        help="operate on a saved workspace instead of the built-in case study",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_figure = sub.add_parser("figure", help="recompute a paper figure")
    p_figure.add_argument("number", type=int, choices=range(1, 11))

    p_rank = sub.add_parser("rank", help="rank the alternatives")
    p_rank.add_argument(
        "--objective",
        default=None,
        help="rank by one objective node (default: overall)",
    )

    p_stab = sub.add_parser("stability", help="weight-stability intervals")
    p_stab.add_argument("--mode", choices=("best", "ranking"), default="best")

    sub.add_parser("screen", help="dominance / potential-optimality screening")

    sub.add_parser(
        "intervals",
        help="attainable-rank intervals under partial information",
    )

    p_sim = sub.add_parser("simulate", help="Monte Carlo sensitivity analysis")
    p_sim.add_argument(
        "--method",
        choices=("random", "rank_order", "intervals"),
        default="intervals",
    )
    p_sim.add_argument("-n", "--simulations", type=int, default=10_000)
    p_sim.add_argument("--seed", type=int, default=figures.MC_SEED)

    p_pipe = sub.add_parser("pipeline", help="run the NeOn reuse pipeline")
    p_pipe.add_argument("--query", default="multimedia ontology")
    p_pipe.add_argument("--threshold", type=float, default=0.70)
    p_pipe.add_argument(
        "--screen", action="store_true", help="also run the §V screening"
    )

    p_save = sub.add_parser("workspace", help="save / inspect workspaces")
    p_save.add_argument("action", choices=("save", "show"))
    p_save.add_argument("path", nargs="?", help="target file for 'save'")

    p_batch = sub.add_parser(
        "batch",
        help="evaluate many decision problems in one call (batch engine)",
    )
    p_batch.add_argument(
        "workspaces",
        nargs="*",
        metavar="WORKSPACE",
        help=(
            "workspace JSON files to evaluate; defaults to the built-in "
            "multimedia case study"
        ),
    )
    p_batch.add_argument(
        "--objectives",
        action="store_true",
        help="also rank each problem by its top-level objectives (Fig. 7)",
    )
    p_batch.add_argument(
        "--simulate",
        type=int,
        default=0,
        metavar="N",
        help="additionally run an N-simulation Monte Carlo per problem",
    )
    p_batch.add_argument(
        "--method",
        choices=("random", "rank_order", "intervals"),
        default="intervals",
        help="Monte Carlo simulation class for --simulate",
    )
    p_batch.add_argument("--seed", type=int, default=figures.MC_SEED)
    p_batch.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "evaluate the registry through the sharded runtime: stack "
            "same-shape problems, run shards across N processes (1 = "
            "in-process, same merged output), mmap-load persisted "
            "compiled artifacts"
        ),
    )
    p_batch.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="with --workers: skip the .npz compiled-artifact cache",
    )
    p_batch.add_argument(
        "--index",
        metavar="FILE",
        default=None,
        dest="index_path",
        help=(
            "registry index database for cross-run result caching "
            "(default: .repro-index.sqlite in the registry's common "
            "directory); implies the sharded runtime"
        ),
    )
    p_batch.add_argument(
        "--no-cache",
        action="store_true",
        help=(
            "skip the persistent registry index entirely: re-evaluate "
            "every workspace and leave the index untouched"
        ),
    )
    p_batch.add_argument(
        "--refresh",
        action="store_true",
        help=(
            "re-evaluate every workspace and overwrite its cached "
            "results in the registry index; implies the sharded runtime"
        ),
    )
    p_batch.add_argument(
        "--group",
        metavar="FILE",
        default=None,
        dest="members_path",
        help=(
            "repro-members/1 roster file: additionally compute each "
            "workspace's group-decision result (consensus/Borda) over "
            "the members tensor axis; implies the sharded runtime"
        ),
    )
    p_batch.add_argument(
        "--follow",
        action="store_true",
        help=(
            "watch the registry: re-poll the workspace files (or "
            "directories, re-expanded every cycle) each --interval "
            "seconds, incrementally re-evaluate only what changed, and "
            "print one delta report per cycle; implies the sharded "
            "runtime and the registry index"
        ),
    )
    p_batch.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="with --follow: seconds between polling cycles (default: 1.0)",
    )
    p_batch.add_argument(
        "--cycles",
        type=int,
        default=None,
        metavar="N",
        help="with --follow: stop after N cycles (default: until Ctrl-C)",
    )
    p_batch.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        dest="trace_path",
        help=(
            "record a span trace of the run (workspace load/compile, "
            "eval stages, index probe/commit, worker chunks) and write "
            "it as a Chrome trace-event JSON file viewable in Perfetto "
            "or chrome://tracing; implies the sharded runtime"
        ),
    )
    p_batch.add_argument(
        "--stats",
        action="store_true",
        help=(
            "print a per-stage wall-time breakdown after the table; "
            "implies the sharded runtime"
        ),
    )

    p_trace = sub.add_parser(
        "trace",
        help="inspect Chrome trace files written by batch --trace",
    )
    p_trace.add_argument("action", choices=("summarize",))
    p_trace.add_argument("file", help="Chrome trace-event JSON file")

    p_group = sub.add_parser(
        "group",
        help="group-decision rankings over a registry (members axis)",
    )
    p_group.add_argument(
        "--registry",
        required=True,
        metavar="DIR",
        help="registry directory (workspace *.json files, scanned recursively)",
    )
    p_group.add_argument(
        "--members",
        required=True,
        metavar="FILE",
        dest="members_path",
        help="repro-members/1 roster file (one entry per decision maker)",
    )
    p_group.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the sharded runtime (default: 1)",
    )
    p_group.add_argument(
        "--index",
        metavar="FILE",
        default=None,
        dest="index_path",
        help=(
            "registry index database for cross-run result caching "
            "(default: .repro-index.sqlite in the registry directory)"
        ),
    )
    p_group.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the persistent registry index entirely",
    )
    p_group.add_argument(
        "--refresh",
        action="store_true",
        help="re-evaluate everything and overwrite cached group results",
    )

    p_index = sub.add_parser(
        "index",
        help="manage the persistent registry index (sqlite result cache)",
    )
    p_index.add_argument(
        "action", choices=("build", "status", "vacuum", "doctor")
    )
    p_index.add_argument(
        "registry",
        help="registry directory (workspace *.json files, scanned recursively)",
    )
    p_index.add_argument(
        "--index",
        metavar="FILE",
        default=None,
        dest="index_path",
        help="index database (default: <registry>/.repro-index.sqlite)",
    )

    p_serve = sub.add_parser(
        "serve",
        help="serve cached registry rankings over HTTP (query service)",
    )
    p_serve.add_argument(
        "--registry",
        required=True,
        metavar="DIR",
        help="registry directory of workspace *.json files to serve",
    )
    p_serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=8321,
        help="port to bind; 0 picks an ephemeral port (default: 8321)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=8,
        metavar="K",
        help="maximum concurrent request threads (default: 8)",
    )
    p_serve.add_argument(
        "--index",
        metavar="FILE",
        default=None,
        dest="index_path",
        help="registry index database "
        "(default: <registry>/.repro-index.sqlite)",
    )
    p_serve.add_argument(
        "--members",
        metavar="FILE",
        default=None,
        dest="members_path",
        help=(
            "repro-members/1 roster file enabling "
            "GET /v1/workspaces/{id}/group"
        ),
    )
    p_serve.add_argument(
        "--mount",
        action="append",
        default=None,
        metavar="NAME=DIR",
        dest="mounts",
        help=(
            "mount an additional named registry (repeatable); the "
            "--registry directory mounts as 'default'"
        ),
    )
    p_serve.add_argument(
        "--auth-token",
        default=None,
        metavar="TOKEN",
        dest="auth_token",
        help=(
            "require 'Authorization: Bearer TOKEN' on every non-public "
            "route (default: no auth)"
        ),
    )
    p_serve.add_argument(
        "--warm-writes",
        action="store_true",
        dest="warm_writes",
        help=(
            "pre-evaluate edited workspaces in the background so the "
            "next read is already warm"
        ),
    )
    p_serve.add_argument(
        "--quiet", action="store_true", help="suppress the access log"
    )

    p_registry = sub.add_parser(
        "registry",
        help="federated registry operations (registry-to-registry sync)",
    )
    registry_sub = p_registry.add_subparsers(
        dest="registry_command", required=True
    )
    p_pull = registry_sub.add_parser(
        "pull",
        help=(
            "sync workspaces + cached results from one registry into "
            "another (skip-if-present by content hash; idempotent)"
        ),
    )
    p_pull.add_argument("src", help="source registry directory")
    p_pull.add_argument("dst", help="destination registry directory")
    p_pull.add_argument(
        "--src-index",
        metavar="FILE",
        default=None,
        dest="src_index",
        help="source index database (default: <src>/.repro-index.sqlite)",
    )
    p_pull.add_argument(
        "--dst-index",
        metavar="FILE",
        default=None,
        dest="dst_index",
        help="destination index database (default: <dst>/.repro-index.sqlite)",
    )

    from .core.faults import DEFAULT_SEED as _FAULT_SEED
    from .core.faults import PLAN_NAMES as _PLAN_NAMES

    p_chaos = sub.add_parser(
        "chaos",
        help="run a registry batch under fault injection and verify output",
    )
    p_chaos.add_argument(
        "--registry",
        required=True,
        metavar="DIR",
        help="registry directory of workspace *.json files to evaluate",
    )
    p_chaos.add_argument(
        "--plan",
        choices=_PLAN_NAMES,
        default="worker-kill",
        help="named fault plan to inject (default: worker-kill)",
    )
    p_chaos.add_argument(
        "--seed",
        type=int,
        default=_FAULT_SEED,
        help=f"fault-plan seed (default: {_FAULT_SEED})",
    )
    p_chaos.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="worker processes for both runs (default: 4)",
    )
    p_chaos.add_argument(
        "--simulate",
        type=int,
        default=0,
        metavar="N",
        help="also run N Monte Carlo simulations per workspace",
    )

    p_corpus = sub.add_parser(
        "corpus", help="export the synthetic multimedia corpus to disk"
    )
    p_corpus.add_argument("directory", help="target directory")
    p_corpus.add_argument(
        "--format",
        choices=(".ttl", ".nt", ".rdf", ".owl"),
        default=".ttl",
        dest="fmt",
    )

    from .core.genreg import PRESETS as _GEN_PRESETS

    p_gen = sub.add_parser(
        "generate",
        help="generate a synthetic workspace registry (seeded, deterministic)",
    )
    p_gen.add_argument("directory", help="target registry directory")
    p_gen.add_argument(
        "--preset",
        default="default",
        choices=sorted(_GEN_PRESETS),
        help="named generator preset (default: default)",
    )
    p_gen.add_argument(
        "--spec",
        metavar="FILE",
        default=None,
        dest="spec_path",
        help="repro-genspec/1 spec file (overrides --preset)",
    )
    p_gen.add_argument(
        "--seed", type=int, default=None, help="override the spec's seed"
    )
    p_gen.add_argument(
        "--cases",
        type=int,
        default=None,
        help="override the spec's workspace count",
    )

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differentially fuzz the tensor paths against the scalar "
        "reference",
    )
    p_fuzz.add_argument(
        "--cases", type=int, default=300, help="generated problems to check"
    )
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument(
        "--out",
        metavar="DIR",
        default="fuzz-repros",
        help="directory for repro files (default: fuzz-repros)",
    )
    p_fuzz.add_argument(
        "--preset",
        default="fuzz",
        choices=sorted(_GEN_PRESETS),
        help="generator preset to draw cases from (default: fuzz)",
    )
    p_fuzz.add_argument(
        "--simulations",
        type=int,
        default=24,
        help="Monte Carlo simulations per case (default: 24)",
    )
    p_fuzz.add_argument(
        "--members",
        type=int,
        default=3,
        help="group-roster members per case (default: 3)",
    )
    p_fuzz.add_argument(
        "--chunk",
        type=int,
        default=8,
        help="cases stacked together per chunk (default: 8)",
    )
    p_fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="emit failing specs without greedy reduction",
    )
    p_fuzz.add_argument(
        "--replay",
        metavar="FILE",
        default=None,
        dest="replay_path",
        help="re-run one repro-fuzz/1 file instead of fuzzing",
    )

    return parser


def _cmd_figure(problem: DecisionProblem, number: int) -> str:
    renderer = getattr(figures, f"figure_{number}")
    return renderer(problem)


def _cmd_rank(problem: DecisionProblem, objective: Optional[str]) -> str:
    evaluation = evaluate(problem, objective)
    rows = [
        [row.rank, row.name, row.minimum, row.average, row.maximum]
        for row in evaluation
    ]
    return render_table(
        ["rank", "alternative", "min", "avg", "max"],
        rows,
        align_left=[False, True, False, False, False],
    )


def _cmd_simulate(
    problem: DecisionProblem, method: str, n: int, seed: int
) -> str:
    from .core.montecarlo import simulate

    result = simulate(
        problem,
        method=method,
        n_simulations=n,
        seed=seed,
        sample_utilities="missing",
    )
    header = (
        f"method={method}  simulations={result.n_simulations}  seed={seed}\n"
        f"ever ranked first: {', '.join(result.ever_best())}\n"
    )
    return header + "\n" + figures.figure_10(problem, result)


def _cmd_batch(
    workspaces: Sequence[str],
    objectives: bool,
    simulations: int,
    method: str,
    seed: int,
) -> "tuple[str, int]":
    """Evaluate a registry of problems through the batch engine.

    Every problem is compiled once (through the workspace LRU compile
    cache) and all downstream numbers — the Fig. 6-style ranking and
    the optional per-problem Monte Carlo — come out of
    :class:`~repro.core.engine.BatchEvaluator` array programs.
    """
    from .core.engine import BatchEvaluator
    from .core.workspace import (
        compile_cache_info,
        compile_cached,
        load_compiled,
    )

    compiled_problems = []
    skipped = []
    if workspaces:
        for path in workspaces:
            try:
                compiled_problems.append(load_compiled(path))
            except (OSError, ValueError, KeyError, TypeError) as exc:
                skipped.append((path, f"{type(exc).__name__}: {exc}"))
    else:
        compiled_problems.append(compile_cached(multimedia_problem()))
    if objectives:
        expanded = []
        for compiled in compiled_problems:
            expanded.append(compiled)
            for child in compiled.problem.hierarchy.root.children:
                expanded.append(
                    compile_cached(compiled.problem.restricted_to(child.name))
                )
        compiled_problems = expanded

    headers, align = _batch_table_spec(simulations)
    rows = []
    for compiled in compiled_problems:
        evaluator = BatchEvaluator(compiled)
        best = evaluator.evaluate().best
        mc = None
        if simulations:
            result = evaluator.simulate(
                method=method,
                n_simulations=simulations,
                seed=seed,
                sample_utilities="missing",
            )
            mc = (
                len(result.ever_best()),
                result.max_fluctuation(result.top_k_by_mean(5)),
            )
        rows.append(
            _batch_row(
                compiled.name,
                evaluator.n_alternatives,
                evaluator.n_attributes,
                best.name,
                best.average,
                best.minimum,
                best.maximum,
                mc,
            )
        )
    info = compile_cache_info()
    footer = _batch_footer(
        len(compiled_problems),
        simulations,
        method,
        skipped,
        extra=f"; compile cache: {info['hits']} hits, {info['misses']} misses",
    )
    return (
        render_table(headers, rows, align_left=align) + footer,
        _batch_exit_code(len(compiled_problems), skipped),
    )


# The sequential and sharded batch paths must render byte-identical
# tables for identical inputs (pinned by tests), so the table shape,
# row formatting and footer live in exactly one place.

def _batch_table_spec(simulations: int, group: bool = False):
    """(headers, align) of the batch table, +MC/group columns as needed."""
    headers = ["problem", "alts", "attrs", "best", "avg", "min", "max"]
    align = [True, False, False, True, False, False, False]
    if simulations:
        headers += ["ever best", "top-5 fluct"]
        align += [False, False]
    if group:
        headers += ["group best", "borda best"]
        align += [True, True]
    return headers, align


def _batch_row(
    name: str,
    n_alternatives: int,
    n_attributes: int,
    best_name: str,
    average: float,
    minimum: float,
    maximum: float,
    mc=None,
    group=None,
):
    """One batch-table row; ``mc`` is (ever_best, top5_fluctuation),
    ``group`` is (group_best, borda_best)."""
    row = [
        name,
        n_alternatives,
        n_attributes,
        best_name,
        f"{average:.4f}",
        f"{minimum:.4f}",
        f"{maximum:.4f}",
    ]
    if mc is not None:
        row += list(mc)
    if group is not None:
        row += list(group)
    return row


def _group_cells(result) -> tuple:
    """(group best, borda best) cells from one parsed GroupResult.

    The group best falls back to the tolerant (hull) ranking when the
    members' intervals are disjoint on some objective; the cell marks
    that fallback so genuine consensus stays distinguishable.
    """
    best = result.best
    if result.consensus is None:
        best += " (no consensus)"
    return (best, result.borda[0])


def _batch_footer(
    n_problems: int,
    simulations: int,
    method: str,
    skipped,
    extra: str = "",
) -> str:
    return (
        f"\nevaluated {n_problems} problem(s)"
        + (f", {simulations} simulations each ({method})" if simulations else "")
        + extra
        + _skipped_footer(skipped)
    )


def _batch_exit_code(n_evaluated: int, skipped) -> int:
    """Nonzero when a batch run produced no results at all.

    Individual unreadable workspaces are reported and skipped, but a
    run where *every* input was unreadable must not look like success
    to automation.
    """
    return 1 if skipped and n_evaluated == 0 else 0


def _skipped_footer(skipped) -> str:
    """The report-and-skip lines for unreadable registry entries."""
    if not skipped:
        return ""
    lines = [f"\nskipped {len(skipped)} unreadable workspace(s):"]
    lines += [f"\n  {path}: {error}" for path, error in skipped]
    return "".join(lines)


def _open_registry_index(
    workspaces: Sequence[str], index_path: Optional[str]
):
    """The registry index for a batch/group run, or ``None`` + warning.

    An unusable index (read-only registry, foreign schema, mixed
    roots) must never block evaluation: fall back to an uncached run,
    with the same byte-identical stdout.
    """
    import sqlite3

    from .core.index import RegistryIndex, default_index_path

    try:
        db_path = (
            Path(index_path) if index_path else default_index_path(workspaces)
        )
        return RegistryIndex(db_path)
    except (OSError, ValueError, sqlite3.Error) as exc:
        print(
            f"warning: registry index unavailable "
            f"({type(exc).__name__}: {exc}); evaluating without "
            f"cross-run cache",
            file=sys.stderr,
        )
        return None


def _run_sharded(runner, workspaces, index, refresh):
    """One sharded run, with or without the persistent index."""
    if index is not None:
        with index:
            return runner.run(workspaces, index=index, refresh=refresh)
    return runner.run(workspaces)


def _cmd_batch_sharded(
    workspaces: Sequence[str],
    objectives: bool,
    simulations: int,
    method: str,
    seed: int,
    workers: int,
    use_disk_cache: bool,
    index_path: Optional[str] = None,
    use_index: bool = True,
    refresh: bool = False,
    group_spec=None,
    trace_path: Optional[str] = None,
    stats: bool = False,
) -> "tuple[str, int]":
    """``repro batch --workers N``: the sharded multi-problem runtime.

    Same table as the sequential path, computed through
    :class:`~repro.core.runtime.ShardedRunner`: same-shape problems
    stack into one tensor program, shards run across processes, and
    compiled arrays mmap-load from the ``.npz`` artifacts.  Unless
    ``--no-cache`` was given, the run consults the persistent registry
    index first — unchanged workspaces with cached results for this
    configuration skip evaluation entirely.  The merged output is
    byte-identical for any worker count and any cache state.  With
    ``--group`` every row additionally reports the roster's group best
    and Borda best, evaluated over the members tensor axis.  With
    ``--trace``/``--stats`` the run is recorded through
    :mod:`repro.obs.trace` — worker-side spans included — and exported
    as a Chrome trace file / per-stage breakdown; tracing never
    changes the table.
    """
    import json as _json

    from .core.engine import GroupResult
    from .core.runtime import BatchOptions, ShardedRunner

    runner = ShardedRunner(
        workers=workers,
        options=BatchOptions(
            objectives=objectives,
            simulations=simulations,
            method=method,
            seed=seed,
            use_disk_cache=use_disk_cache,
            group=group_spec,
        ),
    )
    index = _open_registry_index(workspaces, index_path) if use_index else None
    tracer = None
    if trace_path or stats:
        from .obs import trace as obs_trace

        tracer = obs_trace.Tracer()
        obs_trace.install(tracer)
    try:
        report = _run_sharded(runner, workspaces, index, refresh)
    finally:
        if tracer is not None:
            from .obs import trace as obs_trace

            obs_trace.uninstall()
    if tracer is not None and trace_path:
        from .obs.trace import write_chrome_trace

        write_chrome_trace(tracer.spans(), trace_path)
        print(
            f"wrote {len(tracer)} span(s) to {trace_path} "
            f"(open in Perfetto or chrome://tracing)",
            file=sys.stderr,
        )

    group = group_spec is not None
    headers, align = _batch_table_spec(simulations, group)
    rows = [
        _batch_row(
            result.name,
            result.n_alternatives,
            result.n_attributes,
            result.best_name,
            result.best_average,
            result.best_minimum,
            result.best_maximum,
            (result.ever_best, result.top5_fluctuation)
            if simulations
            else None,
            _group_cells(GroupResult.from_payload(_json.loads(result.group_json)))
            if group
            else None,
        )
        for result in report.results
    ]
    footer = _batch_footer(
        report.n_evaluated,
        simulations,
        method,
        [(s.path, s.error) for s in report.skipped],
    )
    if stats:
        footer += _stats_footer(report.stage_seconds)
    return (
        render_table(headers, rows, align_left=align) + footer,
        _batch_exit_code(report.n_evaluated, report.skipped),
    )


def _stats_footer(stage_seconds) -> str:
    """The ``--stats`` per-stage wall-time block under the batch table."""
    if not stage_seconds:
        return "\n\nno stage timings recorded"
    rows = [
        [name, f"{seconds:.3f}"]
        for name, seconds in sorted(stage_seconds, key=lambda kv: -kv[1])
    ]
    return "\n\nstage breakdown (wall seconds, workers included):\n" + render_table(
        ["stage", "seconds"], rows, align_left=[True, False]
    )


def _cmd_trace_summarize(path: str) -> str:
    """``repro trace summarize``: per-stage totals of a trace file."""
    from .obs.trace import summarize

    try:
        summary = summarize(path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot summarize {path}: {exc}") from exc
    if not summary:
        return f"{path}: no trace events"
    rows = [
        [
            row["name"],
            row["count"],
            f"{row['total_ms']:.3f}",
            f"{row['mean_ms']:.3f}",
            f"{row['max_ms']:.3f}",
        ]
        for row in summary
    ]
    return render_table(
        ["span", "count", "total ms", "mean ms", "max ms"],
        rows,
        align_left=[True, False, False, False, False],
    )


def _cmd_batch_follow(
    sources: Sequence[str],
    objectives: bool,
    simulations: int,
    method: str,
    seed: int,
    workers: int,
    use_disk_cache: bool,
    index_path: Optional[str],
    interval: float,
    cycles: Optional[int],
    group_spec=None,
) -> int:
    """``repro batch --follow``: keep a registry continuously evaluated.

    Wraps :meth:`~repro.core.runtime.ShardedRunner.watch`: each cycle
    re-expands the sources (so files created, renamed or deleted
    between cycles are noticed), classifies every unchanged workspace
    with one ``stat`` against the registry index, absorbs edits through
    delta compilation where the problem structure held, and prints one
    delta report line per cycle.  Runs until interrupted unless
    ``--cycles`` bounds it.
    """
    from .core.index import DEFAULT_INDEX_FILENAME
    from .core.runtime import (
        BatchOptions,
        ShardedRunner,
        WatchCycle,
        expand_registry_source,
    )

    runner = ShardedRunner(
        workers=workers,
        options=BatchOptions(
            objectives=objectives,
            simulations=simulations,
            method=method,
            seed=seed,
            use_disk_cache=use_disk_cache,
            group=group_spec,
        ),
    )
    # Anchor the default index location before the first cycle: an
    # empty registry directory is a legitimate watch target (files
    # appear later), so fall back to the directory itself.
    anchors = expand_registry_source(list(sources)) or [
        str(Path(src) / DEFAULT_INDEX_FILENAME)
        for src in sources
        if Path(src).is_dir()
    ]
    index = _open_registry_index(anchors, index_path) if anchors else None
    if index is None:
        raise SystemExit(
            "batch --follow needs a usable registry index to detect "
            "changes between cycles"
        )

    def _report(cycle: WatchCycle) -> None:
        print(
            f"cycle {cycle.cycle}: {cycle.n_paths} workspace(s): "
            f"{cycle.n_evaluated} evaluated ({cycle.n_delta} delta), "
            f"{cycle.n_cached} cached, {cycle.n_skipped} skipped",
            flush=True,
        )

    try:
        with index:
            runner.watch(
                list(sources),
                index,
                interval=interval,
                max_cycles=cycles,
                on_cycle=_report,
            )
    except KeyboardInterrupt:
        print("stopped", flush=True)
    return 0


def _registry_workspaces(registry: str, index_path: Optional[str]) -> list:
    """Every workspace JSON under a registry directory, sorted.

    The index database (and its default filename anywhere under the
    tree) is excluded — it is a sibling file, not a workspace.
    """
    from .core.index import DEFAULT_INDEX_FILENAME

    root = Path(registry)
    if not root.is_dir():
        raise SystemExit(f"not a registry directory: {registry}")
    db_path = (
        Path(index_path).resolve()
        if index_path
        else (root / DEFAULT_INDEX_FILENAME).resolve()
    )
    return sorted(
        str(p) for p in root.rglob("*.json") if p.resolve() != db_path
    )


def _cmd_group(
    registry: str,
    members_path: str,
    workers: Optional[int],
    index_path: Optional[str],
    use_index: bool,
    refresh: bool,
) -> "tuple[str, int]":
    """``repro group``: group-decision rankings for a whole registry.

    Resolves the roster file against every workspace's hierarchy and
    evaluates the registry through the engine's members tensor axis —
    per-member rankings, consensus/tolerant aggregations, Borda counts
    and disagreement in one stacked array program per shard.  Results
    cache in the registry index under the workspace content hash × the
    roster digest, so re-runs with an unchanged roster are pure cache
    reads.
    """
    import json as _json

    from .core.engine import GroupResult
    from .core.group import load_members
    from .core.runtime import BatchOptions, ShardedRunner

    try:
        spec = load_members(members_path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot load members file: {exc}") from exc
    workspaces = _registry_workspaces(registry, index_path)
    if not workspaces:
        raise SystemExit(f"no workspace JSON files under {registry}")

    runner = ShardedRunner(
        workers=workers if workers is not None else 1,
        options=BatchOptions(group=spec),
    )
    index = _open_registry_index(workspaces, index_path) if use_index else None
    report = _run_sharded(runner, workspaces, index, refresh)

    headers = [
        "problem",
        "alts",
        "members",
        "group best",
        "consensus best",
        "borda best",
        "max disagree",
    ]
    align = [True, False, False, True, True, True, False]
    rows = []
    for result in report.results:
        group = GroupResult.from_payload(_json.loads(result.group_json))
        if group.consensus:
            consensus_cell = group.consensus[0]
        elif group.disjoint:
            consensus_cell = "(disjoint)"
        else:
            # degenerate intersection (no consensus system exists even
            # though no single objective's intervals are disjoint)
            consensus_cell = "(none)"
        rows.append(
            [
                result.name,
                result.n_alternatives,
                group.n_members,
                group.best,
                consensus_cell,
                group.borda[0],
                f"{group.max_disagreement:.3f}",
            ]
        )
    n_members = len(spec)
    footer = (
        f"\nevaluated {report.n_evaluated} workspace(s) under "
        f"{n_members} member(s)"
        + (f"; {report.n_cached} served from cache" if report.n_cached else "")
        + _skipped_footer([(s.path, s.error) for s in report.skipped])
    )
    return (
        render_table(headers, rows, align_left=align) + footer,
        _batch_exit_code(report.n_evaluated, report.skipped),
    )


def _cmd_index(action: str, registry: str, index_path: Optional[str]) -> str:
    """``repro index build|status|vacuum|doctor``: index maintenance.

    ``build`` fingerprints every workspace JSON under the registry
    directory (recursively) and warms missing/stale ``.npz`` compiled
    artifacts; ``status`` reports row counts, freshness, quarantine
    and any past corruption rebuild; ``vacuum`` drops rows for deleted
    files and results whose content no longer exists, then compacts
    the database; ``doctor`` checks integrity (rebuilding a corrupted
    database from scratch), rebuilds the workspace fingerprints,
    re-probes quarantined workspaces and releases the ones that parse
    again, and sweeps stray temp artifacts.
    """
    from .core.index import DEFAULT_INDEX_FILENAME, RegistryIndex

    root = Path(registry)
    if not root.is_dir():
        raise SystemExit(f"not a registry directory: {registry}")
    db_path = Path(index_path) if index_path else root / DEFAULT_INDEX_FILENAME
    if action != "build" and not db_path.is_file():
        # status/vacuum are read/maintenance verbs: opening would
        # silently create an empty database (+ WAL side files).
        raise SystemExit(
            f"no registry index at {db_path} (run `repro index build` first)"
        )
    with RegistryIndex(db_path) as index:
        if action == "build":
            paths = _registry_workspaces(registry, index_path)
            counts = index.build(paths)
            return (
                f"indexed {sum(counts.values()) - counts['error']} "
                f"workspace(s) into {db_path}\n"
                f"  unchanged: {counts['fresh'] + counts['touched']}"
                f"  changed: {counts['changed']}  new: {counts['new']}"
                f"  unreadable: {counts['error']}"
            )
        if action == "status":
            info = index.status()
            text = (
                f"index {info['db_path']} ({info['db_bytes']} bytes)\n"
                f"  workspaces : {info['n_workspaces']} "
                f"({info['fresh']} fresh, {info['stale']} stale, "
                f"{info['missing']} missing)\n"
                f"  results    : {info['n_result_rows']} row(s) in "
                f"{info['n_result_sets']} set(s) across "
                f"{info['n_configs']} configuration(s), "
                f"{info['result_bytes']} cached byte(s)\n"
                f"  quarantine : {info['n_quarantined']} workspace(s)"
            )
            if info["last_rebuild_ns"] is not None:
                from datetime import datetime, timezone

                stamp = datetime.fromtimestamp(
                    info["last_rebuild_ns"] / 1e9, tz=timezone.utc
                ).isoformat(timespec="seconds")
                text += (
                    f"\n  rebuilt    : {stamp} "
                    f"({info['rebuild_reason'] or 'unknown reason'})"
                )
            return text
        if action == "doctor":
            paths = _registry_workspaces(registry, index_path)
            report = index.doctor(paths)
            counts = report["build_counts"]
            lines = [
                f"doctor {db_path}",
                "  integrity  : "
                + (
                    "ok"
                    if report["integrity_ok"]
                    else "CORRUPT — rebuilt from scratch "
                    "(old file kept as .corrupt)"
                ),
                f"  workspaces : {sum(counts.values()) - counts['error']} "
                f"indexed ({counts['error']} unreadable)",
                f"  quarantine : {len(report['released'])} released, "
                f"{len(report['held'])} still held",
                f"  temp files : {report['temp_artifacts_removed']} "
                f"stray artifact(s) swept",
            ]
            lines += [f"    released {path}" for path in report["released"]]
            lines += [f"    held     {path}" for path in report["held"]]
            return "\n".join(lines)
        removed = index.vacuum()
        return (
            f"vacuumed {db_path}: removed {removed['workspaces_removed']} "
            f"workspace row(s), {removed['result_rows_removed']} "
            f"result row(s) and {removed['temp_artifacts_removed']} "
            f"stray temp artifact(s)"
        )


def _cmd_chaos(
    registry: str,
    plan_name: str,
    seed: int,
    workers: int,
    simulations: int,
) -> "tuple[str, int]":
    """``repro chaos``: prove fault recovery changes no output byte.

    Evaluates every workspace in the registry twice — once clean, once
    under the named fault plan (workers hard-killed mid-chunk, failing
    artifact reads, a physically corrupted index, ...) — renders both
    through the standard batch table, and compares the outputs.  Exit
    status 0 means the runtime absorbed every injected fault without
    changing a single byte; 1 means the outputs diverged (both tables
    are printed for diffing).
    """
    import tempfile
    from dataclasses import replace

    from .core import faults as _faults
    from .core.runtime import BatchOptions, RetryPolicy, ShardedRunner

    plan = _faults.named_plan(plan_name, seed=seed)
    workspaces = _registry_workspaces(registry, None)
    if not workspaces:
        raise SystemExit(f"no workspace *.json files under {registry}")
    options = BatchOptions(simulations=simulations)

    def _render(report) -> str:
        headers, align = _batch_table_spec(simulations, False)
        rows = [
            _batch_row(
                r.name,
                r.n_alternatives,
                r.n_attributes,
                r.best_name,
                r.best_average,
                r.best_minimum,
                r.best_maximum,
                (r.ever_best, r.top5_fluctuation) if simulations else None,
                None,
            )
            for r in report.results
        ]
        return render_table(headers, rows, align_left=align)

    clean = ShardedRunner(workers=workers, options=options).run(workspaces)
    faulty_runner = ShardedRunner(
        workers=workers,
        options=replace(options, faults=plan),
        retry=RetryPolicy(chunk_timeout=30.0),
    )
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
        if plan.rate("index_corrupt") > 0.0:
            # A scratch index (never the registry's real one) is built,
            # physically corrupted, and handed to the faulty run — the
            # open-time recovery rebuilds it and the run proceeds.
            from .core.index import RegistryIndex

            db_path = Path(scratch) / "chaos-index.sqlite"
            with RegistryIndex(db_path) as pristine:
                pristine.build(workspaces)
            _faults.corrupt_sqlite(db_path)
            with RegistryIndex(db_path) as recovered:
                faulty = faulty_runner.run(workspaces, index=recovered)
        else:
            faulty = faulty_runner.run(workspaces)
    clean_text, faulty_text = _render(clean), _render(faulty)
    identical = clean_text == faulty_text
    lines = [
        f"chaos plan {plan.name!r} (seed {plan.seed}): {plan.describe()}",
        f"  workspaces : {len(workspaces)} across {workers} worker(s)",
        f"  clean run  : {clean.n_evaluated} evaluated",
        f"  faulty run : {faulty.n_evaluated} evaluated, "
        f"{faulty.n_retried} retried chunk(s), "
        f"{faulty.n_quarantined} quarantined",
        "  output     : " + ("byte-identical" if identical else "MISMATCH"),
    ]
    if not identical:
        lines += ["", "--- clean ---", clean_text, "--- faulty ---", faulty_text]
    return "\n".join(lines), 0 if identical else 1


def _parse_mounts(specs: Optional[List[str]]) -> Dict[str, str]:
    """``--mount NAME=DIR`` arguments as a name → directory mapping."""
    mounts: Dict[str, str] = {}
    for spec in specs or []:
        name, sep, directory = spec.partition("=")
        if not sep or not name or not directory:
            raise SystemExit(f"invalid --mount {spec!r} (want NAME=DIR)")
        if name in mounts:
            raise SystemExit(f"duplicate --mount name {name!r}")
        mounts[name] = directory
    return mounts


def _cmd_serve(
    registry: str,
    host: str,
    port: int,
    workers: int,
    index_path: Optional[str],
    quiet: bool,
    members_path: Optional[str] = None,
    mounts: Optional[List[str]] = None,
    auth_token: Optional[str] = None,
    warm_writes: bool = False,
) -> int:
    """``repro serve``: run the registry query service until interrupted.

    Boots the threaded HTTP server over the registry directory (the
    ``default`` registry) plus any ``--mount NAME=DIR`` extras, with
    their persistent indexes, announces the bound address on stdout
    (so ``--port 0`` callers learn the ephemeral port), and serves
    until SIGINT, then shuts down gracefully — in-flight requests
    drain before the indexes close.
    """
    import signal

    from .service.server import ServiceServer

    if not Path(registry).is_dir():
        raise SystemExit(f"not a registry directory: {registry}")
    mount_map = _parse_mounts(mounts)
    for name, directory in mount_map.items():
        if not Path(directory).is_dir():
            raise SystemExit(
                f"not a registry directory for mount {name!r}: {directory}"
            )
    if members_path is not None:
        # Validate the roster up front: a missing or malformed members
        # file must not masquerade as a port-binding failure below.
        from .core.group import load_members

        try:
            load_members(members_path)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot load members file: {exc}") from exc

    def _graceful(signum, frame):
        # SIGTERM (systemd stop, CI teardown, docker stop) takes the
        # same drain-then-close path as Ctrl-C.  SIGINT may arrive
        # ignored when launched as a background job, so both are wired.
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _graceful)
    try:
        server = ServiceServer(
            registry,
            host=host,
            port=port,
            workers=workers,
            index_path=index_path,
            access_log=None if quiet else sys.stderr,
            members_path=members_path,
            mounts=mount_map,
            auth_token=auth_token,
            warm_writes=warm_writes,
        )
    except ValueError as exc:
        raise SystemExit(f"cannot start service: {exc}") from exc
    except OSError as exc:
        raise SystemExit(f"cannot bind {host}:{port}: {exc}") from exc
    bound_host, bound_port = server.address
    try:
        print(
            f"serving registry {registry} at http://{bound_host}:{bound_port} "
            f"(workers={server.httpd.workers}, "
            f"index={server.app.index_path})",
            flush=True,
        )
        server.serve_forever()
    except KeyboardInterrupt:
        # a signal that raced ahead of serve_forever's own handler
        # (e.g. SIGTERM during the banner) still shuts down cleanly
        server.stop()
    print("shut down", flush=True)
    return 0


def _cmd_registry_pull(
    src: str,
    dst: str,
    src_index: Optional[str] = None,
    dst_index: Optional[str] = None,
) -> int:
    """``repro registry pull``: sync one registry into another.

    Copies workspaces skip-if-present by content hash and moves their
    cached result sets and version lineage *through the index*, so the
    destination serves the exact floats the source cached.  Running
    the same pull twice is a no-op.
    """
    from .service.federation import pull_registry

    try:
        report = pull_registry(
            src, dst, src_index_path=src_index, dst_index_path=dst_index
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    print(report.summary())
    return 0


def _cmd_pipeline(
    problem_path: Optional[str], query: str, threshold: float, run_screening: bool
) -> str:
    from .casestudy.corpus import multimedia_registry
    from .casestudy.preferences import paper_weight_system
    from .neon.pipeline import ReusePipeline

    registry = multimedia_registry()
    pipeline = ReusePipeline(
        registry,
        m3_competency_questions(),
        weights=paper_weight_system(),
    )
    report = pipeline.run(
        query,
        coverage_threshold=threshold,
        run_screening=run_screening,
        integrate_selection=False,
    )
    return report.summary()


def _cmd_generate(
    directory: str,
    preset_name: str,
    spec_path: Optional[str],
    seed: Optional[int],
    cases: Optional[int],
) -> str:
    from .core import genreg

    if spec_path is not None:
        spec = genreg.load_spec(spec_path)
    else:
        spec = genreg.preset(preset_name)
    overrides = {}
    if seed is not None:
        overrides["seed"] = seed
    if cases is not None:
        overrides["n_workspaces"] = cases
    if overrides:
        spec = spec.replace(**overrides)
    paths = genreg.write_registry(spec, directory)
    digest = genreg.registry_digest(spec)
    return (
        f"generated {len(paths)} workspaces in {directory} "
        f"(spec {spec.name!r}, seed {spec.seed})\n"
        f"registry digest: {digest}"
    )


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from . import fuzz as fuzz_mod

    if args.replay_path:
        found = fuzz_mod.replay(Path(args.replay_path))
        for divergence in found:
            print(
                f"DIVERGE [{divergence.oracle}] case {divergence.case}: "
                f"{divergence.detail}"
            )
        if found:
            print(f"replay: {len(found)} divergence(s) still present")
            return 1
        print("replay: clean (no divergence)")
        return 0

    from .core import genreg

    report = fuzz_mod.run_fuzz(
        cases=args.cases,
        seed=args.seed,
        spec=genreg.preset(args.preset),
        out_dir=Path(args.out),
        simulations=args.simulations,
        members=args.members,
        chunk=args.chunk,
        shrink=not args.no_shrink,
        log=print,
    )
    for divergence in report.divergences:
        print(
            f"DIVERGE [{divergence.oracle}] case {divergence.case}: "
            f"{divergence.detail}"
        )
    for path in report.repro_files:
        print(f"repro file: {path}")
    status = (
        "clean" if report.ok else f"{len(report.divergences)} divergence(s)"
    )
    print(
        f"fuzz: {report.cases} cases, {report.n_checks} checks, {status} "
        f"(seed {args.seed})"
    )
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "generate":
            print(
                _cmd_generate(
                    args.directory,
                    args.preset,
                    args.spec_path,
                    args.seed,
                    args.cases,
                )
            )
            return 0
        if args.command == "fuzz":
            return _cmd_fuzz(args)
        if args.command == "index":
            print(_cmd_index(args.action, args.registry, args.index_path))
            return 0
        if args.command == "chaos":
            output, exit_code = _cmd_chaos(
                args.registry,
                args.plan,
                args.seed,
                args.workers,
                args.simulate,
            )
            print(output)
            return exit_code
        if args.command == "serve":
            return _cmd_serve(
                args.registry,
                args.host,
                args.port,
                args.workers,
                args.index_path,
                args.quiet,
                args.members_path,
                mounts=args.mounts,
                auth_token=args.auth_token,
                warm_writes=args.warm_writes,
            )
        if args.command == "registry":
            return _cmd_registry_pull(
                args.src, args.dst, args.src_index, args.dst_index
            )
        if args.command == "group":
            if args.no_cache and (args.refresh or args.index_path):
                raise SystemExit(
                    "group --no-cache conflicts with --refresh/--index: "
                    "the registry index would not be consulted or written"
                )
            output, exit_code = _cmd_group(
                args.registry,
                args.members_path,
                args.workers,
                args.index_path,
                use_index=not args.no_cache,
                refresh=args.refresh,
            )
            print(output)
            return exit_code
        if args.command == "trace":
            print(_cmd_trace_summarize(args.file))
            return 0
        if args.command == "batch":
            if args.no_cache and (args.refresh or args.index_path):
                raise SystemExit(
                    "batch --no-cache conflicts with --refresh/--index: "
                    "the registry index would not be consulted or written"
                )
            if args.members_path and args.objectives:
                raise SystemExit(
                    "batch --group conflicts with --objectives: a member "
                    "roster applies to whole workspaces"
                )
            group_spec = None
            if args.members_path:
                from .core.group import load_members

                try:
                    group_spec = load_members(args.members_path)
                except (OSError, ValueError) as exc:
                    raise SystemExit(
                        f"cannot load members file: {exc}"
                    ) from exc
            if args.follow:
                if args.no_cache:
                    raise SystemExit(
                        "batch --follow conflicts with --no-cache: follow "
                        "mode needs the registry index to detect changes"
                    )
                if args.trace_path or args.stats:
                    raise SystemExit(
                        "batch --follow conflicts with --trace/--stats: "
                        "trace a single run instead"
                    )
                if args.refresh:
                    raise SystemExit(
                        "batch --follow conflicts with --refresh: a follow "
                        "cycle re-evaluates exactly what changed"
                    )
                if not args.workspaces:
                    raise SystemExit(
                        "batch --follow needs workspace files or a "
                        "registry directory"
                    )
                return _cmd_batch_follow(
                    args.workspaces,
                    args.objectives,
                    args.simulate,
                    args.method,
                    args.seed,
                    args.workers if args.workers is not None else 1,
                    not args.no_disk_cache,
                    args.index_path,
                    args.interval,
                    args.cycles,
                    group_spec=group_spec,
                )
            registry_mode = (
                args.workers is not None
                or args.index_path is not None
                or args.refresh
                or group_spec is not None
                or args.trace_path is not None
                or args.stats
            )
            if registry_mode:
                if not args.workspaces:
                    raise SystemExit(
                        "batch --workers/--index/--refresh/--group/"
                        "--trace/--stats needs explicit workspace files"
                    )
                output, exit_code = _cmd_batch_sharded(
                    args.workspaces,
                    args.objectives,
                    args.simulate,
                    args.method,
                    args.seed,
                    args.workers if args.workers is not None else 1,
                    not args.no_disk_cache,
                    index_path=args.index_path,
                    use_index=not args.no_cache,
                    refresh=args.refresh,
                    group_spec=group_spec,
                    trace_path=args.trace_path,
                    stats=args.stats,
                )
            else:
                output, exit_code = _cmd_batch(
                    args.workspaces,
                    args.objectives,
                    args.simulate,
                    args.method,
                    args.seed,
                )
            print(output)
            return exit_code
        if args.command == "pipeline":
            print(_cmd_pipeline(args.workspace, args.query, args.threshold, args.screen))
            return 0
        if args.command == "corpus":
            from .casestudy.corpus import multimedia_registry
            from .ontology.io import dump_registry

            manifest = dump_registry(
                multimedia_registry(), args.directory, fmt=args.fmt
            )
            print(f"wrote 23 candidate ontologies and {manifest}")
            return 0
        problem = _load_problem(args.workspace)
        if args.command == "figure":
            print(_cmd_figure(problem, args.number))
        elif args.command == "rank":
            print(_cmd_rank(problem, args.objective))
        elif args.command == "stability":
            print(figures.figure_8(problem, mode=args.mode))
        elif args.command == "screen":
            print(figures.screening_summary(problem))
        elif args.command == "intervals":
            from .core.rankintervals import rank_intervals

            model = AdditiveModel(problem)
            evaluation = model.evaluate()
            intervals = rank_intervals(model)
            rows = [
                [
                    evaluation.rank_of(name),
                    name,
                    intervals[name].best,
                    intervals[name].worst,
                ]
                for name in evaluation.names_by_rank
            ]
            print(
                render_table(
                    ["avg rank", "alternative", "best attainable", "worst attainable"],
                    rows,
                    align_left=[False, True, False, False],
                )
            )
        elif args.command == "simulate":
            print(_cmd_simulate(problem, args.method, args.simulations, args.seed))
        elif args.command == "workspace":
            if args.action == "save":
                if not args.path:
                    raise SystemExit("workspace save requires a target path")
                save_workspace(problem, args.path)
                print(f"saved workspace to {args.path}")
            else:
                print(
                    f"problem: {problem.name}\n"
                    f"alternatives: {len(problem.alternative_names)}\n"
                    f"attributes: {len(problem.attribute_names)}\n"
                    f"best by average utility: "
                    f"{AdditiveModel(problem).evaluate().best.name}"
                )
        return 0
    except BrokenPipeError:  # pragma: no cover - shell behaviour
        return 1


if __name__ == "__main__":
    sys.exit(main())
