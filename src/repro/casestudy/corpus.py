"""A machine-readable corpus for the 23 candidates.

The paper's assessors measured real OWL artefacts; the reproduction
generates synthetic stand-ins whose *measured* characteristics land on
the reconstructed matrix — so the NeOn pipeline (search → assess →
select) derives Fig. 2 through the same code path instead of reading it
from a table.  For every candidate this module builds an
:class:`~repro.ontology.generator.OntologySpec` from the matrix row:

* structural criteria levels become generator targets,
* provenance criteria levels become :class:`~repro.ontology.corpus.
  ReuseMetadata` facts (a missing cell becomes an unknown fact),
* the CQ window becomes the generated vocabulary.

**Unknown structural cells.**  Two candidates (Nokia Ontology, Open
Drama) have unknown values on structural criteria — in the survey those
artefacts were only partially accessible, which no automatic assessor
can reproduce from a fully readable ontology.  :data:`UNKNOWN_CELLS`
records every unknown cell; :func:`assessed_performance_table` applies
them as an explicit post-assessment mask, mirroring the assessor's
information state.  With the mask applied, the pipeline-derived table
equals the shipped matrix cell-for-cell (pinned by tests).
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from ..core.performance import PerformanceTable
from ..core.scales import MISSING
from ..neon.assessment import CandidateAssessment, assess, assessment_table
from ..ontology.corpus import OntologyRegistry, ReuseMetadata
from ..ontology.generator import OntologySpec, generate
from .cqs import covered_questions, m3_competency_questions
from .names import CANDIDATE_NAMES
from .performances import RAW_MATRIX

__all__ = [
    "UNKNOWN_CELLS",
    "build_spec",
    "multimedia_registry",
    "assessed_performance_table",
]

_ATTR_INDEX = {
    "financial_cost": 0,
    "required_time": 1,
    "documentation_quality": 2,
    "external_knowledge": 3,
    "code_clarity": 4,
    "functional_requirements": 5,
    "knowledge_extraction": 6,
    "naming_conventions": 7,
    "implementation_language": 8,
    "test_availability": 9,
    "former_evaluation": 10,
    "team_reputation": 11,
    "purpose_reliability": 12,
    "practical_support": 13,
}

_STRUCTURAL = (
    "documentation_quality",
    "external_knowledge",
    "code_clarity",
    "knowledge_extraction",
    "naming_conventions",
    "implementation_language",
)

#: (candidate, attribute) pairs whose value the survey could not
#: establish — exactly the ``None`` cells of the matrix.
UNKNOWN_CELLS: FrozenSet[Tuple[str, str]] = frozenset(
    (name, attr)
    for name in CANDIDATE_NAMES
    for attr, idx in _ATTR_INDEX.items()
    if RAW_MATRIX[name][idx] is None
)

#: Inverse of the assessment thresholds: criteria level -> metadata fact.
_COST_BY_LEVEL = {3: 0.0, 2: 50.0, 1: 500.0, 0: 5000.0}
_DAYS_BY_LEVEL = {3: 0.5, 2: 3.0, 1: 14.0, 0: 90.0}
_PUBLICATIONS_BY_LEVEL = {3: 8, 2: 4, 1: 1, 0: 0}
_PURPOSE_BY_LEVEL = {
    3: "project",
    2: "standard-transform",
    1: "academic",
    0: "unclassified",
}
_ADOPTERS = ("NeOn", "BuscaMedia", "W3C MAWG")


def _cell(name: str, attr: str) -> Optional[float]:
    return RAW_MATRIX[name][_ATTR_INDEX[attr]]


def _level(name: str, attr: str, placeholder: int = 2) -> int:
    """The matrix level; unknown structural cells get a placeholder.

    The placeholder only shapes the synthetic artefact — the derived
    value is masked back to MISSING by :func:`assessed_performance_table`.
    """
    value = _cell(name, attr)
    return placeholder if value is None else int(value)


def _metadata(name: str) -> ReuseMetadata:
    cost = _cell(name, "financial_cost")
    days = _cell(name, "required_time")
    tests = _cell(name, "test_availability")
    feval = _cell(name, "former_evaluation")
    team = _cell(name, "team_reputation")
    purpose = _cell(name, "purpose_reliability")
    prac = _cell(name, "practical_support")
    if prac is None:
        reused_by: Optional[Tuple[str, ...]] = None
        patterns = False
    else:
        n_adopters = {3: 2, 2: 2, 1: 1, 0: 0}[int(prac)]
        reused_by = _ADOPTERS[:n_adopters]
        patterns = int(prac) == 3
    return ReuseMetadata(
        financial_cost=None if cost is None else _COST_BY_LEVEL[int(cost)],
        access_time_days=None if days is None else _DAYS_BY_LEVEL[int(days)],
        n_test_suites=None if tests is None else int(tests),
        evaluation_level=None if feval is None else int(feval),
        team_publications=None if team is None else _PUBLICATIONS_BY_LEVEL[int(team)],
        purpose=None if purpose is None else _PURPOSE_BY_LEVEL[int(purpose)],
        reused_by=reused_by,
        uses_design_patterns=patterns,
    )


def build_spec(name: str) -> OntologySpec:
    """The generator spec reproducing ``name``'s matrix row."""
    if name not in RAW_MATRIX:
        raise KeyError(f"no matrix row for candidate {name!r}")
    # Deterministic per-candidate seed and a size that varies across
    # the corpus without affecting any criteria level.
    seed = sum(ord(ch) for ch in name) * 7919
    n_classes = 28 + (seed // 13) % 37
    doc = _level(name, "documentation_quality")
    clarity = _level(name, "code_clarity")
    min_clarity = {0: 0, 1: 1, 2: 2, 3: 2}[doc]
    clarity = max(clarity, min_clarity)
    return OntologySpec(
        name=name,
        seed=seed,
        n_classes=n_classes,
        doc_quality=doc,
        ext_knowledge=_level(name, "external_knowledge"),
        code_clarity=clarity,
        naming=max(1, _level(name, "naming_conventions")),
        knowledge_extraction=_level(name, "knowledge_extraction"),
        language_adequacy=max(1, _level(name, "implementation_language")),
        covered_cqs=covered_questions(name),
        metadata=_metadata(name),
    )


def multimedia_registry() -> OntologyRegistry:
    """The full corpus: one generated candidate per matrix row."""
    return OntologyRegistry(
        generate(build_spec(name)) for name in CANDIDATE_NAMES
    )


def assessed_performance_table(
    registry: Optional[OntologyRegistry] = None,
) -> PerformanceTable:
    """Fig. 2 derived through the real assess pipeline.

    Runs :func:`repro.neon.assessment.assess` on every corpus entry,
    then masks the :data:`UNKNOWN_CELLS` (the survey's information
    gaps).  The result equals
    :func:`repro.casestudy.performances.performance_table` exactly.
    """
    registry = registry or multimedia_registry()
    questions = m3_competency_questions()
    assessments = []
    for name in CANDIDATE_NAMES:
        assessment = assess(registry.get(name), questions)
        masked = dict(assessment.performances)
        for attr in masked:
            if (name, attr) in UNKNOWN_CELLS:
                masked[attr] = MISSING
        assessments.append(
            CandidateAssessment(
                name, masked, assessment.metrics, assessment.cq_coverage
            )
        )
    return assessment_table(assessments)
