"""The 23 candidate multimedia ontologies (§II).

The paper's search produced 40 MM ontologies, narrowed to 23 candidates
after a deep study of scope, purpose and requirements.  The canonical
order below follows the Fig. 10 statistics table (also the Fig. 2 / 9
column order); ``RANKED_NAMES`` is the Fig. 6 order by average overall
utility.

§II lists "Music Ontology" twice; Figs. 9-10 show an *Audio Ontology*
in the corresponding slot, which we adopt (recorded in DESIGN.md's OCR
notes).
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["CANDIDATE_NAMES", "RANKED_NAMES", "SHORT_NAMES", "TOP_FIVE"]

#: Fig. 10 order (one row per candidate).
CANDIDATE_NAMES: Tuple[str, ...] = (
    "COMM",
    "MPEG7 Hunter",
    "mpeg7-X",
    "SAPO",
    "DIG35",
    "CSO",
    "AceMedia VDO",
    "VRACORE3 ASSEM",
    "Boemie VDO",
    "Audio Ontology",
    "Media Ontology",
    "Kanzaki Music",
    "Music Ontology",
    "Music Rights",
    "Open Drama",
    "MPEG7 MDS",
    "VraCore3 Simile",
    "Nokia Ontology",
    "SRO",
    "Device Ontology",
    "MPEG7 Ontology",
    "Photography Ontology",
    "M3O",
)

#: Fig. 6 order — the ranking by average overall utility the paper's
#: selection walks down.  Rank 1 is Media Ontology (§V: "Media Ontology
#: is still the best-ranked candidate whatever average normalized
#: weights are assigned ...").
RANKED_NAMES: Tuple[str, ...] = (
    "Media Ontology",
    "Boemie VDO",
    "COMM",
    "SAPO",
    "DIG35",
    "Audio Ontology",
    "CSO",
    "mpeg7-X",
    "AceMedia VDO",
    "MPEG7 Hunter",
    "VraCore3 Simile",
    "VRACORE3 ASSEM",
    "Music Ontology",
    "MPEG7 MDS",
    "Device Ontology",
    "SRO",
    "Music Rights",
    "M3O",
    "Nokia Ontology",
    "Open Drama",
    "Kanzaki Music",
    "Photography Ontology",
    "MPEG7 Ontology",
)

#: The five best-ranked candidates the NeOn rule ends up selecting
#: (§V: their CQ coverage exceeds 70 %).
TOP_FIVE: Tuple[str, ...] = RANKED_NAMES[:5]

#: GMAA's truncated display strings (Figs. 9-10), for figure-faithful
#: rendering.
SHORT_NAMES: Dict[str, str] = {
    "COMM": "COMM",
    "MPEG7 Hunter": "MPEG7 Hunt",
    "mpeg7-X": "mpeg7-X",
    "SAPO": "SAPO",
    "DIG35": "DIG35",
    "CSO": "CSO",
    "AceMedia VDO": "AceMediaVDO",
    "VRACORE3 ASSEM": "VRACORE3ASSEM",
    "Boemie VDO": "Boemie VDO",
    "Audio Ontology": "Audio Ontology",
    "Media Ontology": "Media Ontology",
    "Kanzaki Music": "Kanzaki Music",
    "Music Ontology": "Music Ontology",
    "Music Rights": "Music Rights",
    "Open Drama": "Open Drama",
    "MPEG7 MDS": "MPEG7 MDS",
    "VraCore3 Simile": "Vracore3 Simil",
    "Nokia Ontology": "Nokia ontology",
    "SRO": "SRO",
    "Device Ontology": "Device Ontology",
    "MPEG7 Ontology": "MPEG7 Ontology",
    "Photography Ontology": "Photography ontol.",
    "M3O": "M3O",
}

assert set(CANDIDATE_NAMES) == set(RANKED_NAMES)
assert len(CANDIDATE_NAMES) == 23
