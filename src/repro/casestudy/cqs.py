"""The M3 ontology's competency questions and per-candidate coverage.

The paper's M3 ontology (multimedia / multidomain / multilingual) has a
set of competency questions whose coverage defines the *number of
functional requirements covered* criterion::

    ValueT = number of CQs covered x MNVLT / total number of CQs

The thesis [15] that holds the real CQ list is unavailable, so we model
the requirement space with **100 competency questions** — a size that
makes every anchored Fig. 2 ``ValueT`` representable exactly (0.93 =
31/100 x 3, 0.75 = 25/100 x 3, 0.18 = 6/100 x 3).

Every CQ carries one *distinctive* multimedia-production term as its
key vocabulary.  Candidate coverage is assigned as a contiguous window
over the CQ ids; windows are sized so the matrix ``ValueT`` column is
reproduced exactly and the §V stopping behaviour is reproduced
*literally*: the four best-ranked candidates union to 69 covered CQs
(below the 70 % threshold) and the fifth lifts the union to 73 — so
the NeOn rule selects exactly the five best-ranked candidates, whose
coverage is "higher than 70 %".
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from ..ontology.cq import CompetencyQuestion, value_t

__all__ = [
    "M3_CQ_TERMS",
    "CQ_WINDOWS",
    "m3_competency_questions",
    "covered_cq_ids",
    "covered_questions",
    "expected_value_t",
]

#: 100 distinctive multimedia-production terms, one per CQ.  None of
#: them collides (after stemming) with the generator's filler pools
#: (``DOMAIN_TERMS``, ``STANDARD_TERMS``), so a candidate's lexicon
#: contains a CQ's term iff the candidate covers that CQ.
M3_CQ_TERMS: Tuple[str, ...] = (
    "anamorphic", "chrominance", "luminance", "rotoscope", "telecine",
    "vignette", "parallax", "gamut", "halation", "letterbox",
    "timecode", "matte", "foley", "chyron", "clapperboard",
    "steadicam", "greenscreen", "colorist", "keylight", "backlight",
    "crossfade", "dissolve", "jumpcut", "slowmotion", "timelapse",
    "stopmotion", "claymation", "cinemagraph", "vectorscope", "histogram",
    "oscilloscope", "colorbar", "testcard", "genlock", "framestore",
    "chromakey", "lumakey", "downmix", "upmix", "reverb",
    "flanger", "equalizer", "compressor", "limiter", "sidechain",
    "crossover", "subwoofer", "tweeter", "midrange", "binaural",
    "ambisonic", "stereophony", "quadraphony", "surround", "loudness",
    "decibel", "headroom", "falloff", "attenuation", "resonance",
    "overtone", "formant", "vibrato", "tremolo", "glissando",
    "arpeggio", "ostinato", "syncopation", "polyphony", "counterpoint",
    "libretto", "aria", "overture", "cadenza", "crescendo",
    "staccato", "legato", "fermata", "solfege", "cadence",
    "transposition", "modulation", "quantization", "dithering", "aliasing",
    "oversampling", "interpolation", "convolution", "cepstrum", "spectrogram",
    "sonogram", "autotune", "vocoder", "synthesizer", "sequencer",
    "metronome", "tablature", "notation", "phonograph", "gramophone",
)

assert len(M3_CQ_TERMS) == 100
assert len(set(M3_CQ_TERMS)) == 100

#: Candidate -> (first covered CQ number, how many consecutive CQs).
#: Window sizes reproduce the Fig. 2 ``ValueT`` anchors exactly
#: (COMM 31 -> 0.93, MPEG-7 family / SAPO 25 -> 0.75, DIG35/CSO 6 ->
#: 0.18) and give the top five a union of 85 covered CQs.
CQ_WINDOWS: Dict[str, Tuple[int, int]] = {
    "Media Ontology": (1, 29),
    "Boemie VDO": (20, 33),
    "COMM": (39, 31),
    "SAPO": (45, 25),
    "DIG35": (68, 6),
    "CSO": (50, 6),
    "MPEG7 Hunter": (10, 25),
    "mpeg7-X": (30, 25),
    "Audio Ontology": (40, 20),
    "AceMedia VDO": (55, 18),
    "VRACORE3 ASSEM": (1, 15),
    "VraCore3 Simile": (70, 15),
    "Music Ontology": (30, 20),
    "Music Rights": (45, 8),
    "Open Drama": (60, 5),
    "MPEG7 MDS": (5, 22),
    "Nokia Ontology": (15, 7),
    "SRO": (35, 12),
    "Device Ontology": (25, 24),
    "Kanzaki Music": (40, 5),
    "MPEG7 Ontology": (1, 7),
    "Photography Ontology": (55, 10),
    "M3O": (65, 18),
}


def _cq_id(number: int) -> str:
    return f"CQ{number:03d}"


def m3_competency_questions() -> Tuple[CompetencyQuestion, ...]:
    """The 100 M3 competency questions, ``CQ001`` ... ``CQ100``."""
    questions = []
    for number, term in enumerate(M3_CQ_TERMS, start=1):
        questions.append(
            CompetencyQuestion(
                _cq_id(number),
                f"Does the ontology describe {term} aspects of a "
                "multimedia resource?",
                key_terms=(term,),
            )
        )
    return tuple(questions)


def covered_cq_ids(candidate: str) -> FrozenSet[str]:
    """The ids of the CQs ``candidate`` covers (its window)."""
    try:
        start, length = CQ_WINDOWS[candidate]
    except KeyError:
        raise KeyError(f"no CQ window for candidate {candidate!r}") from None
    return frozenset(_cq_id(n) for n in range(start, start + length))


def covered_questions(candidate: str) -> Tuple[CompetencyQuestion, ...]:
    """The CQ objects ``candidate`` covers, for the corpus generator."""
    wanted = covered_cq_ids(candidate)
    return tuple(q for q in m3_competency_questions() if q.cq_id in wanted)


def expected_value_t(candidate: str) -> float:
    """The ``ValueT`` the window implies (matches the Fig. 2 column)."""
    _, length = CQ_WINDOWS[candidate]
    return value_t(length, len(M3_CQ_TERMS))
