"""Assembling the complete multimedia decision problem (§II-§III).

One call builds the GMAA workspace the paper analyses: the Fig. 1
hierarchy, the Fig. 2 performance table (23 candidates x 14 criteria),
the Figs. 3-4 component utilities and the Fig. 5 weight system.
"""

from __future__ import annotations

from ..core.problem import DecisionProblem
from ..neon.criteria import build_hierarchy
from .performances import performance_table
from .preferences import paper_utilities, paper_weight_system

__all__ = ["multimedia_problem"]


def multimedia_problem(name: str = "Multimedia") -> DecisionProblem:
    """The paper's case-study decision problem, ready to evaluate.

    >>> from repro.core import evaluate
    >>> evaluate(multimedia_problem()).best.name
    'Media Ontology'
    """
    hierarchy = build_hierarchy()
    return DecisionProblem(
        hierarchy,
        performance_table(),
        paper_utilities(),
        paper_weight_system(hierarchy),
        name=name,
    )
