"""Published numbers from the paper, transcribed for comparison.

Everything here is *data about the paper*, used by EXPERIMENTS.md, the
benches and the shape tests to report paper-vs-measured.  The source is
a scanned copy with OCR noise; values we could not read reliably are
``None`` and judgement calls are flagged in the field docs (and in
DESIGN.md's "OCR ambiguities" section).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "FIG5_PAPER",
    "FIG6_AVG_PAPER",
    "FIG6_MIN_PAPER",
    "FIG6_MAX_TOP_PAPER",
    "FIG7_PAPER",
    "FIG8_PAPER",
    "Fig10Row",
    "FIG10_PAPER",
    "N_SIMULATIONS",
    "EVER_BEST_PAPER",
    "TOP_FIVE_PAPER",
    "DISCARDED_PAPER_TEXT",
    "DISCARDED_ADOPTED",
    "COVERAGE_THRESHOLD",
]

#: Fig. 5 — attribute -> (low, avg, upp) normalised weights.  The "Imp
#: Language" row is printed as 0.056/0.054/0.076 (avg < low, and the
#: avg column would sum to 0.988); 0.066 restores monotonicity and the
#: exact unit sum, so we adopt it.
FIG5_PAPER: Dict[str, Tuple[float, float, float]] = {
    "financial_cost": (0.046, 0.068, 0.090),
    "required_time": (0.059, 0.087, 0.115),
    "documentation_quality": (0.060, 0.078, 0.095),
    "external_knowledge": (0.052, 0.068, 0.083),
    "code_clarity": (0.060, 0.078, 0.095),
    "functional_requirements": (0.081, 0.095, 0.109),
    "knowledge_extraction": (0.072, 0.085, 0.098),
    "naming_conventions": (0.040, 0.047, 0.054),
    "implementation_language": (0.056, 0.066, 0.076),
    "test_availability": (0.066, 0.077, 0.089),
    "former_evaluation": (0.066, 0.077, 0.089),
    "team_reputation": (0.066, 0.077, 0.089),
    "purpose_reliability": (0.025, 0.029, 0.033),
    "practical_support": (0.057, 0.068, 0.078),
}

#: Fig. 6 — average overall utilities where legible (the two top rows
#: are illegible in the scan; §V fixes Media Ontology as rank 1).
FIG6_AVG_PAPER: Dict[str, Optional[float]] = {
    "Media Ontology": None,
    "Boemie VDO": None,
    "COMM": 0.8220,
    "SAPO": 0.7928,
    "DIG35": 0.7699,
    "Audio Ontology": 0.7613,
    "CSO": 0.7388,
    "mpeg7-X": 0.7385,
    "AceMedia VDO": 0.7123,
    "MPEG7 Hunter": 0.6960,
    "VraCore3 Simile": 0.6636,
    "VRACORE3 ASSEM": 0.6663,
    "Music Ontology": 0.6279,
    "MPEG7 MDS": 0.5677,
    "Device Ontology": 0.5622,
    "SRO": 0.5536,
    "Music Rights": 0.5503,
    "M3O": 0.5351,
    "Nokia Ontology": 0.5152,
    "Open Drama": 0.4720,
    "Kanzaki Music": 0.4646,
    "Photography Ontology": 0.4174,
    "MPEG7 Ontology": None,
}

#: Fig. 6 — minimum overall utilities for the top ranks (legible part).
FIG6_MIN_PAPER: Tuple[float, ...] = (
    0.5357, 0.5342, 0.5118, 0.4897, 0.4824, 0.4657, 0.4449, 0.4431,
)

#: Fig. 6 — maximum overall utilities for the top ranks.  Maxima exceed
#: 1 because the upper weight bounds are not renormalised (they sum to
#: about 1.19).
FIG6_MAX_TOP_PAPER: Tuple[float, ...] = (
    1.1666, 1.1645, 1.1286, 1.1046, 1.0948, 1.0666,
)

#: Fig. 7 — ranking for Understandability: name -> (min, avg, max).
#: NOTE: these printed values are mutually inconsistent with the Fig. 2
#: performances under any monotone additive model (COMM holds the best
#: level on all three Understandability criteria yet is printed below
#: four candidates); see EXPERIMENTS.md.  We reproduce the *shape*: a
#: leading near-tie that includes Boemie VDO and COMM, M3O mid-field.
FIG7_PAPER: Dict[str, Tuple[float, float, float]] = {
    "Boemie VDO": (0.784, 0.852, 0.919),
    "SAPO": (0.784, 0.852, 0.919),
    "mpeg7-X": (0.784, 0.852, 0.919),
    "MPEG7 Hunter": (0.784, 0.852, 0.919),
    "COMM": (0.778, 0.845, 0.913),
    "M3O": (0.684, 0.752, 0.820),
    "Nokia Ontology": (0.603, 0.671, 0.739),
    "CSO": (0.600, 0.667, 0.735),
    "DIG35": (0.600, 0.667, 0.735),
    "VRACORE3 ASSEM": (0.597, 0.664, 0.732),
    "VraCore3 Simile": (0.571, 0.638, 0.706),
}

#: Fig. 8 — weight-stability intervals: [0, 1] for every objective at
#: every level except the two below (intervals partially legible; the
#: functional-requirements bound is printed near [0.0535, 0.345] with
#: the current local average 0.323, the naming bound shows 0.148).
FIG8_PAPER: Dict[str, Optional[Tuple[float, float]]] = {
    "N. Functional Requirements": (0.0535, 0.345),
    "Adequacy naming conventions": (0.0, 0.148),
}


@dataclass(frozen=True)
class Fig10Row:
    """One row of the Fig. 10 Monte Carlo statistics table."""

    name: str
    mode: int
    minimum: int
    p25: float
    p50: float
    p75: float
    maximum: int
    mean: float
    std: float


#: Fig. 10 — the full statistics table (10,000 simulations with weights
#: drawn inside the elicited intervals).
FIG10_PAPER: Tuple[Fig10Row, ...] = (
    Fig10Row("COMM", 3, 1, 3.0, 3.0, 3.0, 3, 2.564, 0.825),
    Fig10Row("MPEG7 Hunter", 10, 9, 10.0, 10.0, 10.0, 10, 9.959, 0.199),
    Fig10Row("mpeg7-X", 8, 6, 7.0, 8.0, 8.0, 9, 7.506, 0.501),
    Fig10Row("SAPO", 4, 4, 4.0, 4.0, 4.0, 4, 4.000, 0.000),
    Fig10Row("DIG35", 5, 5, 5.0, 5.0, 5.0, 5, 5.000, 0.000),
    Fig10Row("CSO", 7, 7, 7.0, 7.0, 8.0, 8, 7.435, 0.500),
    Fig10Row("AceMedia VDO", 9, 8, 9.0, 9.0, 9.0, 10, 9.041, 0.200),
    Fig10Row("VRACORE3 ASSEM", 12, 11, 11.0, 12.0, 12.0, 12, 11.514, 0.500),
    Fig10Row("Boemie VDO", 1, 1, 1.0, 1.0, 1.0, 2, 1.218, 0.413),
    Fig10Row("Audio Ontology", 6, 6, 6.0, 6.0, 6.0, 7, 6.000, 0.010),
    Fig10Row("Media Ontology", 2, 2, 2.0, 2.0, 2.0, 3, 2.218, 0.413),
    Fig10Row("Kanzaki Music", 21, 19, 21.0, 21.0, 21.0, 21, 20.807, 0.395),
    Fig10Row("Music Ontology", 13, 13, 13.0, 13.0, 13.0, 13, 13.000, 0.000),
    Fig10Row("Music Rights", 17, 14, 16.0, 17.0, 17.0, 19, 16.413, 1.022),
    Fig10Row("Open Drama", 20, 19, 20.0, 20.0, 20.0, 21, 20.192, 0.395),
    Fig10Row("MPEG7 MDS", 14, 14, 14.0, 14.0, 15.0, 19, 14.728, 0.983),
    Fig10Row("VraCore3 Simile", 11, 11, 11.0, 11.0, 12.0, 12, 11.436, 0.500),
    Fig10Row("Nokia Ontology", 19, 17, 19.0, 19.0, 19.0, 20, 18.969, 0.191),
    Fig10Row("SRO", 17, 14, 15.0, 16.0, 17.0, 19, 16.043, 1.210),
    Fig10Row("Device Ontology", 15, 14, 15.0, 15.0, 16.0, 17, 15.049, 0.732),
    Fig10Row("MPEG7 Ontology", 23, 23, 23.0, 23.0, 23.0, 23, 23.000, 0.000),
    Fig10Row("Photography Ontology", 22, 22, 22.0, 22.0, 22.0, 22, 22.000, 0.000),
    Fig10Row("M3O", 18, 15, 18.0, 18.0, 18.0, 19, 17.798, 0.483),
)

#: §V facts.
N_SIMULATIONS = 10_000
EVER_BEST_PAPER: Tuple[str, ...] = ("Media Ontology", "Boemie VDO")
TOP_FIVE_PAPER: Tuple[str, ...] = (
    "Media Ontology", "Boemie VDO", "COMM", "SAPO", "DIG35",
)
#: What the §V text literally lists as discarded ("Kanzai Music,
#: Photography Ontology and DIG35") ...
DISCARDED_PAPER_TEXT: Tuple[str, ...] = (
    "Kanzaki Music", "Photography Ontology", "DIG35",
)
#: ... and the reading we adopt: DIG35 sits at rank 5 with a pinned
#: rank interval in Fig. 10, so a dominated DIG35 is impossible; the
#: candidate pinned at rank 23 in every simulation is MPEG7 Ontology.
DISCARDED_ADOPTED: Tuple[str, ...] = (
    "Kanzaki Music", "MPEG7 Ontology", "Photography Ontology",
)
#: NeOn stopping rule: selected candidates must cover > 70 % of CQs.
COVERAGE_THRESHOLD = 0.70
