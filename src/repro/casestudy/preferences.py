"""The paper's elicited preferences: Fig. 5 weights, Figs. 3-4 utilities.

Fig. 5 prints, for each of the 14 attributes, the lower bound, the
average and the upper bound of the normalised weight.  Those numbers
let the hierarchical elicitation be reconstructed exactly:

* the *average* column sums to 1.000 and splits over the four branches
  as Reuse Cost 0.155, Understandability 0.224, Integration 0.293,
  Reliability 0.328;
* within one branch, every attribute's low/avg (and upp/avg) ratio is
  the same to within print precision — i.e. the trade-off imprecision
  was expressed at the *branch* level, with precise leaf ratios.

So the weight system here gives each top-level objective an interval
(branch average x the branch's common ratios) and each leaf a precise
local weight (its Fig. 5 average normalised within the branch).
Multiplying down the paths reproduces all 42 printed numbers to
within +-0.001 — verified by tests and the Fig. 5 bench.

Component utilities follow §III: the precise linear utility of Fig. 3
for the number of functional requirements covered, and the Fig. 4
banded imprecise utilities (level k in [0.2k, 0.2(k+1)], best level
exactly 1.0) for every discrete criterion.  Missing performances get
the utility interval [0, 1] (ref. [18] of the paper).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.hierarchy import Hierarchy
from ..core.interval import Interval
from ..core.weights import WeightSystem
from ..neon.criteria import CRITERIA, build_hierarchy, default_utilities

__all__ = [
    "FIG5_WEIGHTS",
    "BRANCH_AVERAGES",
    "BRANCH_RATIOS",
    "paper_weight_system",
    "paper_utilities",
]

#: Fig. 5, transcribed: attribute -> (low, avg, upp).  The avg column
#: sums to exactly 1.000.  (The printed "Imp Language" row reads
#: 0.056 / 0.054 / 0.076 — an avg below its own lower bound and the
#: only value breaking the unit sum; 0.066 restores both, and is what
#: we use.  Recorded in EXPERIMENTS.md.)
FIG5_WEIGHTS: Dict[str, Tuple[float, float, float]] = {
    "financial_cost": (0.046, 0.068, 0.090),
    "required_time": (0.059, 0.087, 0.115),
    "documentation_quality": (0.060, 0.078, 0.095),
    "external_knowledge": (0.052, 0.068, 0.083),
    "code_clarity": (0.060, 0.078, 0.095),
    "functional_requirements": (0.081, 0.095, 0.109),
    "knowledge_extraction": (0.072, 0.085, 0.098),
    "naming_conventions": (0.040, 0.047, 0.054),
    "implementation_language": (0.056, 0.066, 0.076),
    "test_availability": (0.066, 0.077, 0.089),
    "former_evaluation": (0.066, 0.077, 0.089),
    "team_reputation": (0.066, 0.077, 0.089),
    "purpose_reliability": (0.025, 0.029, 0.033),
    "practical_support": (0.057, 0.068, 0.078),
}

#: Branch averages implied by Fig. 5 (sum of the avg column per branch).
BRANCH_AVERAGES: Dict[str, float] = {
    "Reuse Cost": 0.155,
    "Understandability": 0.224,
    "Integration": 0.293,
    "Reliability": 0.328,
}

#: Common (low/avg, upp/avg) ratio per branch — the mean of the
#: per-attribute ratios (which agree to within print precision),
#: rescaled so each pair sums to exactly 2.  Symmetric ratios keep the
#: branch interval's midpoint at the branch average, which makes every
#: reconstructed average weight equal its Fig. 5 value exactly; the
#: reconstructed bounds stay within +-0.001 of the printed ones.
BRANCH_RATIOS: Dict[str, Tuple[float, float]] = {
    "Reuse Cost": (0.677315, 1.322685),
    "Understandability": (0.772919, 1.227081),
    "Integration": (0.849808, 1.150192),
    "Reliability": (0.852282, 1.147718),
}


def paper_weight_system(hierarchy: "Hierarchy | None" = None) -> WeightSystem:
    """The Fig. 5 weight system over the Fig. 1 hierarchy.

    Branch nodes carry the elicited imprecision as intervals; leaf
    nodes carry precise local weights (their Fig. 5 averages normalised
    within the branch).
    """
    hierarchy = hierarchy or build_hierarchy()
    local: Dict[str, Interval] = {}
    for branch, avg in BRANCH_AVERAGES.items():
        low_ratio, up_ratio = BRANCH_RATIOS[branch]
        local[branch] = Interval(avg * low_ratio, avg * up_ratio)
    for criterion in CRITERIA:
        _, attr_avg, _ = FIG5_WEIGHTS[criterion.attribute]
        share = attr_avg / BRANCH_AVERAGES[criterion.branch]
        local[criterion.objective] = Interval.point(share)
    return WeightSystem(hierarchy, local)


def paper_utilities() -> Dict[str, object]:
    """Component utilities in the paper's Figs. 3-4 shapes."""
    return default_utilities(band_width=0.20)
