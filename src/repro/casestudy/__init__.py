"""The paper's multimedia case study (§II-§V) as data + builders.

* :func:`multimedia_problem` — the complete decision problem (Fig. 1
  hierarchy, Fig. 2 performances, Figs. 3-4 utilities, Fig. 5 weights).
* :mod:`repro.casestudy.names` — the 23 candidates, canonical orders.
* :mod:`repro.casestudy.cqs` — the M3 competency questions and the
  coverage windows behind the ``ValueT`` column.
* :mod:`repro.casestudy.performances` — the anchored + calibrated
  23 x 14 matrix.
* :mod:`repro.casestudy.preferences` — the Fig. 5 weight system and
  Figs. 3-4 component utilities.
* :mod:`repro.casestudy.corpus` — synthetic machine-readable corpus
  whose assessment reproduces the matrix.
* :mod:`repro.casestudy.paper_results` — the published numbers.
"""

from .corpus import (
    UNKNOWN_CELLS,
    assessed_performance_table,
    build_spec,
    multimedia_registry,
)
from .cqs import (
    CQ_WINDOWS,
    M3_CQ_TERMS,
    covered_cq_ids,
    covered_questions,
    expected_value_t,
    m3_competency_questions,
)
from .names import CANDIDATE_NAMES, RANKED_NAMES, SHORT_NAMES, TOP_FIVE
from .performances import (
    FIG2_ANCHORS,
    RAW_MATRIX,
    performance_matrix,
    performance_table,
)
from .preferences import (
    BRANCH_AVERAGES,
    BRANCH_RATIOS,
    FIG5_WEIGHTS,
    paper_utilities,
    paper_weight_system,
)
from .problem import multimedia_problem

__all__ = [
    "CANDIDATE_NAMES",
    "RANKED_NAMES",
    "SHORT_NAMES",
    "TOP_FIVE",
    "M3_CQ_TERMS",
    "CQ_WINDOWS",
    "m3_competency_questions",
    "covered_cq_ids",
    "covered_questions",
    "expected_value_t",
    "RAW_MATRIX",
    "FIG2_ANCHORS",
    "performance_matrix",
    "performance_table",
    "FIG5_WEIGHTS",
    "BRANCH_AVERAGES",
    "BRANCH_RATIOS",
    "paper_weight_system",
    "paper_utilities",
    "multimedia_problem",
    "UNKNOWN_CELLS",
    "build_spec",
    "multimedia_registry",
    "assessed_performance_table",
]
