"""The reconstructed 23 x 14 performance matrix (§II, Fig. 2).

The full matrix lives in the unavailable thesis [15]; Fig. 2 of the
paper shows it only for six candidates (COMM, MPEG7 Hunter, mpeg7-X,
SAPO, DIG35, CSO) on eight attributes.  The matrix below is

* **anchored** — every legible Fig. 2 cell is adopted verbatim
  (:data:`FIG2_ANCHORS`, enforced by tests), and
* **calibrated** — the free cells are chosen so the additive model
  with the Fig. 5 weights and Figs. 3-4 utilities reproduces the
  published evaluation *shape*: the exact Fig. 6 rank order, a near-tie
  at the top, a top-8 utility spread below 0.1, heavily overlapped
  utility bands, the Fig. 8 stability pattern (only the number of
  functional requirements and the naming-conventions criteria have
  bounded stability intervals), the §V screening outcome (exactly
  three candidates discarded) and the Figs. 9-10 Monte Carlo findings
  (only Media Ontology and Boemie VDO ever rank first).

Calibration levers worth knowing when reading the numbers:

* Every candidate ranked 4th or lower is componentwise <= Media
  Ontology in average component utility, which pins Media's stability
  interval to [0, 1] on every criterion it is not *meant* to lose on.
* Boemie VDO and COMM differ from Media Ontology only on the
  functional-requirements and naming criteria (plus Boemie's unknown
  purpose), which is what bounds exactly those two stability intervals.
* Missing performances (``None``) sit on provenance criteria (former
  evaluation, purpose), matching §III's account of unknown values.
* ``test_availability`` is 0 throughout: Fig. 2 shows 0.000 for all six
  visible candidates and none of the surveyed multimedia ontologies
  shipped test suites.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

from ..core.performance import Alternative, PerformanceTable
from ..core.scales import MISSING
from ..neon.criteria import ATTRIBUTE_IDS, default_scales
from .cqs import expected_value_t
from .names import CANDIDATE_NAMES

__all__ = ["RAW_MATRIX", "FIG2_ANCHORS", "performance_matrix", "performance_table"]

Cell = Union[int, float, None]

#: attribute order of the rows below (== neon.criteria.ATTRIBUTE_IDS).
_ATTRS = ATTRIBUTE_IDS

#: candidate -> the 14 criteria values: discrete levels 0-3, the
#: continuous ``ValueT`` for functional_requirements, ``None`` for a
#: missing (unknown) performance.
RAW_MATRIX: Dict[str, Tuple[Cell, ...]] = {
    #                    fin req doc ext cla  funct  kn  nm  lg  ts  fe  tm  pu  pr
    "Media Ontology":    (3,  3,  3,  3,  3,  0.87,  3,  3,  3,  0,  3,  3,  2,  2),
    "Boemie VDO":        (3,  3,  3,  3,  3,  0.99,  3,  2,  3,  0,  3,  3, None, 2),
    "COMM":              (3,  3,  3,  3,  3,  0.93,  3,  2,  3,  0,  3,  3,  2,  2),
    "SAPO":              (3,  3,  2,  3,  3,  0.75,  3,  3,  3,  0,  3,  3,  1,  2),
    "DIG35":             (2,  3,  3,  3,  3,  0.18,  3,  3,  3,  0,  3,  3,  2,  2),
    "Audio Ontology":    (3,  3,  2,  3,  3,  0.60,  3,  3,  3,  0,  3,  3,  1,  1),
    "CSO":               (3,  3,  2,  3,  3,  0.18,  3,  3,  3,  0,  3,  3,  1,  1),
    "mpeg7-X":           (3,  3,  2,  2,  3,  0.75,  3,  3,  3,  0,  3,  3,  1,  1),
    "AceMedia VDO":      (3,  3,  2,  2,  3,  0.54,  3,  3,  3,  0,  3,  3,  1,  1),
    "MPEG7 Hunter":      (3,  2,  2,  2,  3,  0.75,  3,  3,  3,  0,  3,  3,  1,  1),
    "VraCore3 Simile":   (3,  3,  2,  2,  2,  0.45,  3,  3,  3,  0,  3,  3,  1,  1),
    "VRACORE3 ASSEM":    (3,  3,  2,  2,  2,  0.45,  3,  3,  3,  0,  3,  3,  1,  0),
    "Music Ontology":    (3,  2,  2,  2,  3,  0.60,  2,  2,  3,  0,  3,  3,  1,  2),
    "MPEG7 MDS":         (3,  2,  1,  2,  2,  0.66,  2,  3,  2,  0,  3,  3,  2,  2),
    "Device Ontology":   (3,  2,  2,  2,  2,  0.72,  2,  2,  2,  0,  3,  3,  2,  2),
    "SRO":               (3,  2,  2,  2,  2,  0.36,  2,  2,  3,  0, None, 3,  2,  2),
    "Music Rights":      (3,  2,  2,  3,  2,  0.24,  2,  2,  3,  0, None, 3,  1,  0),
    "M3O":               (3,  2,  3,  2,  2,  0.54,  2,  1,  3,  0, None, 3,  0,  0),
    "Nokia Ontology":    (3,  3,  2, None, 2,  0.21,  3,  2, None, 0, None, None, 1,  1),
    "Open Drama":        (3,  2,  2, None, None, 0.15, None, None, None, 0, None, None, 2,  2),
    "Kanzaki Music":     (3,  2,  1,  2,  2,  0.15,  2,  2,  2,  0,  2,  3,  1,  1),
    "Photography Ontology": (3, 1, 1,  1,  2,  0.30,  1,  2,  2,  0,  0,  2,  0,  1),
    "MPEG7 Ontology":    (3,  1,  0,  1,  1,  0.21,  1,  2,  1,  0,  0,  2,  1,  0),
}

#: The legible Fig. 2 cells, adopted verbatim (candidate -> attribute
#: -> value).  A test pins :data:`RAW_MATRIX` to these anchors.
FIG2_ANCHORS: Dict[str, Dict[str, float]] = {
    "COMM": {
        "documentation_quality": 3, "external_knowledge": 3,
        "code_clarity": 3, "functional_requirements": 0.93,
        "knowledge_extraction": 3, "naming_conventions": 2,
        "implementation_language": 3, "test_availability": 0,
    },
    "MPEG7 Hunter": {
        "documentation_quality": 2, "external_knowledge": 2,
        "code_clarity": 3, "functional_requirements": 0.75,
        "knowledge_extraction": 3, "naming_conventions": 3,
        "implementation_language": 3, "test_availability": 0,
    },
    "mpeg7-X": {
        "documentation_quality": 2, "external_knowledge": 2,
        "code_clarity": 3, "functional_requirements": 0.75,
        "knowledge_extraction": 3, "naming_conventions": 3,
        "implementation_language": 3, "test_availability": 0,
    },
    "SAPO": {
        "documentation_quality": 2, "external_knowledge": 3,
        "code_clarity": 3, "functional_requirements": 0.75,
        "knowledge_extraction": 3, "naming_conventions": 3,
        "implementation_language": 3, "test_availability": 0,
    },
    "DIG35": {
        "documentation_quality": 3, "external_knowledge": 3,
        "code_clarity": 3, "functional_requirements": 0.18,
        "knowledge_extraction": 3, "naming_conventions": 3,
        "implementation_language": 3, "test_availability": 0,
    },
    "CSO": {
        "documentation_quality": 2, "external_knowledge": 3,
        "code_clarity": 3, "functional_requirements": 0.18,
        "knowledge_extraction": 3, "naming_conventions": 3,
        "implementation_language": 3, "test_availability": 0,
    },
}


def performance_matrix() -> Dict[str, Dict[str, object]]:
    """Candidate -> attribute -> performance (MISSING for unknowns)."""
    result: Dict[str, Dict[str, object]] = {}
    for name in CANDIDATE_NAMES:
        row = RAW_MATRIX[name]
        if len(row) != len(_ATTRS):
            raise ValueError(
                f"{name!r}: expected {len(_ATTRS)} cells, got {len(row)}"
            )
        result[name] = {
            attr: (MISSING if cell is None else cell)
            for attr, cell in zip(_ATTRS, row)
        }
    return result


def performance_table() -> PerformanceTable:
    """The Fig. 2 performance table over the default criteria scales."""
    matrix = performance_matrix()
    alternatives = [
        Alternative(name, matrix[name]) for name in CANDIDATE_NAMES
    ]
    return PerformanceTable(default_scales(), alternatives)


def _check_value_t_consistency() -> None:
    """The funct column must equal the CQ-window ValueT per candidate."""
    index = _ATTRS.index("functional_requirements")
    for name in CANDIDATE_NAMES:
        cell = RAW_MATRIX[name][index]
        expected = expected_value_t(name)
        if cell is None or abs(float(cell) - expected) > 1e-9:
            raise AssertionError(
                f"{name!r}: matrix ValueT {cell!r} != CQ-window value "
                f"{expected!r}"
            )


_check_value_t_consistency()
