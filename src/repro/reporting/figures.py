"""One function per paper figure, each returning deterministic text.

These renderers are shared by the examples, the ``repro`` CLI and the
benchmark harness: ``figure_N()`` recomputes figure *N* of the paper
from the case-study data and renders it as text (tables via
:mod:`repro.reporting.tables`, charts via
:mod:`repro.reporting.plots`).
"""

from __future__ import annotations

from typing import Optional

from ..casestudy.names import CANDIDATE_NAMES, SHORT_NAMES
from ..casestudy.problem import multimedia_problem
from ..core.dominance import screen
from ..core.model import AdditiveModel, evaluate
from ..core.montecarlo import MonteCarloResult, simulate
from ..core.problem import DecisionProblem
from ..core.scales import MISSING
from ..core.stability import stability_report
from ..neon.criteria import CRITERIA
from .plots import interval_bars, rank_boxplots
from .tables import render_table

__all__ = [
    "figure_1",
    "figure_2",
    "figure_3",
    "figure_4",
    "figure_5",
    "figure_6",
    "figure_7",
    "figure_8",
    "figure_9",
    "figure_10",
    "screening_summary",
    "run_monte_carlo",
]

#: Default simulation settings for Figs. 9-10 (§V runs 10,000).
MC_SIMULATIONS = 10_000
MC_SEED = 2012


def _problem(problem: Optional[DecisionProblem]) -> DecisionProblem:
    return problem if problem is not None else multimedia_problem()


def figure_1(problem: Optional[DecisionProblem] = None) -> str:
    """The objective hierarchy with average weights per node."""
    problem = _problem(problem)
    weights = problem.weights

    def annotate(node) -> str:
        if node.name == problem.hierarchy.root.name:
            return ""
        return f"[avg w = {weights.node_weight_average(node.name):.3f}]"

    return problem.hierarchy.render(annotate)


def figure_2(problem: Optional[DecisionProblem] = None) -> str:
    """The 23 x 14 performance table (candidates as rows)."""
    problem = _problem(problem)
    headers = ["candidate"] + [c.short for c in CRITERIA]
    rows = []
    for alt in problem.table.alternatives:
        row: list = [SHORT_NAMES.get(alt.name, alt.name)]
        for criterion in CRITERIA:
            value = alt.performance(criterion.attribute)
            row.append("?" if value is MISSING else value)
        rows.append(row)
    return render_table(headers, rows, precision=2)


def figure_3(problem: Optional[DecisionProblem] = None) -> str:
    """The linear component utility for ValueT (sampled)."""
    problem = _problem(problem)
    fn = problem.utility_function("functional_requirements")
    rows = []
    for i in range(0, 11):
        x = 3.0 * i / 10
        interval = fn.utility(x)
        rows.append([f"{x:.1f}", interval.lower, interval.midpoint, interval.upper])
    missing = fn.utility(MISSING)
    rows.append(["missing", missing.lower, missing.midpoint, missing.upper])
    return render_table(["ValueT", "u low", "u avg", "u up"], rows)


def figure_4(
    problem: Optional[DecisionProblem] = None,
    attribute: str = "purpose_reliability",
) -> str:
    """Imprecise per-level utilities for a discrete criterion."""
    problem = _problem(problem)
    fn = problem.utility_function(attribute)
    scale = fn.scale
    rows = []
    for code, label in enumerate(scale.levels):
        interval = fn.by_level[code]
        rows.append(
            [f"{code} - {label}", interval.lower, interval.midpoint, interval.upper]
        )
    missing = fn.missing_utility
    rows.append(["missing", missing.lower, missing.midpoint, missing.upper])
    return render_table(["level", "u low", "u avg", "u up"], rows, precision=2)


def figure_5(problem: Optional[DecisionProblem] = None) -> str:
    """Attribute weights: low/avg/upp table plus interval bars."""
    problem = _problem(problem)
    weights = problem.weights
    averages = weights.attribute_averages()
    intervals = weights.attribute_weights()
    rows = []
    bars = []
    for criterion in CRITERIA:
        interval = intervals[criterion.attribute]
        avg = averages[criterion.attribute]
        rows.append([criterion.objective, interval.lower, avg, interval.upper])
        bars.append((criterion.short, interval.lower, avg, interval.upper))
    table = render_table(["attribute", "low", "avg", "upp"], rows, precision=3)
    chart = interval_bars(bars, lo=0.0)
    return f"{table}\n\n{chart}"


def _ranking_text(problem: DecisionProblem, objective: Optional[str]) -> str:
    evaluation = evaluate(problem, objective)
    rows = [
        [row.rank, SHORT_NAMES.get(row.name, row.name), row.minimum, row.average, row.maximum]
        for row in evaluation
    ]
    table = render_table(
        ["rank", "candidate", "min", "avg", "max"],
        rows,
        align_left=[False, True, False, False, False],
    )
    bars = [
        (SHORT_NAMES.get(r.name, r.name), r.minimum, r.average, r.maximum)
        for r in evaluation
    ]
    return f"{table}\n\n{interval_bars(bars, lo=0.0)}"


def figure_6(problem: Optional[DecisionProblem] = None) -> str:
    """Ranking of the candidates by the overall objective."""
    return _ranking_text(_problem(problem), None)


def figure_7(problem: Optional[DecisionProblem] = None) -> str:
    """Ranking restricted to the Understandability objective."""
    return _ranking_text(_problem(problem), "Understandability")


def figure_8(problem: Optional[DecisionProblem] = None, mode: str = "best") -> str:
    """Weight-stability intervals for every non-root objective."""
    problem = _problem(problem)
    report = stability_report(problem, mode=mode)
    rows = []
    for name, interval in report.intervals.items():
        if interval is None:
            rows.append([name, "-", "-", "degenerate"])
            continue
        full = abs(interval.lower) < 1e-6 and abs(interval.upper - 1) < 1e-6
        rows.append(
            [name, interval.lower, interval.upper, "full" if full else "BOUNDED"]
        )
    return render_table(["objective", "low", "up", "note"], rows, precision=3)


def run_monte_carlo(
    problem: Optional[DecisionProblem] = None,
    n_simulations: int = MC_SIMULATIONS,
    seed: int = MC_SEED,
) -> MonteCarloResult:
    """The §V interval-weight simulation behind Figs. 9 and 10.

    Weights are drawn inside the elicited Fig. 5 intervals; the
    utilities of *missing* performances are drawn uniformly in [0, 1]
    per simulation (the ref.-[18] reading of an unknown value), which
    reproduces Fig. 10's pattern of fluctuating-vs-pinned ranks.
    """
    return simulate(
        _problem(problem),
        method="intervals",
        n_simulations=n_simulations,
        seed=seed,
        sample_utilities="missing",
    )


def figure_9(
    problem: Optional[DecisionProblem] = None,
    result: Optional[MonteCarloResult] = None,
) -> str:
    """The multiple boxplot of simulated ranks."""
    if result is None:
        result = run_monte_carlo(problem)
    summaries = [
        next(s for s in result.boxplot_summary() if s.name == name)
        for name in CANDIDATE_NAMES
    ]
    renamed = [
        type(s)(SHORT_NAMES.get(s.name, s.name), s.whisker_low, s.q1, s.median, s.q3, s.whisker_high)
        for s in summaries
    ]
    return rank_boxplots(renamed, n_alternatives=len(CANDIDATE_NAMES))


def figure_10(
    problem: Optional[DecisionProblem] = None,
    result: Optional[MonteCarloResult] = None,
) -> str:
    """The simulation statistics table (mode, extremes, percentiles)."""
    if result is None:
        result = run_monte_carlo(problem)
    rows = []
    for name in CANDIDATE_NAMES:
        s = result.statistics_for(name)
        rows.append(
            [
                SHORT_NAMES.get(name, name),
                s.mode, s.minimum, s.p25, s.p50, s.p75, s.maximum,
                s.mean, s.std,
            ]
        )
    return render_table(
        ["candidate", "mode", "min", "25th", "50th", "75th", "max", "mean", "std"],
        rows,
        precision=3,
    )


def screening_summary(problem: Optional[DecisionProblem] = None) -> str:
    """§V's dominance / potential-optimality screening as text."""
    problem = _problem(problem)
    result = screen(AdditiveModel(problem))
    lines = [
        f"non-dominated: {len(result.non_dominated)} of {len(CANDIDATE_NAMES)}",
        f"potentially optimal: {len(result.potentially_optimal)}",
        "discarded: " + ", ".join(result.discarded),
    ]
    return "\n".join(lines)
