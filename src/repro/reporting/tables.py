"""Plain-text tables and CSV export.

GMAA is a GUI; the reproduction's figures are deterministic text.  A
table is a header row plus value rows; numbers are formatted to a fixed
precision so the output is diffable across runs.
"""

from __future__ import annotations

import io
from typing import Iterable, List, Optional, Sequence

__all__ = ["render_table", "to_csv"]


def _format_cell(value: object, precision: int) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 4,
    align_left: Optional[Sequence[bool]] = None,
) -> str:
    """Render rows as a fixed-width text table.

    ``align_left`` marks columns rendered flush-left (defaults to the
    first column only — names left, numbers right).
    """
    formatted: List[List[str]] = [
        [_format_cell(cell, precision) for cell in row] for row in rows
    ]
    n_cols = len(headers)
    for row in formatted:
        if len(row) != n_cols:
            raise ValueError(
                f"row width {len(row)} does not match header width {n_cols}"
            )
    if align_left is None:
        align_left = [i == 0 for i in range(n_cols)]
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in formatted))
        if formatted
        else len(headers[c])
        for c in range(n_cols)
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for c, cell in enumerate(cells):
            if align_left[c]:
                parts.append(cell.ljust(widths[c]))
            else:
                parts.append(cell.rjust(widths[c]))
        return "  ".join(parts).rstrip()

    lines = [fmt_row(headers), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in formatted)
    return "\n".join(lines)


def to_csv(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 6,
) -> str:
    """CSV text for the same data (RFC-4180 quoting)."""
    out = io.StringIO()

    def write_row(cells: Sequence[str]) -> None:
        quoted = []
        for cell in cells:
            if any(ch in cell for ch in ',"\n'):
                cell = '"' + cell.replace('"', '""') + '"'
            quoted.append(cell)
        out.write(",".join(quoted) + "\r\n")

    write_row([str(h) for h in headers])
    for row in rows:
        write_row([_format_cell(cell, precision) for cell in row])
    return out.getvalue()
