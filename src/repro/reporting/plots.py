"""ASCII charts: interval bars (Fig. 5/6 style) and boxplots (Fig. 9).

Each chart maps a value range onto a fixed-width character axis.  The
renderings are deterministic, making them usable in examples, CLI
output and golden tests alike.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..core.montecarlo import BoxplotSummary

__all__ = ["interval_bars", "rank_boxplots"]


def _scale(value: float, lo: float, hi: float, width: int) -> int:
    if hi <= lo:
        return 0
    fraction = (value - lo) / (hi - lo)
    return min(width - 1, max(0, round(fraction * (width - 1))))


def interval_bars(
    entries: Sequence[Tuple[str, float, float, float]],
    width: int = 50,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """Bars with a marker: ``(name, lower, mid, upper)`` per row.

    Renders ``---|===o===|---``-free minimalist bars: ``=`` spans the
    interval, ``o`` marks the mid value.  Used for weight intervals
    (Fig. 5's bar column) and overall-utility bands (Fig. 6).
    """
    if not entries:
        raise ValueError("nothing to plot")
    for name, low, mid, up in entries:
        if not low <= mid <= up:
            raise ValueError(
                f"{name!r}: need lower <= mid <= upper, got "
                f"({low}, {mid}, {up})"
            )
    lo = min(e[1] for e in entries) if lo is None else lo
    hi = max(e[3] for e in entries) if hi is None else hi
    label_width = max(len(e[0]) for e in entries)
    lines = []
    for name, low, mid, up in entries:
        cells = [" "] * width
        start = _scale(low, lo, hi, width)
        end = _scale(up, lo, hi, width)
        for i in range(start, end + 1):
            cells[i] = "="
        cells[_scale(mid, lo, hi, width)] = "o"
        lines.append(f"{name.ljust(label_width)} |{''.join(cells)}|")
    scale_line = f"{' ' * label_width} |{lo:<{width // 2}.3f}{hi:>{width - width // 2}.3f}|"
    lines.append(scale_line)
    return "\n".join(lines)


def rank_boxplots(
    summaries: Sequence[BoxplotSummary],
    n_alternatives: Optional[int] = None,
    width: int = 60,
) -> str:
    """A multiple boxplot of rank distributions (Fig. 9).

    Whiskers are ``-``, the interquartile box ``#``, the median ``M``.
    The axis runs from rank 1 (left, best) to the worst rank (right).
    """
    if not summaries:
        raise ValueError("nothing to plot")
    worst = n_alternatives or int(max(s.whisker_high for s in summaries))
    label_width = max(len(s.name) for s in summaries)
    lines = []
    for s in summaries:
        cells = [" "] * width
        w_lo = _scale(s.whisker_low, 1, worst, width)
        w_hi = _scale(s.whisker_high, 1, worst, width)
        b_lo = _scale(s.q1, 1, worst, width)
        b_hi = _scale(s.q3, 1, worst, width)
        for i in range(w_lo, w_hi + 1):
            cells[i] = "-"
        for i in range(b_lo, b_hi + 1):
            cells[i] = "#"
        cells[_scale(s.median, 1, worst, width)] = "M"
        lines.append(f"{s.name.ljust(label_width)} |{''.join(cells)}|")
    axis = f"{' ' * label_width} |1{'rank'.center(width - 2)}{worst}|"
    lines.append(axis)
    return "\n".join(lines)
