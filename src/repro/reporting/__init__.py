"""Deterministic textual figures, tables and charts."""

from .figures import (
    figure_1,
    figure_2,
    figure_3,
    figure_4,
    figure_5,
    figure_6,
    figure_7,
    figure_8,
    figure_9,
    figure_10,
    run_monte_carlo,
    screening_summary,
)
from .plots import interval_bars, rank_boxplots
from .tables import render_table, to_csv

__all__ = [
    "render_table",
    "to_csv",
    "interval_bars",
    "rank_boxplots",
    "figure_1",
    "figure_2",
    "figure_3",
    "figure_4",
    "figure_5",
    "figure_6",
    "figure_7",
    "figure_8",
    "figure_9",
    "figure_10",
    "run_monte_carlo",
    "screening_summary",
]
