"""Reproduction of *A MAUT Approach for Reusing Ontologies* (ICDE W. 2012).

The package has five layers:

* :mod:`repro.core` — the GMAA-style imprecise additive MAUT engine
  (hierarchies, interval utilities/weights, evaluation, stability,
  dominance, Monte Carlo sensitivity analysis, group support).
* :mod:`repro.ontology` — an ontology substrate: OWL-ish model, Turtle
  subset parser, triple graph, structural/lexical metrics, competency-
  question coverage, synthetic corpus generation and merging.
* :mod:`repro.neon` — the NeOn reuse activities: criteria (Fig. 1),
  candidate assessment, MAUT selection with the 70 % CQ rule, pipeline.
* :mod:`repro.casestudy` — the paper's multimedia case study: the 23
  candidate ontologies, the reconstructed performance matrix, the
  Fig. 5 weights and Figs. 3-4 utilities, and the published results.
* :mod:`repro.baselines` / :mod:`repro.reporting` — comparison rankers
  (thesis worst-case treatment, AKTiveRank-style, classic MCDM) and
  deterministic textual figures.

Quickstart::

    from repro.casestudy import multimedia_problem
    from repro.core import evaluate, simulate

    problem = multimedia_problem()
    print(evaluate(problem).names_by_rank[:5])
    print(simulate(problem, method="intervals", seed=7).top_k_by_mean(5))
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
