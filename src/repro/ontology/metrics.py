"""Structural and lexical ontology metrics.

These metrics are the measurable signals behind the §II criteria: the
NeOn assess activity turns them into the 0-3 levels of the decision
attributes (that mapping lives in :mod:`repro.neon.assessment`).

* *Documentation quality* ← entity documentation coverage + dedicated
  documentation URLs ("a wiki, article or web page describing the
  candidate ontology").
* *Availability of external knowledge* ← ``rdfs:seeAlso`` references
  and creator records ("references to documentation sources and/or
  experts are easily available").
* *Code clarity* ← comment coverage and naming-style consistency
  ("knowledge entities follow unified patterns and are clear ...
  includes clear and coherent definitions and comments").
* *Adequacy of naming conventions* ← intuitive-name fraction and
  standard-vocabulary hits ("low if the names are not intuitive,
  medium if they are clearly understandable and high if they are taken
  from a given standard (e.g. W3C, MPEG7, etc.)").
* *Adequacy of knowledge extraction* ← modularity signals (root
  fan-out, tangledness).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from .model import Ontology
from .vocab import STANDARD_NAMESPACES

__all__ = [
    "split_identifier",
    "case_style",
    "OntologyMetrics",
    "compute_metrics",
]

_CAMEL_RE = re.compile(r"[A-Z]?[a-z0-9]+|[A-Z]+(?![a-z])")

#: Local names drawn from widely adopted standards (MPEG-7 part 5 MDS,
#: W3C Ontology for Media Resources, Dublin Core).  The standard-
#: vocabulary metric counts how many entity names land in this set.
STANDARD_TERMS: frozenset = frozenset(
    term.lower()
    for term in (
        # MPEG-7 MDS core descriptors
        "Multimedia", "MultimediaContent", "Segment", "SegmentDecomposition",
        "StillRegion", "MovingRegion", "VideoSegment", "AudioSegment",
        "MediaInformation", "MediaProfile", "MediaFormat", "MediaInstance",
        "CreationInformation", "Creator", "UsageInformation",
        "SemanticBase", "AgentObject", "Event", "Concept", "Object", "Place",
        "Time", "MediaTime", "MediaDuration", "MediaLocator", "MediaUri",
        # W3C Media Ontology / Media Annotations WG
        "MediaResource", "MediaFragment", "Track", "AudioTrack", "VideoTrack",
        "Image", "Collection", "Rating", "TargetAudience", "Location",
        "frameRate", "samplingRate", "averageBitRate", "duration", "title",
        "language", "copyright", "policy", "publisher", "genre", "releaseDate",
        # Dublin Core
        "contributor", "coverage", "creator", "date", "description", "format",
        "identifier", "relation", "rights", "source", "subject", "type",
    )
)


def split_identifier(name: str) -> Tuple[str, ...]:
    """Split an identifier into lowercase word tokens.

    Handles camelCase, PascalCase, snake_case, kebab-case and digit
    boundaries: ``"hasVideoSegment" -> ("has", "video", "segment")``.
    """
    parts: List[str] = []
    for chunk in re.split(r"[\s_\-.]+", name):
        parts.extend(_CAMEL_RE.findall(chunk))
    return tuple(part.lower() for part in parts if part)


def case_style(name: str) -> str:
    """Classify an identifier's case convention.

    Returns one of ``"camel"``, ``"pascal"``, ``"snake"``, ``"kebab"``,
    ``"lower"``, ``"upper"`` or ``"mixed"``.
    """
    if not name:
        return "mixed"
    if "_" in name:
        return "snake" if name.replace("_", "").isalnum() else "mixed"
    if "-" in name:
        return "kebab" if name.replace("-", "").isalnum() else "mixed"
    if name.isupper():
        return "upper"
    if name.islower():
        return "lower"
    if name[0].isupper():
        return "pascal" if name.isalnum() else "mixed"
    if name[0].islower():
        return "camel" if name.isalnum() else "mixed"
    return "mixed"


_VOWELS = set("aeiou")


def _is_intuitive(name: str) -> bool:
    """Heuristic for "the names are ... clearly understandable".

    A name is intuitive when it decomposes into pronounceable word
    tokens: every token at least three characters (or a known short
    word) and containing a vowel.  Opaque identifiers (``C123``,
    ``xyzq``) fail.
    """
    short_words = {"id", "is", "has", "of", "to", "in", "on", "at", "by", "or"}
    tokens = split_identifier(name)
    if not tokens:
        return False
    for token in tokens:
        if token.isdigit():
            return False
        if token in short_words:
            continue
        if len(token) < 3 or not (_VOWELS & set(token)):
            return False
    return True


@dataclass(frozen=True)
class OntologyMetrics:
    """The measured profile of one ontology."""

    iri: str
    # Size
    n_classes: int
    n_object_properties: int
    n_data_properties: int
    n_individuals: int
    # Structure
    max_depth: int
    mean_depth: float
    n_roots: int
    tangledness: float           # fraction of classes with > 1 superclass
    density: float               # (subclass + property arcs) per class
    # Documentation
    documentation_coverage: float  # entities with label AND comment
    label_coverage: float
    comment_coverage: float
    n_documentation_urls: int
    n_see_also: int
    n_creators: int
    # Naming
    dominant_case_style: str
    case_consistency: float      # fraction of names in the dominant style
    intuitive_name_fraction: float
    standard_term_fraction: float
    # Language
    language: str

    @property
    def n_properties(self) -> int:
        return self.n_object_properties + self.n_data_properties

    @property
    def n_entities(self) -> int:
        return self.n_classes + self.n_properties + self.n_individuals


def _depth_stats(ontology: Ontology) -> Tuple[int, float, int, float]:
    """(max depth, mean depth, root count, tangledness) of the class tree."""
    classes = {cls.iri: cls for cls in ontology.classes}
    if not classes:
        return 0, 0.0, 0, 0.0
    depth_cache: Dict[str, int] = {}

    def depth(iri: str, trail: Set[str]) -> int:
        if iri in depth_cache:
            return depth_cache[iri]
        if iri in trail:  # subclass cycle: treat the repeated node as a root
            return 1
        cls = classes.get(iri)
        parents = [p for p in (cls.superclasses if cls else []) if p in classes]
        if not parents:
            result = 1
        else:
            result = 1 + max(depth(p, trail | {iri}) for p in parents)
        depth_cache[iri] = result
        return result

    depths = [depth(iri, set()) for iri in classes]
    roots = sum(
        1
        for cls in classes.values()
        if not any(p in classes for p in cls.superclasses)
    )
    tangled = sum(
        1
        for cls in classes.values()
        if sum(1 for p in cls.superclasses if p in classes) > 1
    )
    return (
        max(depths),
        sum(depths) / len(depths),
        roots,
        tangled / len(classes),
    )


def compute_metrics(ontology: Ontology) -> OntologyMetrics:
    """Measure one ontology (pure function of the model)."""
    entities = list(ontology.entities())
    n_entities = len(entities)

    labelled = sum(1 for e in entities if e.label)
    commented = sum(1 for e in entities if e.comment)
    documented = sum(1 for e in entities if e.is_documented)
    see_also = sum(len(e.see_also) for e in entities)

    names = [e.name for e in entities if e.name]
    styles: Dict[str, int] = {}
    for name in names:
        style = case_style(name)
        styles[style] = styles.get(style, 0) + 1
    # camel, pascal and single lowercase words count as one family:
    # "hasSegment" + "VideoSegment" + "duration" is the usual,
    # consistent OWL convention (a one-word camelCase name has no hump).
    family: Dict[str, int] = {}
    for style, count in styles.items():
        key = "camel" if style in ("camel", "pascal", "lower") else style
        family[key] = family.get(key, 0) + count
    if family:
        dominant = max(sorted(family), key=lambda k: family[k])
        consistency = family[dominant] / len(names)
    else:
        dominant, consistency = "mixed", 0.0

    intuitive = (
        sum(1 for name in names if _is_intuitive(name)) / len(names)
        if names
        else 0.0
    )
    standard_hits = 0
    for entity in entities:
        in_std_ns = any(entity.iri.startswith(ns) for ns in STANDARD_NAMESPACES)
        if in_std_ns or entity.name.lower() in STANDARD_TERMS:
            standard_hits += 1
    standard_fraction = standard_hits / n_entities if n_entities else 0.0

    max_depth, mean_depth, n_roots, tangledness = _depth_stats(ontology)
    n_classes = len(ontology.classes)
    n_subclass_arcs = sum(len(c.superclasses) for c in ontology.classes)
    n_props = len(ontology.properties)
    density = (n_subclass_arcs + n_props) / n_classes if n_classes else 0.0

    return OntologyMetrics(
        iri=ontology.iri,
        n_classes=n_classes,
        n_object_properties=len(ontology.object_properties),
        n_data_properties=len(ontology.data_properties),
        n_individuals=len(ontology.individuals),
        max_depth=max_depth,
        mean_depth=mean_depth,
        n_roots=n_roots,
        tangledness=tangledness,
        density=density,
        documentation_coverage=documented / n_entities if n_entities else 0.0,
        label_coverage=labelled / n_entities if n_entities else 0.0,
        comment_coverage=commented / n_entities if n_entities else 0.0,
        n_documentation_urls=len(ontology.documentation_urls),
        n_see_also=see_also,
        n_creators=len(ontology.creators),
        dominant_case_style=dominant,
        case_consistency=consistency,
        intuitive_name_fraction=intuitive,
        standard_term_fraction=standard_fraction,
        language=ontology.language,
    )
