"""An in-memory RDF triple store with pattern matching.

owlready2/rdflib are not available in this environment, so the
substrate ships its own minimal store.  Subjects and predicates are IRI
strings (blank nodes use the ``_:`` prefix); objects are IRI strings or
:class:`Literal` values.  Three hash indexes (SPO/POS/OSP) make every
single-wildcard pattern a dictionary walk rather than a scan, which
keeps the metrics and the merge fast on corpus-sized graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple, Union

from .vocab import XSD

__all__ = ["Literal", "Term", "Triple", "TripleGraph", "is_blank"]


@dataclass(frozen=True)
class Literal:
    """An RDF literal: lexical value plus optional datatype or language.

    A literal carries *either* a language tag (then its datatype is
    ``rdf:langString`` conceptually) or a datatype IRI, never both.
    """

    value: str
    datatype: Optional[str] = None
    lang: Optional[str] = None

    def __post_init__(self) -> None:
        if self.datatype is not None and self.lang is not None:
            raise ValueError("a literal cannot have both a datatype and a language")

    @staticmethod
    def string(value: str, lang: Optional[str] = None) -> "Literal":
        return Literal(str(value), lang=lang)

    @staticmethod
    def integer(value: int) -> "Literal":
        return Literal(str(int(value)), datatype=XSD.integer)

    @staticmethod
    def decimal(value: float) -> "Literal":
        return Literal(repr(float(value)), datatype=XSD.decimal)

    @staticmethod
    def boolean(value: bool) -> "Literal":
        return Literal("true" if value else "false", datatype=XSD.boolean)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.lang:
            return f'Literal("{self.value}"@{self.lang})'
        if self.datatype:
            return f'Literal("{self.value}"^^<{self.datatype}>)'
        return f'Literal("{self.value}")'


Term = Union[str, Literal]
Triple = Tuple[str, str, Term]


def is_blank(term: Term) -> bool:
    """True for blank-node identifiers (``_:`` prefixed strings)."""
    return isinstance(term, str) and term.startswith("_:")


class TripleGraph:
    """A set of triples with SPO/POS/OSP indexes.

    Patterns use ``None`` as the wildcard::

        graph.triples(None, RDF.type, OWL.Class)   # all OWL classes
        graph.objects(cls, RDFS.label)             # labels of one class
    """

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        self._spo: Dict[str, Dict[str, Set[Term]]] = {}
        self._pos: Dict[str, Dict[Term, Set[str]]] = {}
        self._osp: Dict[Term, Dict[str, Set[str]]] = {}
        self._size = 0
        for s, p, o in triples:
            self.add(s, p, o)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, s: str, p: str, o: Term) -> bool:
        """Insert one triple; returns False when it was already present."""
        if not isinstance(s, str) or not s:
            raise ValueError(f"invalid subject {s!r}")
        if not isinstance(p, str) or not p:
            raise ValueError(f"invalid predicate {p!r}")
        if isinstance(p, str) and p.startswith("_:"):
            raise ValueError("predicates cannot be blank nodes")
        if not isinstance(o, (str, Literal)) or (isinstance(o, str) and not o):
            raise ValueError(f"invalid object {o!r}")
        bucket = self._spo.setdefault(s, {}).setdefault(p, set())
        if o in bucket:
            return False
        bucket.add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        self._size += 1
        return True

    def discard(self, s: str, p: str, o: Term) -> bool:
        """Remove one triple; returns False when it was not present."""
        try:
            bucket = self._spo[s][p]
            bucket.remove(o)
        except KeyError:
            return False
        if not bucket:
            del self._spo[s][p]
            if not self._spo[s]:
                del self._spo[s]
        self._pos[p][o].discard(s)
        if not self._pos[p][o]:
            del self._pos[p][o]
            if not self._pos[p]:
                del self._pos[p]
        self._osp[o][s].discard(p)
        if not self._osp[o][s]:
            del self._osp[o][s]
            if not self._osp[o]:
                del self._osp[o]
        self._size -= 1
        return True

    def update(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; returns how many were new."""
        return sum(1 for s, p, o in triples if self.add(s, p, o))

    # ------------------------------------------------------------------
    # Pattern matching
    # ------------------------------------------------------------------
    def triples(
        self,
        s: Optional[str] = None,
        p: Optional[str] = None,
        o: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """All triples matching the pattern (``None`` = wildcard)."""
        if s is not None:
            by_pred = self._spo.get(s)
            if by_pred is None:
                return
            preds = (p,) if p is not None else tuple(by_pred)
            for pred in preds:
                objects = by_pred.get(pred)
                if objects is None:
                    continue
                if o is not None:
                    if o in objects:
                        yield (s, pred, o)
                else:
                    for obj in objects:
                        yield (s, pred, obj)
        elif p is not None:
            by_obj = self._pos.get(p)
            if by_obj is None:
                return
            objs = (o,) if o is not None else tuple(by_obj)
            for obj in objs:
                for subj in by_obj.get(obj, ()):
                    yield (subj, p, obj)
        elif o is not None:
            by_subj = self._osp.get(o)
            if by_subj is None:
                return
            for subj, preds in by_subj.items():
                for pred in preds:
                    yield (subj, pred, o)
        else:
            for subj, by_pred in self._spo.items():
                for pred, objects in by_pred.items():
                    for obj in objects:
                        yield (subj, pred, obj)

    def subjects(self, p: Optional[str] = None, o: Optional[Term] = None) -> Iterator[str]:
        seen: Set[str] = set()
        for s, _, _ in self.triples(None, p, o):
            if s not in seen:
                seen.add(s)
                yield s

    def objects(self, s: Optional[str] = None, p: Optional[str] = None) -> Iterator[Term]:
        seen: Set[Term] = set()
        for _, _, o in self.triples(s, p, None):
            if o not in seen:
                seen.add(o)
                yield o

    def predicates(self, s: Optional[str] = None, o: Optional[Term] = None) -> Iterator[str]:
        seen: Set[str] = set()
        for _, p, _ in self.triples(s, None, o):
            if p not in seen:
                seen.add(p)
                yield p

    def value(self, s: str, p: str) -> Optional[Term]:
        """An arbitrary single object for (s, p), or None."""
        for _, _, o in self.triples(s, p, None):
            return o
        return None

    def __contains__(self, triple: Triple) -> bool:
        s, p, o = triple
        return o in self._spo.get(s, {}).get(p, ())

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __bool__(self) -> bool:
        return self._size > 0

    # ------------------------------------------------------------------
    # Whole-graph operations
    # ------------------------------------------------------------------
    def copy(self) -> "TripleGraph":
        return TripleGraph(self)

    def __or__(self, other: "TripleGraph") -> "TripleGraph":
        merged = self.copy()
        merged.update(other)
        return merged

    def subjects_of_type(self, type_iri: str, rdf_type: str) -> Iterator[str]:
        """Subjects with an ``rdf:type`` arc to ``type_iri``."""
        return self.subjects(rdf_type, type_iri)

    def equals(self, other: "TripleGraph") -> bool:
        """Set equality of triples (blank-node labels compared literally)."""
        if len(self) != len(other):
            return False
        return all(t in other for t in self)
