"""File I/O for ontologies: format dispatch and corpus directories.

The substrate speaks three RDF syntaxes (Turtle, N-Triples, RDF/XML);
this module routes by file suffix and packages whole registries as
on-disk corpora — one serialised ontology per candidate plus a JSON
manifest holding the reuse metadata the triples cannot carry.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Optional, Union

from .corpus import OntologyRegistry, RegisteredOntology, ReuseMetadata
from .graph import TripleGraph
from .model import Ontology
from .ntriples import parse_ntriples, serialise_ntriples
from .rdfxml import parse_rdfxml, serialise_rdfxml
from .turtle import parse as parse_turtle
from .turtle import serialise as serialise_turtle

__all__ = [
    "FORMATS",
    "load_graph",
    "dump_graph",
    "load_ontology",
    "dump_ontology",
    "dump_registry",
    "load_registry",
]

#: suffix -> (parser, serialiser)
FORMATS = {
    ".ttl": (parse_turtle, serialise_turtle),
    ".nt": (parse_ntriples, lambda g, prefixes=None: serialise_ntriples(g)),
    ".rdf": (parse_rdfxml, serialise_rdfxml),
    ".owl": (parse_rdfxml, serialise_rdfxml),
}

_MANIFEST = "corpus.json"


def _codec(path: Path):
    suffix = path.suffix.lower()
    try:
        return FORMATS[suffix]
    except KeyError:
        raise ValueError(
            f"unsupported ontology format {suffix!r}; expected one of "
            f"{sorted(FORMATS)}"
        ) from None


def load_graph(path: Union[str, Path]) -> TripleGraph:
    """Parse a triple graph from ``path`` (format from the suffix)."""
    path = Path(path)
    parser, _ = _codec(path)
    return parser(path.read_text())


def dump_graph(
    graph: TripleGraph,
    path: Union[str, Path],
    prefixes: Optional[Dict[str, str]] = None,
) -> None:
    """Serialise ``graph`` to ``path`` (format from the suffix)."""
    path = Path(path)
    _, serialiser = _codec(path)
    path.write_text(serialiser(graph, prefixes))


def load_ontology(path: Union[str, Path], language: str = "OWL") -> Ontology:
    """Parse an :class:`~repro.ontology.model.Ontology` from a file."""
    return Ontology.from_graph(load_graph(path), language=language)


def dump_ontology(ontology: Ontology, path: Union[str, Path]) -> None:
    """Serialise an ontology's graph form to a file."""
    dump_graph(ontology.to_graph(), path, ontology.prefixes)


def _slug(name: str) -> str:
    return "".join(ch.lower() if ch.isalnum() else "-" for ch in name).strip("-")


def dump_registry(
    registry: OntologyRegistry,
    directory: Union[str, Path],
    fmt: str = ".ttl",
) -> Path:
    """Write a whole registry as an on-disk corpus.

    One ``<slug><fmt>`` file per candidate plus a ``corpus.json``
    manifest recording names, file paths, languages, keywords and reuse
    metadata.  Returns the manifest path.
    """
    if fmt not in FORMATS:
        raise ValueError(f"unsupported format {fmt!r}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = []
    for entry in registry:
        filename = _slug(entry.name) + fmt
        dump_ontology(entry.ontology, directory / filename)
        manifest.append(
            {
                "name": entry.name,
                "file": filename,
                "language": entry.ontology.language,
                "keywords": list(entry.keywords),
                "metadata": dataclasses.asdict(entry.metadata),
            }
        )
    manifest_path = directory / _MANIFEST
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return manifest_path


def load_registry(directory: Union[str, Path]) -> OntologyRegistry:
    """Rebuild a registry from a corpus directory written by
    :func:`dump_registry`."""
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise FileNotFoundError(f"no {_MANIFEST} manifest in {directory}")
    entries = []
    for record in json.loads(manifest_path.read_text()):
        metadata = record.get("metadata", {})
        if metadata.get("reused_by") is not None:
            metadata["reused_by"] = tuple(metadata["reused_by"])
        entries.append(
            RegisteredOntology(
                name=record["name"],
                ontology=load_ontology(
                    directory / record["file"],
                    language=record.get("language", "OWL"),
                ),
                metadata=ReuseMetadata(**metadata),
                keywords=tuple(record.get("keywords", ())),
            )
        )
    return OntologyRegistry(entries)
