"""The ontology object model.

A deliberately small OWL-ish model: named classes with subclass links,
object/data properties with domains and ranges, individuals with types,
and annotations (label, comment, seeAlso, Dublin Core metadata) on
everything.  This is the level of description the NeOn assess activity
needs — structural shape, lexical layer and documentation richness —
not a reasoner.

:meth:`Ontology.to_graph` / :meth:`Ontology.from_graph` convert to and
from :class:`~repro.ontology.graph.TripleGraph`, which the Turtle
parser/serialiser and the merge substrate operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .graph import Literal, TripleGraph
from .vocab import CORE_PREFIXES, DC, OWL, RDF, RDFS, local_name

__all__ = [
    "Entity",
    "OntClass",
    "OntProperty",
    "Individual",
    "Ontology",
]


@dataclass
class Entity:
    """Anything with an IRI and annotations."""

    iri: str
    label: Optional[str] = None
    comment: Optional[str] = None
    see_also: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.iri:
            raise ValueError("entity IRI must be non-empty")

    @property
    def name(self) -> str:
        """The IRI's local name (used by the lexical metrics)."""
        return local_name(self.iri)

    @property
    def is_documented(self) -> bool:
        """Documented = it carries at least a label and a comment."""
        return bool(self.label) and bool(self.comment)


@dataclass
class OntClass(Entity):
    """A named class and its direct superclasses (IRIs)."""

    superclasses: List[str] = field(default_factory=list)


@dataclass
class OntProperty(Entity):
    """An object or datatype property.

    ``kind`` is ``"object"`` or ``"data"``; domain/range hold class
    IRIs (range holds a datatype IRI for data properties).
    """

    kind: str = "object"
    domain: Optional[str] = None
    range: Optional[str] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.kind not in ("object", "data"):
            raise ValueError(f"property kind must be 'object' or 'data', got {self.kind!r}")


@dataclass
class Individual(Entity):
    """A named individual and its asserted types (class IRIs)."""

    types: List[str] = field(default_factory=list)


class Ontology:
    """A named ontology: entities, imports, metadata and prefixes.

    ``language`` records the implementation language of the source
    artefact (``"OWL"``, ``"RDFS"``, ``"OBO"``, ...) — the *adequacy of
    the implementation language* criterion of §II compares it against
    the target ontology's.  ``documentation_urls`` back the
    *documentation quality* criterion ("a wiki, article or web page
    describing the candidate ontology").
    """

    def __init__(
        self,
        iri: str,
        label: Optional[str] = None,
        comment: Optional[str] = None,
        language: str = "OWL",
        version: str = "",
    ) -> None:
        if not iri:
            raise ValueError("ontology IRI must be non-empty")
        self.iri = iri
        self.label = label
        self.comment = comment
        self.language = language
        self.version = version
        self.imports: List[str] = []
        self.documentation_urls: List[str] = []
        self.creators: List[str] = []
        self.prefixes: Dict[str, str] = dict(CORE_PREFIXES)
        self._classes: Dict[str, OntClass] = {}
        self._properties: Dict[str, OntProperty] = {}
        self._individuals: Dict[str, Individual] = {}

    # ------------------------------------------------------------------
    # Entity management
    # ------------------------------------------------------------------
    def add_class(self, cls: OntClass) -> OntClass:
        if cls.iri in self._classes:
            raise ValueError(f"class {cls.iri!r} already present")
        self._classes[cls.iri] = cls
        return cls

    def add_property(self, prop: OntProperty) -> OntProperty:
        if prop.iri in self._properties:
            raise ValueError(f"property {prop.iri!r} already present")
        self._properties[prop.iri] = prop
        return prop

    def add_individual(self, ind: Individual) -> Individual:
        if ind.iri in self._individuals:
            raise ValueError(f"individual {ind.iri!r} already present")
        self._individuals[ind.iri] = ind
        return ind

    def bind(self, prefix: str, namespace: str) -> None:
        self.prefixes[prefix] = namespace

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def classes(self) -> Tuple[OntClass, ...]:
        return tuple(self._classes.values())

    @property
    def properties(self) -> Tuple[OntProperty, ...]:
        return tuple(self._properties.values())

    @property
    def object_properties(self) -> Tuple[OntProperty, ...]:
        return tuple(p for p in self._properties.values() if p.kind == "object")

    @property
    def data_properties(self) -> Tuple[OntProperty, ...]:
        return tuple(p for p in self._properties.values() if p.kind == "data")

    @property
    def individuals(self) -> Tuple[Individual, ...]:
        return tuple(self._individuals.values())

    def get_class(self, iri: str) -> OntClass:
        try:
            return self._classes[iri]
        except KeyError:
            raise KeyError(f"no class {iri!r} in ontology {self.iri!r}") from None

    def has_class(self, iri: str) -> bool:
        return iri in self._classes

    def entities(self) -> Iterator[Entity]:
        yield from self._classes.values()
        yield from self._properties.values()
        yield from self._individuals.values()

    def entity_count(self) -> int:
        return len(self._classes) + len(self._properties) + len(self._individuals)

    # ------------------------------------------------------------------
    # Lexical layer
    # ------------------------------------------------------------------
    def lexical_entries(self) -> Tuple[str, ...]:
        """Every label and local name of every entity (deduplicated).

        The CQ coverage scorer matches competency-question terms against
        this layer.
        """
        seen: Set[str] = set()
        out: List[str] = []
        for entity in self.entities():
            for text in (entity.label, entity.name):
                if text and text not in seen:
                    seen.add(text)
                    out.append(text)
        return tuple(out)

    # ------------------------------------------------------------------
    # Graph conversion
    # ------------------------------------------------------------------
    def to_graph(self) -> TripleGraph:
        """Serialise the model as triples (the substrate's wire form)."""
        g = TripleGraph()
        g.add(self.iri, RDF.type, OWL.Ontology)
        if self.label:
            g.add(self.iri, RDFS.label, Literal.string(self.label))
        if self.comment:
            g.add(self.iri, RDFS.comment, Literal.string(self.comment))
        if self.version:
            g.add(self.iri, OWL.versionInfo, Literal.string(self.version))
        for imported in self.imports:
            g.add(self.iri, OWL.imports, imported)
        for url in self.documentation_urls:
            g.add(self.iri, RDFS.seeAlso, url)
        for creator in self.creators:
            g.add(self.iri, DC.creator, Literal.string(creator))

        def annotate(entity: Entity) -> None:
            if entity.label:
                g.add(entity.iri, RDFS.label, Literal.string(entity.label))
            if entity.comment:
                g.add(entity.iri, RDFS.comment, Literal.string(entity.comment))
            for ref in entity.see_also:
                g.add(entity.iri, RDFS.seeAlso, ref)

        for cls in self._classes.values():
            g.add(cls.iri, RDF.type, OWL.Class)
            annotate(cls)
            for sup in cls.superclasses:
                g.add(cls.iri, RDFS.subClassOf, sup)
        for prop in self._properties.values():
            type_iri = (
                OWL.ObjectProperty if prop.kind == "object" else OWL.DatatypeProperty
            )
            g.add(prop.iri, RDF.type, type_iri)
            annotate(prop)
            if prop.domain:
                g.add(prop.iri, RDFS.domain, prop.domain)
            if prop.range:
                g.add(prop.iri, RDFS.range, prop.range)
        for ind in self._individuals.values():
            g.add(ind.iri, RDF.type, OWL.NamedIndividual)
            annotate(ind)
            for type_iri in ind.types:
                g.add(ind.iri, RDF.type, type_iri)
        return g

    @classmethod
    def from_graph(cls, graph: TripleGraph, language: str = "OWL") -> "Ontology":
        """Rebuild a model from triples produced by :meth:`to_graph`.

        Also accepts graphs parsed from external Turtle: any subject
        typed ``owl:Class`` / ``owl:ObjectProperty`` /
        ``owl:DatatypeProperty`` / ``owl:NamedIndividual`` is lifted;
        unknown triples are ignored.
        """
        onto_iris = list(graph.subjects(RDF.type, OWL.Ontology))
        if not onto_iris:
            raise ValueError("graph declares no owl:Ontology")
        if len(onto_iris) > 1:
            raise ValueError(
                f"graph declares {len(onto_iris)} ontologies; expected one"
            )
        iri = onto_iris[0]

        def text(subject: str, predicate: str) -> Optional[str]:
            value = graph.value(subject, predicate)
            return value.value if isinstance(value, Literal) else None

        def refs(subject: str, predicate: str) -> List[str]:
            return sorted(
                o for o in graph.objects(subject, predicate) if isinstance(o, str)
            )

        onto = cls(
            iri,
            label=text(iri, RDFS.label),
            comment=text(iri, RDFS.comment),
            language=language,
            version=text(iri, OWL.versionInfo) or "",
        )
        onto.imports = refs(iri, OWL.imports)
        onto.documentation_urls = refs(iri, RDFS.seeAlso)
        onto.creators = sorted(
            o.value
            for o in graph.objects(iri, DC.creator)
            if isinstance(o, Literal)
        )

        for subject in sorted(graph.subjects(RDF.type, OWL.Class)):
            onto.add_class(
                OntClass(
                    subject,
                    label=text(subject, RDFS.label),
                    comment=text(subject, RDFS.comment),
                    see_also=refs(subject, RDFS.seeAlso),
                    superclasses=refs(subject, RDFS.subClassOf),
                )
            )
        for kind, type_iri in (("object", OWL.ObjectProperty), ("data", OWL.DatatypeProperty)):
            for subject in sorted(graph.subjects(RDF.type, type_iri)):
                domain = graph.value(subject, RDFS.domain)
                range_ = graph.value(subject, RDFS.range)
                onto.add_property(
                    OntProperty(
                        subject,
                        label=text(subject, RDFS.label),
                        comment=text(subject, RDFS.comment),
                        see_also=refs(subject, RDFS.seeAlso),
                        kind=kind,
                        domain=domain if isinstance(domain, str) else None,
                        range=range_ if isinstance(range_, str) else None,
                    )
                )
        for subject in sorted(graph.subjects(RDF.type, OWL.NamedIndividual)):
            types = [
                t
                for t in refs(subject, RDF.type)
                if t not in (OWL.NamedIndividual,)
            ]
            onto.add_individual(
                Individual(
                    subject,
                    label=text(subject, RDFS.label),
                    comment=text(subject, RDFS.comment),
                    see_also=refs(subject, RDFS.seeAlso),
                    types=types,
                )
            )
        return onto

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Ontology({self.iri!r}, classes={len(self._classes)}, "
            f"properties={len(self._properties)}, "
            f"individuals={len(self._individuals)})"
        )
