"""Seeded synthetic ontology generation.

The paper's 23 candidate ontologies (COMM, the MPEG-7 family, Music
Ontology, ...) are real OWL artefacts we cannot redistribute — and the
criteria scores for them come from a thesis appendix.  What the
reproduction needs is a corpus of *machine-readable* candidates whose
measured characteristics land on chosen criteria levels, so the NeOn
assess activity (:mod:`repro.neon.assessment`) can derive the §II
performance table through the same code path a human assessor follows.

:class:`OntologySpec` states the *targets* — documentation quality,
external-knowledge availability, code clarity, naming adequacy,
knowledge-extraction adequacy, implementation language and the covered
competency questions — and :func:`generate` builds a deterministic
ontology hitting them.  The calibration contract (generator targets sit
in the middle of the assessment's threshold bands) is covered by tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Set, Tuple

from .corpus import RegisteredOntology, ReuseMetadata
from .cq import CompetencyQuestion
from .metrics import STANDARD_TERMS
from .model import Individual, OntClass, OntProperty, Ontology

__all__ = ["OntologySpec", "generate", "DOMAIN_TERMS"]

#: Multimedia domain vocabulary the generator fills ontologies with.
DOMAIN_TERMS: Tuple[str, ...] = (
    "Video", "Audio", "Image", "Frame", "Shot", "Scene", "Clip", "Stream",
    "Codec", "Bitrate", "Resolution", "Pixel", "Channel", "Sample",
    "Playlist", "Album", "Artist", "Composer", "Performance", "Recording",
    "Broadcast", "Episode", "Series", "Subtitle", "Caption", "Thumbnail",
    "Storyboard", "Transition", "Effect", "Filter", "Layer", "Mask",
    "Palette", "Texture", "Sprite", "Waveform", "Spectrum", "Tempo",
    "Melody", "Harmony", "Rhythm", "Lyrics", "Score", "Instrument",
    "Camera", "Microphone", "Sensor", "Display", "Projector", "Speaker",
    "Archive", "Catalog", "License", "Watermark", "Fingerprint",
    "Annotation", "Keyframe", "Montage", "Soundtrack", "Voiceover",
)

#: Languages the adequacy criterion distinguishes, best match first.
_LANGUAGE_BY_LEVEL = {3: "OWL", 2: "RDFS", 1: "XML-Schema"}

# Generator targets per criterion level.  Each value sits in the middle
# of the matching threshold band in repro.neon.assessment, so rounding
# on small entity counts cannot tip the derived level.
_DOC_TARGET = {3: (0.90, 2), 2: (0.60, 1), 1: (0.30, 0), 0: (0.05, 0)}
_EXT_TARGET = {3: 0.70, 2: 0.35, 1: 0.14, 0: 0.0}
_CLARITY_TARGET = {3: (0.95, 1.00), 2: (0.70, 0.85), 1: (0.40, 0.80), 0: (0.10, 0.60)}
_EXTRACTION_TARGET = {3: (0.02, 4), 2: (0.10, 2), 1: (0.25, 1), 0: (0.40, 1)}


@dataclass(frozen=True)
class OntologySpec:
    """Targets for one synthetic candidate ontology.

    The integer targets use the §II criteria levels (0-3).  ``naming``
    accepts 1 (opaque names), 2 (intuitive names) or 3 (standard
    vocabulary).  ``language_adequacy`` is relative to an OWL target
    ontology: 3 = OWL, 2 = RDFS (transformable), 1 = XML-Schema.
    """

    name: str
    seed: int
    n_classes: int = 40
    doc_quality: int = 2
    ext_knowledge: int = 2
    code_clarity: int = 3
    naming: int = 2
    knowledge_extraction: int = 2
    language_adequacy: int = 3
    covered_cqs: Tuple[CompetencyQuestion, ...] = ()
    metadata: ReuseMetadata = field(default_factory=ReuseMetadata)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("ontology spec needs a name")
        if self.n_classes < 8:
            raise ValueError("need at least 8 classes for a meaningful structure")
        for label, value, lo in (
            ("doc_quality", self.doc_quality, 0),
            ("ext_knowledge", self.ext_knowledge, 0),
            ("code_clarity", self.code_clarity, 0),
            ("naming", self.naming, 1),
            ("knowledge_extraction", self.knowledge_extraction, 0),
            ("language_adequacy", self.language_adequacy, 1),
        ):
            if not lo <= value <= 3:
                raise ValueError(f"{label} must be in [{lo}, 3], got {value}")
        # Documented entities carry comments, so the measured comment
        # coverage can never sit below the documented fraction: a high
        # documentation target is structurally incompatible with a low
        # code-clarity target.
        min_clarity = {0: 0, 1: 1, 2: 2, 3: 2}[self.doc_quality]
        if self.code_clarity < min_clarity:
            raise ValueError(
                f"doc_quality {self.doc_quality} forces comment coverage "
                f"that implies code_clarity >= {min_clarity}, got "
                f"{self.code_clarity}"
            )


def _slug(name: str) -> str:
    return "".join(ch.lower() if ch.isalnum() else "-" for ch in name).strip("-")


def _pascal(term: str) -> str:
    return "".join(part.capitalize() for part in term.split())


def _opaque_name(rng: random.Random, index: int) -> str:
    """An intentionally unintuitive identifier, e.g. ``C07XQ``."""
    letters = "BCDFGHJKLMNPQRSTVWXZ"
    return (
        rng.choice(letters)
        + f"{index:02d}"
        + rng.choice(letters)
        + rng.choice(letters)
    )


def generate(spec: OntologySpec) -> RegisteredOntology:
    """Build the deterministic ontology for ``spec``.

    The same spec always yields the identical ontology (the RNG is
    seeded from ``spec.seed`` alone).
    """
    rng = random.Random(spec.seed)
    base = f"http://repro.example.org/ontology/{_slug(spec.name)}#"
    onto = Ontology(
        base.rstrip("#"),
        label=spec.name,
        comment=f"Synthetic reproduction stand-in for the {spec.name} candidate.",
        language=_LANGUAGE_BY_LEVEL[spec.language_adequacy],
        version="1.0",
    )
    onto.bind("", base)

    # ------------------------------------------------------------------
    # 1. Vocabulary: CQ terms first (they must reach the lexicon), then
    #    filler classes from the standard/domain pools per naming style.
    # ------------------------------------------------------------------
    cq_terms: List[str] = []
    seen: Set[str] = set()
    for question in spec.covered_cqs:
        for term in question.key_terms:
            if term not in seen:
                seen.add(term)
                cq_terms.append(term)

    standard_pool = sorted(STANDARD_TERMS)
    rng.shuffle(standard_pool)
    domain_pool = list(DOMAIN_TERMS)
    rng.shuffle(domain_pool)

    entities: List[Tuple[str, str, str]] = []  # (kind, name, label)
    opaque_counter = 0

    def display_name(term: str, kind: str) -> str:
        nonlocal opaque_counter
        if spec.naming == 1:
            opaque_counter += 1
            return _opaque_name(rng, opaque_counter)
        pascal = _pascal(term)
        if kind == "property":
            return "has" + pascal
        return pascal

    # CQ-carrying entities: alternate classes and properties.
    for i, term in enumerate(cq_terms):
        kind = "class" if i % 3 != 2 else "property"
        entities.append((kind, display_name(term, kind), term.capitalize()))

    n_cq_classes = sum(1 for kind, _, _ in entities if kind == "class")
    n_filler = max(spec.n_classes - n_cq_classes, 4)
    for i in range(n_filler):
        if spec.naming == 3 and standard_pool:
            term = standard_pool.pop()
        else:
            term = domain_pool[i % len(domain_pool)]
            if i >= len(domain_pool):
                term = f"{term} {i // len(domain_pool) + 1}"
        entities.append(("class", display_name(term, "class"), _pascal(term)))
    n_extra_props = max(4, spec.n_classes // 5)
    for i in range(n_extra_props):
        if spec.naming == 3 and standard_pool:
            # Property names come straight from the standard vocabulary
            # (e.g. "frameRate", "duration"), lower-camel like the
            # standards spell them, so they count as standard terms
            # even alongside a large CQ vocabulary.
            term = standard_pool.pop()
            prop_name = term[0].lower() + term[1:].replace(" ", "")
            entities.append(("property", prop_name, term))
        else:
            term = domain_pool[(i * 7) % len(domain_pool)].lower() + " link"
            entities.append(("property", display_name(term, "property"), term))
    # Individuals join the list now so the documentation budgets below
    # are computed over every entity the metrics will count.
    n_individuals = max(2, spec.n_classes // 10)
    for i in range(n_individuals):
        entities.append(("individual", f"ExampleInstance{i}", f"Instance {i}"))

    # Naming style 3 must keep a solid majority of standard local names
    # even with CQ vocabulary present; the filler loop above drew from
    # the standard pool, which the calibration tests verify.

    # ------------------------------------------------------------------
    # 2. Case-style consistency: demote a fraction to snake_case.
    # ------------------------------------------------------------------
    _, consistency = _CLARITY_TARGET[spec.code_clarity]
    n_entities = len(entities)
    n_off_style = round((1.0 - consistency) * n_entities)
    # CQ-carrying entities keep their spelling: the ALLCAPS off-style
    # variant erases camel-case boundaries, which would swallow the CQ
    # term out of the lexicon.
    eligible = [i for i in range(n_entities) if i >= len(cq_terms)]
    n_off_style = min(n_off_style, len(eligible))
    off_style = set(
        rng.sample(eligible, n_off_style) if n_off_style else []
    )

    def styled(name: str, index: int) -> str:
        if index not in off_style:
            return name
        if spec.naming == 1:
            # Opaque names are consistently upper-case; the off-style
            # variant is a snake_case spelling, a different case family.
            return name[:1].lower() + "_" + name[1:].lower()
        # For camel/pascal corpora the off-style spelling is ALLCAPS —
        # a different case family for any name length, and one that
        # keeps standard-vocabulary lookups (case-insensitive) intact.
        return name.upper()

    # ------------------------------------------------------------------
    # 3. Documentation budgets.
    # ------------------------------------------------------------------
    documented_frac, n_urls = _DOC_TARGET[spec.doc_quality]
    comment_frac, _ = _CLARITY_TARGET[spec.code_clarity]
    comment_frac = max(comment_frac, documented_frac)
    ext_density = _EXT_TARGET[spec.ext_knowledge]

    order = list(range(n_entities))
    rng.shuffle(order)
    cq_indices = set(range(len(cq_terms)))
    n_documented = round(documented_frac * n_entities)
    n_commented = max(round(comment_frac * n_entities), n_documented)
    documented_set = set(order[:n_documented])
    rest = order[n_documented:]
    if spec.naming == 1:
        # Opaque names force CQ vocabulary into labels; keep those
        # entities out of the comment budget where possible so a tight
        # documentation target is not inflated by label+comment pairs.
        rest = [i for i in rest if i not in cq_indices] + [
            i for i in rest if i in cq_indices
        ]
    commented_set = documented_set | set(rest[: n_commented - n_documented])
    n_see_also = round(ext_density * n_entities)
    see_also_set = set(order[:n_see_also])

    # ------------------------------------------------------------------
    # 4. Materialise entities.
    # ------------------------------------------------------------------
    class_iris: List[str] = []
    used_names: Set[str] = set()
    for index, (kind, name, label_text) in enumerate(entities):
        name = styled(name, index)
        while name in used_names:  # collisions from pool reuse
            name += "X"
        used_names.add(name)
        iri = base + name
        label = None
        comment = None
        if index in documented_set:
            label = label_text
            comment = f"The {label_text.lower()} notion of {spec.name}."
        elif index in commented_set:
            comment = f"Represents {label_text.lower()} content."
        if index in cq_indices and label is None and spec.naming == 1:
            # With intuitive or standard naming the CQ term reaches the
            # lexicon through the entity's local name; opaque names
            # cannot carry it, so the label must (without a comment, to
            # leave the documented fraction untouched).
            label = label_text
        see_also = (
            [f"http://docs.example.org/{_slug(spec.name)}/{index}"]
            if index in see_also_set
            else []
        )
        if kind == "class":
            onto.add_class(
                OntClass(iri, label=label, comment=comment, see_also=see_also)
            )
            class_iris.append(iri)
        elif kind == "property":
            domain = rng.choice(class_iris) if class_iris else None
            onto.add_property(
                OntProperty(
                    iri,
                    label=label,
                    comment=comment,
                    see_also=see_also,
                    kind="object" if index % 2 == 0 else "data",
                    domain=domain,
                )
            )
        else:
            types = [rng.choice(class_iris)] if class_iris else []
            onto.add_individual(
                Individual(
                    iri,
                    label=label,
                    comment=comment,
                    see_also=see_also,
                    types=types,
                )
            )

    # ------------------------------------------------------------------
    # 5. Class structure: roots, a breadth-first tree, extra parents.
    # ------------------------------------------------------------------
    tangledness, n_roots = _EXTRACTION_TARGET[spec.knowledge_extraction]
    n_classes = len(class_iris)
    n_roots = min(n_roots, n_classes)
    for pos, iri in enumerate(class_iris[n_roots:], start=n_roots):
        parent = class_iris[(pos - n_roots) // 2]  # binary-ish tree
        onto.get_class(iri).superclasses.append(parent)
    n_tangled = round(tangledness * n_classes)
    non_roots = class_iris[n_roots:]
    for iri in non_roots[:n_tangled]:
        cls = onto.get_class(iri)
        extra = rng.choice(class_iris)
        tries = 0
        while (extra == iri or extra in cls.superclasses) and tries < 10:
            extra = rng.choice(class_iris)
            tries += 1
        if extra != iri and extra not in cls.superclasses:
            cls.superclasses.append(extra)

    # ------------------------------------------------------------------
    # 6. Ontology-level metadata.
    # ------------------------------------------------------------------
    for i in range(n_urls):
        onto.documentation_urls.append(
            f"http://wiki.example.org/{_slug(spec.name)}/page{i}"
        )
    n_creators = {0: 0, 1: 1, 2: 1, 3: 2}[spec.ext_knowledge]
    for i in range(n_creators):
        onto.creators.append(f"{spec.name} Team Member {i + 1}")

    return RegisteredOntology(
        name=spec.name,
        ontology=onto,
        metadata=spec.metadata,
        keywords=("multimedia", "ontology", spec.name.lower()),
    )
