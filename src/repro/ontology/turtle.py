"""A Turtle-subset parser and serialiser.

The substrate reads and writes a well-defined subset of Terse RDF
Triple Language (Turtle):

* ``@prefix`` / ``@base`` directives (and their SPARQL spellings),
* subject groups with ``;`` predicate lists and ``,`` object lists,
* ``a`` for ``rdf:type``,
* IRIs in angle brackets, prefixed names, blank-node labels (``_:b``),
* string literals (single/double quoted and their triple-quoted long
  forms) with ``\\``-escapes, language tags and ``^^`` datatypes,
* numeric literals (``xsd:integer`` / ``xsd:decimal`` / ``xsd:double``)
  and booleans,
* ``#`` comments.

Not supported (the corpus never produces them): anonymous blank-node
property lists ``[...]`` and RDF collections ``(...)``.  The parser
raises :class:`TurtleSyntaxError` with a line number instead of
guessing.

Round-trip guarantee: ``parse(serialise(graph))`` reproduces exactly
the same triple set for every graph whose terms this subset can spell
(the property tests exercise this on random graphs).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .graph import Literal, Term, TripleGraph
from .vocab import CORE_PREFIXES, RDF, XSD

__all__ = ["TurtleSyntaxError", "parse", "serialise", "serialize"]


class TurtleSyntaxError(ValueError):
    """A syntax error with the 1-based source line where it occurred."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


# ----------------------------------------------------------------------
# Tokeniser
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r]+)
  | (?P<comment>\#[^\n]*)
  | (?P<newline>\n)
  | (?P<long_string>\"\"\"(?:[^"\\]|\\.|"(?!""))*\"\"\"|'''(?:[^'\\]|\\.|'(?!''))*''')
  | (?P<string>"(?:[^"\\\n]|\\.)*"|'(?:[^'\\\n]|\\.)*')
  | (?P<iri><[^<>"{}|^`\\\s]*>)
  | (?P<directive>@prefix|@base|PREFIX|BASE)
  | (?P<lang>@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*)
  | (?P<double_caret>\^\^)
  | (?P<number>[+-]?(?:\d+\.\d+(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?))
  | (?P<punct>[.;,\[\]()])
  | (?P<blank>_:[A-Za-z0-9_][\w-]*(?:\.[\w-]+)*)
  | (?P<pname>[A-Za-z0-9_][\w-]*(?:\.[\w-]+)*)?:(?:[A-Za-z0-9_][\w-]*(?:\.[\w-]+)*)?
  | (?P<bare>[A-Za-z][\w-]*)
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Token({self.kind}, {self.text!r}, line {self.line})"


def _tokenise(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    line = 1
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise TurtleSyntaxError(f"unexpected character {text[pos]!r}", line)
        kind = match.lastgroup
        value = match.group()
        if kind == "newline":
            line += 1
        elif kind in ("ws", "comment"):
            pass
        elif kind == "long_string":
            line += value.count("\n")
            tokens.append(_Token("string", value, line))
        elif kind == "pname" or (kind is None and ":" in value):
            tokens.append(_Token("pname", value, line))
        else:
            tokens.append(_Token(kind, value, line))
        pos = match.end()
    tokens.append(_Token("eof", "", line))
    return tokens


_ESCAPES = {
    "t": "\t",
    "n": "\n",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    '"': '"',
    "'": "'",
    "\\": "\\",
}


def _unescape(body: str, line: int) -> str:
    out: List[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= len(body):
            raise TurtleSyntaxError("dangling escape at end of string", line)
        esc = body[i + 1]
        if esc in _ESCAPES:
            out.append(_ESCAPES[esc])
            i += 2
        elif esc == "u":
            out.append(chr(int(body[i + 2 : i + 6], 16)))
            i += 6
        elif esc == "U":
            out.append(chr(int(body[i + 2 : i + 10], 16)))
            i += 10
        else:
            raise TurtleSyntaxError(f"unknown escape \\{esc}", line)
    return "".join(out)


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens: List[_Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._prefixes: Dict[str, str] = {}
        self._base = ""
        self.graph = TripleGraph()

    # -- token helpers --------------------------------------------------
    def _peek(self) -> _Token:
        return self._tokens[self._pos]

    def _next(self) -> _Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect_punct(self, char: str) -> None:
        token = self._next()
        if token.kind != "punct" or token.text != char:
            raise TurtleSyntaxError(
                f"expected {char!r}, found {token.text!r}", token.line
            )

    # -- grammar --------------------------------------------------------
    def parse(self) -> TripleGraph:
        while self._peek().kind != "eof":
            token = self._peek()
            if token.kind == "directive":
                self._directive()
            else:
                self._triples_block()
        return self.graph

    def _directive(self) -> None:
        token = self._next()
        sparql_form = token.text in ("PREFIX", "BASE")
        if token.text in ("@prefix", "PREFIX"):
            pname = self._next()
            if pname.kind != "pname" or not pname.text.endswith(":"):
                raise TurtleSyntaxError(
                    f"expected a prefix declaration, found {pname.text!r}",
                    pname.line,
                )
            prefix = pname.text[:-1]
            iri_token = self._next()
            if iri_token.kind != "iri":
                raise TurtleSyntaxError(
                    f"expected an IRI, found {iri_token.text!r}", iri_token.line
                )
            self._prefixes[prefix] = self._resolve(iri_token.text[1:-1])
        else:
            iri_token = self._next()
            if iri_token.kind != "iri":
                raise TurtleSyntaxError(
                    f"expected an IRI, found {iri_token.text!r}", iri_token.line
                )
            self._base = self._resolve(iri_token.text[1:-1])
        if not sparql_form:
            self._expect_punct(".")

    def _triples_block(self) -> None:
        subject = self._subject()
        self._predicate_object_list(subject)
        self._expect_punct(".")

    def _predicate_object_list(self, subject: str) -> None:
        while True:
            predicate = self._predicate()
            while True:
                obj = self._object()
                self.graph.add(subject, predicate, obj)
                if self._peek().kind == "punct" and self._peek().text == ",":
                    self._next()
                    continue
                break
            if self._peek().kind == "punct" and self._peek().text == ";":
                self._next()
                # Turtle allows a trailing ';' before '.'
                if self._peek().kind == "punct" and self._peek().text == ".":
                    break
                continue
            break

    def _subject(self) -> str:
        token = self._next()
        if token.kind == "iri":
            return self._resolve(token.text[1:-1])
        if token.kind == "pname":
            return self._expand_pname(token)
        if token.kind == "blank":
            return token.text
        raise TurtleSyntaxError(
            f"expected a subject, found {token.text!r}", token.line
        )

    def _predicate(self) -> str:
        token = self._next()
        if token.kind == "bare" and token.text == "a":
            return RDF.type
        if token.kind == "iri":
            return self._resolve(token.text[1:-1])
        if token.kind == "pname":
            return self._expand_pname(token)
        raise TurtleSyntaxError(
            f"expected a predicate, found {token.text!r}", token.line
        )

    def _object(self) -> Term:
        token = self._next()
        if token.kind == "iri":
            return self._resolve(token.text[1:-1])
        if token.kind == "pname":
            return self._expand_pname(token)
        if token.kind == "blank":
            return token.text
        if token.kind == "string":
            return self._literal(token)
        if token.kind == "number":
            return self._number(token)
        if token.kind == "bare":
            if token.text == "true":
                return Literal("true", datatype=XSD.boolean)
            if token.text == "false":
                return Literal("false", datatype=XSD.boolean)
        if token.kind == "punct" and token.text in ("[", "("):
            raise TurtleSyntaxError(
                "anonymous blank nodes and collections are outside the "
                "supported Turtle subset",
                token.line,
            )
        raise TurtleSyntaxError(
            f"expected an object, found {token.text!r}", token.line
        )

    def _literal(self, token: _Token) -> Literal:
        text = token.text
        if text.startswith(('"""', "'''")):
            body = text[3:-3]
        else:
            body = text[1:-1]
        value = _unescape(body, token.line)
        nxt = self._peek()
        if nxt.kind == "lang":
            self._next()
            return Literal(value, lang=nxt.text[1:])
        if nxt.kind == "double_caret":
            self._next()
            dt_token = self._next()
            if dt_token.kind == "iri":
                datatype = self._resolve(dt_token.text[1:-1])
            elif dt_token.kind == "pname":
                datatype = self._expand_pname(dt_token)
            else:
                raise TurtleSyntaxError(
                    f"expected a datatype IRI, found {dt_token.text!r}",
                    dt_token.line,
                )
            return Literal(value, datatype=datatype)
        return Literal(value)

    def _number(self, token: _Token) -> Literal:
        text = token.text
        if "e" in text.lower():
            return Literal(text, datatype=XSD.double)
        if "." in text:
            return Literal(text, datatype=XSD.decimal)
        return Literal(text, datatype=XSD.integer)

    def _expand_pname(self, token: _Token) -> str:
        prefix, _, local = token.text.partition(":")
        if prefix not in self._prefixes:
            raise TurtleSyntaxError(f"undeclared prefix {prefix!r}:", token.line)
        return self._prefixes[prefix] + local

    def _resolve(self, iri: str) -> str:
        if not iri:
            return self._base
        if re.match(r"^[A-Za-z][A-Za-z0-9+.-]*:", iri):
            return iri  # absolute
        return self._base + iri


def parse(text: str) -> TripleGraph:
    """Parse a Turtle document (the supported subset) into a graph."""
    return _Parser(_tokenise(text)).parse()


# ----------------------------------------------------------------------
# Serialiser
# ----------------------------------------------------------------------

_LOCAL_RE = re.compile(r"^[A-Za-z0-9_][\w-]*$")


def _shorten(iri: str, prefixes: Dict[str, str]) -> Optional[str]:
    best: Optional[Tuple[str, str]] = None
    for prefix, namespace in prefixes.items():
        if iri.startswith(namespace):
            local = iri[len(namespace):]
            if _LOCAL_RE.match(local) and (best is None or len(namespace) > len(prefixes[best[0]])):
                best = (prefix, local)
    if best is None:
        return None
    return f"{best[0]}:{best[1]}"


def _escape(value: str) -> str:
    out = value.replace("\\", "\\\\").replace('"', '\\"')
    out = out.replace("\n", "\\n").replace("\r", "\\r").replace("\t", "\\t")
    return out


def _term(term: Term, prefixes: Dict[str, str]) -> str:
    if isinstance(term, Literal):
        body = f'"{_escape(term.value)}"'
        if term.lang:
            return f"{body}@{term.lang}"
        if term.datatype:
            short = _shorten(term.datatype, prefixes)
            return f"{body}^^{short or f'<{term.datatype}>'}"
        return body
    if term.startswith("_:"):
        return term
    short = _shorten(term, prefixes)
    return short or f"<{term}>"


def serialise(
    graph: TripleGraph, prefixes: Optional[Dict[str, str]] = None
) -> str:
    """Write a graph as Turtle (deterministic: sorted output).

    ``prefixes`` defaults to the core RDF/RDFS/OWL/XSD/DC set; pass an
    ontology's ``prefixes`` mapping for domain-specific shortening.
    """
    prefix_map = dict(CORE_PREFIXES)
    if prefixes:
        prefix_map.update(prefixes)
    used: Dict[str, str] = {}

    def note_usage(term: Term) -> None:
        iris = []
        if isinstance(term, Literal):
            if term.datatype:
                iris.append(term.datatype)
        elif not term.startswith("_:"):
            iris.append(term)
        for iri in iris:
            short = _shorten(iri, prefix_map)
            if short:
                prefix = short.partition(":")[0]
                used[prefix] = prefix_map[prefix]

    by_subject: Dict[str, List[Tuple[str, Term]]] = {}
    for s, p, o in graph:
        by_subject.setdefault(s, []).append((p, o))
        note_usage(s)
        note_usage(p)
        note_usage(o)

    lines: List[str] = []
    for prefix in sorted(used):
        lines.append(f"@prefix {prefix}: <{used[prefix]}> .")
    if used:
        lines.append("")

    def term_sort_key(pair: Tuple[str, Term]) -> Tuple[str, str]:
        p, o = pair
        # rdf:type first, then alphabetical; objects stringified.
        primary = "" if p == RDF.type else p
        if isinstance(o, Literal):
            return (primary, f'"{o.value}"')
        return (primary, o)

    for subject in sorted(by_subject):
        pairs = sorted(by_subject[subject], key=term_sort_key)
        subject_text = _term(subject, prefix_map)
        body: List[str] = []
        for p, o in pairs:
            pred_text = "a" if p == RDF.type else _term(p, prefix_map)
            body.append(f"    {pred_text} {_term(o, prefix_map)}")
        lines.append(subject_text)
        lines.append(" ;\n".join(body) + " .")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


#: American-spelling alias.
serialize = serialise
