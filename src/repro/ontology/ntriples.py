"""N-Triples parser and serialiser (line-oriented RDF).

N-Triples is the simplest RDF syntax — one triple per line, no
prefixes, everything absolute.  The substrate supports it alongside
Turtle because real ontology dumps frequently ship as ``.nt`` and
because its line-per-triple shape makes diff-based tooling trivial.

The full N-Triples grammar is supported except for RDF-star quoted
triples; blank-node labels round-trip literally.
"""

from __future__ import annotations

import re
from typing import List

from .graph import Literal, Term, TripleGraph

__all__ = ["NTriplesSyntaxError", "parse_ntriples", "serialise_ntriples"]


class NTriplesSyntaxError(ValueError):
    """A syntax error with the offending 1-based line number."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


_IRI = r"<([^<>\"{}|^`\\\x00-\x20]*)>"
_BLANK = r"(_:[A-Za-z0-9][\w.-]*)"
_STRING = r'"((?:[^"\\\n]|\\.)*)"'
_LANG = r"@([a-zA-Z]+(?:-[a-zA-Z0-9]+)*)"

_TRIPLE_RE = re.compile(
    rf"^\s*(?:{_IRI}|{_BLANK})"          # subject: IRI or blank
    rf"\s+{_IRI}"                        # predicate: IRI
    rf"\s+(?:{_IRI}|{_BLANK}|{_STRING}"  # object: IRI, blank, literal...
    rf"(?:\^\^{_IRI}|{_LANG})?)"         # ...with optional datatype/lang
    r"\s*\.\s*$"
)

_ESCAPES = {
    "t": "\t", "b": "\b", "n": "\n", "r": "\r", "f": "\f",
    '"': '"', "'": "'", "\\": "\\",
}


def _unescape(body: str, line: int) -> str:
    out: List[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= len(body):
            raise NTriplesSyntaxError("dangling escape", line)
        esc = body[i + 1]
        if esc in _ESCAPES:
            out.append(_ESCAPES[esc])
            i += 2
        elif esc == "u":
            out.append(chr(int(body[i + 2:i + 6], 16)))
            i += 6
        elif esc == "U":
            out.append(chr(int(body[i + 2:i + 10], 16)))
            i += 10
        else:
            raise NTriplesSyntaxError(f"unknown escape \\{esc}", line)
    return "".join(out)


def parse_ntriples(text: str) -> TripleGraph:
    """Parse an N-Triples document into a graph."""
    graph = TripleGraph()
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _TRIPLE_RE.match(line)
        if match is None:
            raise NTriplesSyntaxError(f"malformed triple: {raw!r}", number)
        (s_iri, s_blank, p_iri,
         o_iri, o_blank, o_string, o_datatype, o_lang) = match.groups()
        subject = s_iri if s_iri is not None else s_blank
        if o_iri is not None:
            obj: Term = o_iri
        elif o_blank is not None:
            obj = o_blank
        else:
            value = _unescape(o_string, number)
            if o_datatype:
                obj = Literal(value, datatype=o_datatype)
            elif o_lang:
                obj = Literal(value, lang=o_lang)
            else:
                obj = Literal(value)
        graph.add(subject, p_iri, obj)
    return graph


def _escape(value: str) -> str:
    out = value.replace("\\", "\\\\").replace('"', '\\"')
    return out.replace("\n", "\\n").replace("\r", "\\r").replace("\t", "\\t")


def _term(term: Term) -> str:
    if isinstance(term, Literal):
        body = f'"{_escape(term.value)}"'
        if term.lang:
            return f"{body}@{term.lang}"
        if term.datatype:
            return f"{body}^^<{term.datatype}>"
        return body
    if term.startswith("_:"):
        return term
    return f"<{term}>"


def serialise_ntriples(graph: TripleGraph) -> str:
    """Write a graph as sorted N-Triples (one line per triple)."""
    lines = sorted(
        f"{_term(s)} {_term(p)} {_term(o)} ." for s, p, o in graph
    )
    return "\n".join(lines) + ("\n" if lines else "")
