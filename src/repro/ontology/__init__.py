"""Ontology substrate: model, Turtle subset, metrics, CQs, corpus.

The paper's candidates are real OWL ontologies scored by hand in a
thesis appendix; this package provides the machine-readable equivalent
the reproduction pipeline runs on — an OWL-ish object model with a
triple-graph wire form and Turtle serialisation, structural/lexical
metrics, competency-question coverage (the ``ValueT`` criterion), a
searchable registry with reuse metadata, a seeded synthetic-ontology
generator, and the integration (merge) substrate.
"""

from .corpus import OntologyRegistry, RegisteredOntology, ReuseMetadata, SearchHit
from .cq import (
    MNVLT,
    CompetencyQuestion,
    CoverageResult,
    coverage,
    extract_terms,
    lexicon,
    normalise_term,
    value_t,
)
from .generator import DOMAIN_TERMS, OntologySpec, generate
from .graph import Literal, TripleGraph, is_blank
from .io import (
    FORMATS,
    dump_graph,
    dump_ontology,
    dump_registry,
    load_graph,
    load_ontology,
    load_registry,
)
from .merge import CollisionLink, MergeReport, equivalence_triples, integrate
from .metrics import OntologyMetrics, case_style, compute_metrics, split_identifier
from .model import Entity, Individual, OntClass, OntProperty, Ontology
from .ntriples import NTriplesSyntaxError, parse_ntriples, serialise_ntriples
from .rdfxml import RdfXmlSyntaxError, parse_rdfxml, serialise_rdfxml
from .turtle import TurtleSyntaxError, parse, serialise, serialize
from .vocab import (
    CORE_PREFIXES,
    DC,
    DCTERMS,
    OWL,
    RDF,
    RDFS,
    STANDARD_NAMESPACES,
    XSD,
    Namespace,
    local_name,
    split_iri,
)

__all__ = [
    # model
    "Ontology",
    "Entity",
    "OntClass",
    "OntProperty",
    "Individual",
    # graph & turtle
    "TripleGraph",
    "Literal",
    "is_blank",
    "parse",
    "serialise",
    "serialize",
    "TurtleSyntaxError",
    "parse_ntriples",
    "serialise_ntriples",
    "NTriplesSyntaxError",
    "parse_rdfxml",
    "serialise_rdfxml",
    "RdfXmlSyntaxError",
    "FORMATS",
    "load_graph",
    "dump_graph",
    "load_ontology",
    "dump_ontology",
    "dump_registry",
    "load_registry",
    # vocab
    "Namespace",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "DC",
    "DCTERMS",
    "CORE_PREFIXES",
    "STANDARD_NAMESPACES",
    "local_name",
    "split_iri",
    # metrics
    "OntologyMetrics",
    "compute_metrics",
    "case_style",
    "split_identifier",
    # competency questions
    "CompetencyQuestion",
    "CoverageResult",
    "coverage",
    "lexicon",
    "extract_terms",
    "normalise_term",
    "value_t",
    "MNVLT",
    # corpus
    "OntologyRegistry",
    "RegisteredOntology",
    "ReuseMetadata",
    "SearchHit",
    # generation & integration
    "OntologySpec",
    "generate",
    "DOMAIN_TERMS",
    "MergeReport",
    "CollisionLink",
    "integrate",
    "equivalence_triples",
]
