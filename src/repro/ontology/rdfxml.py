"""RDF/XML subset parser and serialiser (stdlib ``xml.etree``).

Most of the candidate ontologies the paper surveys (COMM, the MPEG-7
translations, DIG35) were published as RDF/XML, so the substrate reads
and writes the subset those files actually use:

* ``rdf:RDF`` roots with namespace declarations,
* node elements — ``rdf:Description`` or a typed element — carrying
  ``rdf:about`` / ``rdf:ID`` / ``rdf:nodeID``,
* property elements with ``rdf:resource`` / ``rdf:nodeID`` references,
  nested node elements, or text content (with ``rdf:datatype`` /
  ``xml:lang``),
* property *attributes* on node elements (literal shortcuts).

Unsupported richer constructs (``rdf:parseType``, containers,
collections, reification) raise :class:`RdfXmlSyntaxError` instead of
being silently mis-read.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List, Optional, Tuple
from xml.sax.saxutils import escape, quoteattr

from .graph import Literal, Term, TripleGraph
from .vocab import RDF, split_iri

__all__ = ["RdfXmlSyntaxError", "parse_rdfxml", "serialise_rdfxml"]

_RDF_NS = RDF.base.rstrip("#")  # "...rdf-syntax-ns"; etree uses {ns}tag
_XML_LANG = "{http://www.w3.org/XML/1998/namespace}lang"


class RdfXmlSyntaxError(ValueError):
    """Raised on malformed or out-of-subset RDF/XML."""


def _clark_to_iri(tag: str) -> str:
    """``{namespace}local`` -> ``namespaceLocal`` IRI."""
    if not tag.startswith("{"):
        raise RdfXmlSyntaxError(
            f"element {tag!r} has no namespace; RDF/XML requires one"
        )
    namespace, local = tag[1:].split("}", 1)
    return namespace + local


def _rdf(attr: str) -> str:
    return "{" + RDF.base.rstrip("#") + "#}" + attr


_ABOUT = _rdf("about")
_ID = _rdf("ID")
_NODE_ID = _rdf("nodeID")
_RESOURCE = _rdf("resource")
_DATATYPE = _rdf("datatype")
_PARSE_TYPE = _rdf("parseType")
_RDF_ROOT = _rdf("RDF")
_DESCRIPTION = _rdf("Description")


def _subject_of(element: ET.Element, counter: List[int]) -> str:
    about = element.get(_ABOUT)
    if about is not None:
        return about
    fragment = element.get(_ID)
    if fragment is not None:
        return "#" + fragment
    node_id = element.get(_NODE_ID)
    if node_id is not None:
        return "_:" + node_id
    counter[0] += 1
    return f"_:genid{counter[0]}"


def _parse_node(element: ET.Element, graph: TripleGraph, counter: List[int]) -> str:
    subject = _subject_of(element, counter)
    if element.tag != _DESCRIPTION:
        # a typed node element: <ex:Video rdf:about="..."> asserts rdf:type
        graph.add(subject, RDF.type, _clark_to_iri(element.tag))
    # property attributes (skip rdf:* control attributes and xml:lang)
    for attr, value in element.attrib.items():
        if attr in (_ABOUT, _ID, _NODE_ID, _XML_LANG):
            continue
        if attr.startswith("{" + RDF.base.rstrip("#") + "#}"):
            continue
        if not attr.startswith("{"):
            continue  # non-namespaced attribute: ignore
        graph.add(subject, _clark_to_iri(attr), Literal(value))
    for child in element:
        _parse_property(subject, child, graph, counter)
    return subject


def _parse_property(
    subject: str, element: ET.Element, graph: TripleGraph, counter: List[int]
) -> None:
    predicate = _clark_to_iri(element.tag)
    if element.get(_PARSE_TYPE) is not None:
        raise RdfXmlSyntaxError(
            f"rdf:parseType on {predicate!r} is outside the supported subset"
        )
    resource = element.get(_RESOURCE)
    node_id = element.get(_NODE_ID)
    children = list(element)
    if resource is not None:
        graph.add(subject, predicate, resource)
        return
    if node_id is not None:
        graph.add(subject, predicate, "_:" + node_id)
        return
    if children:
        if len(children) != 1:
            raise RdfXmlSyntaxError(
                f"property {predicate!r} must contain exactly one node element"
            )
        obj = _parse_node(children[0], graph, counter)
        graph.add(subject, predicate, obj)
        return
    text = element.text or ""
    datatype = element.get(_DATATYPE)
    lang = element.get(_XML_LANG)
    if datatype is not None:
        graph.add(subject, predicate, Literal(text, datatype=datatype))
    elif lang is not None:
        graph.add(subject, predicate, Literal(text, lang=lang))
    else:
        graph.add(subject, predicate, Literal(text))


def parse_rdfxml(text: str) -> TripleGraph:
    """Parse an RDF/XML document (the supported subset) into a graph."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as err:
        raise RdfXmlSyntaxError(f"not well-formed XML: {err}") from err
    graph = TripleGraph()
    counter = [0]
    if root.tag == _RDF_ROOT:
        for child in root:
            _parse_node(child, graph, counter)
    else:
        _parse_node(root, graph, counter)
    return graph


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------

def serialise_rdfxml(
    graph: TripleGraph, prefixes: Optional[Dict[str, str]] = None
) -> str:
    """Write a graph as RDF/XML (rdf:Description-style, deterministic).

    Every namespace used by a predicate or ``rdf:type`` object must be
    declared via ``prefixes`` (namespace -> prefix is derived from the
    mapping's prefix -> namespace entries); unknown namespaces get
    generated ``ns0``, ``ns1``, ... declarations.
    """
    ns_to_prefix: Dict[str, str] = {RDF.base: "rdf"}
    if prefixes:
        for prefix, namespace in prefixes.items():
            if prefix and namespace not in ns_to_prefix:
                ns_to_prefix[namespace] = prefix

    generated = [0]

    def prefix_for(namespace: str) -> str:
        if namespace not in ns_to_prefix:
            ns_to_prefix[namespace] = f"ns{generated[0]}"
            generated[0] += 1
        return ns_to_prefix[namespace]

    by_subject: Dict[str, List[Tuple[str, Term]]] = {}
    for s, p, o in graph:
        by_subject.setdefault(s, []).append((p, o))
        prefix_for(split_iri(p)[0])

    body: List[str] = []
    for subject in sorted(by_subject):
        if subject.startswith("_:"):
            opener = f'  <rdf:Description rdf:nodeID="{subject[2:]}">'
        else:
            opener = f"  <rdf:Description rdf:about={quoteattr(subject)}>"
        body.append(opener)
        for p, o in sorted(
            by_subject[subject],
            key=lambda pair: (pair[0], str(pair[1])),
        ):
            namespace, local = split_iri(p)
            tag = f"{prefix_for(namespace)}:{local}"
            if isinstance(o, Literal):
                if o.lang:
                    attrs = f' xml:lang="{o.lang}"'
                elif o.datatype:
                    attrs = f" rdf:datatype={quoteattr(o.datatype)}"
                else:
                    attrs = ""
                body.append(f"    <{tag}{attrs}>{escape(o.value)}</{tag}>")
            elif o.startswith("_:"):
                body.append(f'    <{tag} rdf:nodeID="{o[2:]}"/>')
            else:
                body.append(f"    <{tag} rdf:resource={quoteattr(o)}/>")
        body.append("  </rdf:Description>")

    declarations = "".join(
        f'\n    xmlns:{prefix}={quoteattr(namespace)}'
        for namespace, prefix in sorted(ns_to_prefix.items(), key=lambda kv: kv[1])
    )
    return (
        '<?xml version="1.0" encoding="utf-8"?>\n'
        f"<rdf:RDF{declarations}>\n" + "\n".join(body) + "\n</rdf:RDF>\n"
    )
