"""RDF/RDFS/OWL vocabulary constants and well-known namespaces.

The ontology substrate stores everything as plain IRI strings; this
module centralises the handful of vocabulary IRIs the model, parser and
metrics need, plus the *standard namespaces* list that the naming-
convention criterion of §II consults ("high if they are taken from a
given standard (e.g. W3C, MPEG7, etc.)").
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "DC",
    "DCTERMS",
    "Namespace",
    "CORE_PREFIXES",
    "STANDARD_NAMESPACES",
    "split_iri",
    "local_name",
]


class Namespace:
    """A base IRI that mints terms by attribute or item access.

    >>> RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
    >>> RDF.type
    'http://www.w3.org/1999/02/22-rdf-syntax-ns#type'
    """

    def __init__(self, base: str) -> None:
        if not base:
            raise ValueError("namespace base IRI must be non-empty")
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def term(self, name: str) -> str:
        return self._base + name

    def __getattr__(self, name: str) -> str:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.term(name)

    def __getitem__(self, name: str) -> str:
        return self.term(name)

    def __contains__(self, iri: object) -> bool:
        return isinstance(iri, str) and iri.startswith(self._base)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Namespace({self._base!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
DC = Namespace("http://purl.org/dc/elements/1.1/")
DCTERMS = Namespace("http://purl.org/dc/terms/")

#: Prefixes every serialisation starts from.
CORE_PREFIXES: Dict[str, str] = {
    "rdf": RDF.base,
    "rdfs": RDFS.base,
    "owl": OWL.base,
    "xsd": XSD.base,
    "dc": DC.base,
    "dcterms": DCTERMS.base,
}

#: Namespaces counted as *standard* by the naming-convention metric —
#: §II sets the criterion to high "if [names] are taken from a given
#: standard (e.g. W3C, MPEG7, etc.)".
STANDARD_NAMESPACES: Tuple[str, ...] = (
    RDF.base,
    RDFS.base,
    OWL.base,
    XSD.base,
    DC.base,
    DCTERMS.base,
    "http://www.w3.org/2004/02/skos/core#",
    "http://www.w3.org/ns/ma-ont#",            # W3C Ontology for Media Resources
    "urn:mpeg:mpeg7:schema:2001#",             # MPEG-7 schema
    "http://mpeg7.org/",
    "http://xmlns.com/foaf/0.1/",
)


def split_iri(iri: str) -> Tuple[str, str]:
    """Split an IRI into (namespace, local name).

    The split point is after the last ``#`` or ``/`` (or ``:`` for URNs
    without either); IRIs with no separator return an empty namespace.
    """
    for sep in ("#", "/", ":"):
        pos = iri.rfind(sep)
        if pos >= 0:
            return iri[: pos + 1], iri[pos + 1 :]
    return "", iri


def local_name(iri: str) -> str:
    """The fragment of an IRI after its namespace."""
    return split_iri(iri)[1]
