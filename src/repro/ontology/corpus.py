"""Ontology registry with keyword search (NeOn activity 1).

The reuse guidelines start by "search[ing] for candidate ontologies
that could satisfy the needs of the ontology network being developed" —
the paper's team found 40 multimedia ontologies and kept 23 after a
deeper study.  This module provides the searchable catalogue those
activities run against: registered ontologies plus the *reuse
metadata* that the non-structural criteria of §II need (costs, tests,
team, purpose, adopters).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .cq import extract_terms, lexicon
from .model import Ontology

__all__ = ["ReuseMetadata", "RegisteredOntology", "SearchHit", "OntologyRegistry"]


@dataclass(frozen=True)
class ReuseMetadata:
    """Facts about a candidate that are not measurable from its triples.

    Every §II criterion that depends on provenance rather than
    structure reads from here.  ``None`` means the fact could not be
    established — §III: "the performance of at least one MM ontology
    was unknown for some criteria" — and the assessment turns it into
    a MISSING performance.

    * ``financial_cost`` — cost of accessing/using the candidate, in
      euros (0 = freely available).
    * ``access_time_days`` — "the time it takes to access it".
    * ``n_test_suites`` — availability of tests.
    * ``evaluation_level`` — how thoroughly the ontology "has been
      properly evaluated, i.e. ... has passed a set of unit tests":
      0 never evaluated, 1 evaluated and failed, 2 partially passed,
      3 passed.
    * ``team_publications`` — development-team reputation proxy.
    * ``purpose`` — ``"academic"``, ``"standard-transform"`` or
      ``"project"`` (Fig. 4's low / medium / high levels);
      ``"unclassified"`` means the purpose was investigated but fits no
      category (the scale's own 0-unknown level), while ``None`` means
      the fact could not be established at all (a missing performance).
    * ``reused_by`` — well-known projects/ontologies reusing the
      candidate (practical support); ``None`` when adoption is unknown.
    * ``uses_design_patterns`` — ODP usage ("ontologies built within a
      project and using ontology design patterns score highest").
    * ``experts_contactable`` — availability of external knowledge.
    """

    financial_cost: Optional[float] = 0.0
    access_time_days: Optional[float] = 1.0
    n_test_suites: Optional[int] = 0
    evaluation_level: Optional[int] = None
    team_publications: Optional[int] = None
    purpose: Optional[str] = None
    reused_by: Optional[Tuple[str, ...]] = ()
    uses_design_patterns: bool = False
    experts_contactable: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.purpose is not None and self.purpose not in (
            "unclassified",
            "academic",
            "standard-transform",
            "project",
        ):
            raise ValueError(
                f"purpose must be 'unclassified', 'academic', "
                f"'standard-transform' or 'project', got {self.purpose!r}"
            )
        if self.financial_cost is not None and self.financial_cost < 0:
            raise ValueError("financial_cost cannot be negative")
        if self.access_time_days is not None and self.access_time_days < 0:
            raise ValueError("access_time_days cannot be negative")
        if self.evaluation_level is not None and not 0 <= self.evaluation_level <= 3:
            raise ValueError("evaluation_level must be in [0, 3]")


@dataclass(frozen=True)
class RegisteredOntology:
    """A catalogue row: the ontology, its metadata, search keywords."""

    name: str
    ontology: Ontology
    metadata: ReuseMetadata = field(default_factory=ReuseMetadata)
    keywords: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("registered ontology needs a name")


@dataclass(frozen=True)
class SearchHit:
    """One search result with its lexical match score in [0, 1]."""

    name: str
    score: float
    matched_terms: Tuple[str, ...]


class OntologyRegistry:
    """A searchable catalogue of reusable ontologies."""

    def __init__(self, entries: Iterable[RegisteredOntology] = ()) -> None:
        self._entries: Dict[str, RegisteredOntology] = {}
        self._lexicons: Dict[str, frozenset] = {}
        for entry in entries:
            self.register(entry)

    def register(self, entry: RegisteredOntology) -> None:
        if entry.name in self._entries:
            raise ValueError(f"ontology {entry.name!r} already registered")
        self._entries[entry.name] = entry
        terms: Set[str] = set(lexicon(entry.ontology))
        for keyword in entry.keywords:
            terms.update(extract_terms(keyword))
        if entry.ontology.label:
            terms.update(extract_terms(entry.ontology.label))
        if entry.ontology.comment:
            terms.update(extract_terms(entry.ontology.comment))
        self._lexicons[entry.name] = frozenset(terms)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self):
        return iter(self._entries.values())

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._entries)

    def get(self, name: str) -> RegisteredOntology:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(f"no ontology named {name!r} in the registry") from None

    def with_metadata(self, name: str, **updates) -> None:
        """Replace metadata fields of one entry in place."""
        entry = self.get(name)
        self._entries[name] = replace(entry, metadata=replace(entry.metadata, **updates))

    # ------------------------------------------------------------------
    def search(self, query: str, min_score: float = 0.0) -> Tuple[SearchHit, ...]:
        """Rank registered ontologies against a keyword query.

        The score is the fraction of query terms found in the entry's
        lexicon (labels, local names, keywords, description).  Results
        sort by score descending, then name, and hits below
        ``min_score`` are dropped — scoping the 40-to-23 funnel the
        paper describes is a ``min_score`` choice.
        """
        terms = extract_terms(query)
        if not terms:
            raise ValueError(f"query {query!r} contains no informative terms")
        hits: List[SearchHit] = []
        for name, entry_lexicon in self._lexicons.items():
            matched = tuple(t for t in terms if t in entry_lexicon)
            score = len(matched) / len(terms)
            if score > min_score or (score == min_score and score > 0):
                hits.append(SearchHit(name, score, matched))
        hits.sort(key=lambda h: (-h.score, h.name))
        return tuple(hits)
