"""Competency questions and coverage scoring (§II, Fig. 3).

The *number of functional requirements covered* criterion counts "the
number of competency questions (CQs) covered by the ontology candidate"
(the paper cites Grüninger & Fox [16] for the CQ methodology) and maps
it onto the continuous ``ValueT`` scale::

    ValueT = number of CQs covered * MNVLT / total number of CQs

with MNVLT (maximum numerical value in linguistic transformation) set
to 3.

Coverage here is lexical, which is how ontology-selection surveys score
candidates in practice: a CQ is covered when every one of its key terms
matches the ontology's lexical layer (labels and local names, split on
camelCase and normalised by a light stemmer).  Requiring *all* terms is
the conservative reading — partial matches can be inspected through
:class:`CoverageResult.match_fractions`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from .metrics import split_identifier
from .model import Ontology

__all__ = [
    "MNVLT",
    "STOPWORDS",
    "normalise_term",
    "extract_terms",
    "CompetencyQuestion",
    "lexicon",
    "CoverageResult",
    "coverage",
    "value_t",
]

#: Maximum numerical value in linguistic transformation (§III, from [15]).
MNVLT = 3.0

#: Question scaffolding that carries no domain meaning.
STOPWORDS: FrozenSet[str] = frozenset(
    """
    a an the of for to in on at by with from as is are was were be been does
    do did doing have has had having what which who whom whose when where why
    how many much can could should would may might must it its this that
    these those there their them they and or not no any all each every some
    given get gets
    """.split()
)

_WORD_RE = re.compile(r"[A-Za-z][A-Za-z0-9]*")


def normalise_term(word: str) -> str:
    """Lowercase and strip simple plural/verbal suffixes.

    A deliberately tiny stemmer — enough to make ``formats`` match
    ``Format`` and ``categories`` match ``category`` without dragging in
    a full morphological analyser.
    """
    w = word.lower()
    if len(w) > 4 and w.endswith("ies"):
        return w[:-3] + "y"
    if len(w) > 4 and w.endswith("ses"):
        return w[:-2]
    if len(w) > 3 and w.endswith("es") and not w.endswith("ss"):
        return w[:-2]
    if len(w) > 3 and w.endswith("s") and not w.endswith("ss"):
        return w[:-1]
    return w


def extract_terms(text: str) -> Tuple[str, ...]:
    """Key terms of a natural-language question (order preserved)."""
    seen: Set[str] = set()
    terms: List[str] = []
    for match in _WORD_RE.findall(text):
        term = normalise_term(match)
        if term in STOPWORDS or len(term) < 2:
            continue
        if term not in seen:
            seen.add(term)
            terms.append(term)
    return tuple(terms)


@dataclass(frozen=True)
class CompetencyQuestion:
    """One functional requirement phrased as a question.

    ``key_terms`` defaults to the informative words of ``text``; pass
    them explicitly to pin coverage to particular vocabulary.
    """

    cq_id: str
    text: str
    key_terms: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.cq_id:
            raise ValueError("competency question needs an id")
        if not self.key_terms:
            extracted = extract_terms(self.text)
            if not extracted:
                raise ValueError(
                    f"CQ {self.cq_id!r}: no key terms could be extracted from "
                    f"{self.text!r}"
                )
            object.__setattr__(self, "key_terms", extracted)
        else:
            object.__setattr__(
                self,
                "key_terms",
                tuple(normalise_term(t) for t in self.key_terms),
            )


def lexicon(ontology: Ontology) -> FrozenSet[str]:
    """The ontology's normalised lexical layer.

    Labels and local names of every entity, split on camelCase /
    underscores and stemmed with :func:`normalise_term`.
    """
    terms: Set[str] = set()
    for entry in ontology.lexical_entries():
        for token in split_identifier(entry):
            normalised = normalise_term(token)
            if normalised and normalised not in STOPWORDS:
                terms.add(normalised)
    return frozenset(terms)


@dataclass(frozen=True)
class CoverageResult:
    """Which CQs an ontology covers, plus the paper's ValueT score."""

    ontology_iri: str
    covered: Tuple[str, ...]
    uncovered: Tuple[str, ...]
    match_fractions: Dict[str, float] = field(hash=False, default_factory=dict)

    @property
    def n_covered(self) -> int:
        return len(self.covered)

    @property
    def total(self) -> int:
        return len(self.covered) + len(self.uncovered)

    @property
    def ratio(self) -> float:
        return self.n_covered / self.total if self.total else 0.0

    @property
    def value_t(self) -> float:
        """``covered * MNVLT / total`` — the Fig. 3 attribute value."""
        return value_t(self.n_covered, self.total)


def value_t(n_covered: int, total: int, mnvlt: float = MNVLT) -> float:
    """The paper's linguistic transformation of CQ coverage.

    ``ValueT = number of CQs covered x MNVLT / total number of CQs``.
    """
    if total <= 0:
        raise ValueError("total number of CQs must be positive")
    if not 0 <= n_covered <= total:
        raise ValueError(
            f"covered count {n_covered} outside [0, {total}]"
        )
    return n_covered * mnvlt / total


def coverage(
    ontology: Ontology,
    questions: Sequence[CompetencyQuestion],
    threshold: float = 1.0,
) -> CoverageResult:
    """Score an ontology against a CQ list.

    A CQ counts as covered when at least ``threshold`` of its key terms
    appear in the ontology lexicon (default: all of them).
    """
    if not questions:
        raise ValueError("need at least one competency question")
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    ids = [q.cq_id for q in questions]
    if len(set(ids)) != len(ids):
        raise ValueError("duplicate competency-question ids")
    lex = lexicon(ontology)
    covered: List[str] = []
    uncovered: List[str] = []
    fractions: Dict[str, float] = {}
    for question in questions:
        hits = sum(1 for term in question.key_terms if term in lex)
        fraction = hits / len(question.key_terms)
        fractions[question.cq_id] = fraction
        if fraction >= threshold - 1e-12:
            covered.append(question.cq_id)
        else:
            uncovered.append(question.cq_id)
    return CoverageResult(
        ontology.iri, tuple(covered), tuple(uncovered), fractions
    )
