"""Integration substrate: merging selected ontologies into a network.

NeOn activity 4 — "integrate the selected ontologies into the ontology
network being developed" — is what happens *after* the MAUT selection
the paper focuses on.  The pipeline still needs it to run end to end:
this module builds the ontology network from a target ontology plus the
selected candidates, with

* import statements from the target to every selected ontology,
* namespace preservation (each candidate keeps its own namespace; the
  network binds one prefix per source),
* local-name collision detection across sources, reported and resolved
  by ``owl:equivalentClass``-style link candidates rather than silent
  renaming.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from .graph import TripleGraph
from .model import Ontology
from .vocab import OWL, local_name

__all__ = ["CollisionLink", "MergeReport", "integrate"]


@dataclass(frozen=True)
class CollisionLink:
    """Two entities from different sources sharing a local name.

    These are *alignment candidates*: the integrator proposes an
    equivalence link and leaves the decision to the engineer (silently
    merging ``Video`` from two multimedia ontologies would be wrong
    more often than right).
    """

    local: str
    first_iri: str
    second_iri: str
    kind: str  # "class", "property" or "individual"


@dataclass(frozen=True)
class MergeReport:
    """Outcome of one integration run."""

    network_iri: str
    sources: Tuple[str, ...]
    n_classes: int
    n_properties: int
    n_individuals: int
    collisions: Tuple[CollisionLink, ...]
    prefix_bindings: Dict[str, str] = field(hash=False, default_factory=dict)

    @property
    def n_entities(self) -> int:
        return self.n_classes + self.n_properties + self.n_individuals


def _prefix_for(name: str, taken: Set[str]) -> str:
    base = "".join(ch for ch in name.lower() if ch.isalnum()) or "src"
    candidate = base[:8]
    counter = 1
    while candidate in taken:
        counter += 1
        candidate = f"{base[:8]}{counter}"
    return candidate


def integrate(
    target: Ontology, selected: Sequence[Ontology]
) -> Tuple[Ontology, MergeReport]:
    """Build the ontology network: target + imports of every candidate.

    Returns the network ontology (a *new* object; inputs are untouched)
    and a report with entity counts, prefix bindings and local-name
    collision links.
    """
    if not selected:
        raise ValueError("integration needs at least one selected ontology")
    iris = [onto.iri for onto in (target, *selected)]
    if len(set(iris)) != len(iris):
        raise ValueError("duplicate ontology IRIs among target and selection")

    network = Ontology(
        target.iri,
        label=target.label,
        comment=target.comment,
        language=target.language,
        version=target.version,
    )
    network.prefixes = dict(target.prefixes)
    network.documentation_urls = list(target.documentation_urls)
    network.creators = list(target.creators)
    network.imports = sorted(set(target.imports) | {o.iri for o in selected})

    taken = set(network.prefixes)
    bindings: Dict[str, str] = {}
    for source in selected:
        prefix = _prefix_for(source.label or local_name(source.iri), taken)
        taken.add(prefix)
        namespace = source.iri + ("#" if not source.iri.endswith(("#", "/")) else "")
        network.bind(prefix, namespace)
        bindings[prefix] = source.iri

    # Copy entities; candidates keep their own IRIs, so nothing renames.
    by_local: Dict[Tuple[str, str], str] = {}
    collisions: List[CollisionLink] = []

    def note(kind: str, iri: str) -> None:
        key = (kind, local_name(iri).lower())
        if key in by_local and by_local[key] != iri:
            collisions.append(CollisionLink(key[1], by_local[key], iri, kind))
        else:
            by_local[key] = iri

    for source in (target, *selected):
        for cls in source.classes:
            network.add_class(
                type(cls)(
                    cls.iri,
                    label=cls.label,
                    comment=cls.comment,
                    see_also=list(cls.see_also),
                    superclasses=list(cls.superclasses),
                )
            )
            note("class", cls.iri)
        for prop in source.properties:
            network.add_property(
                type(prop)(
                    prop.iri,
                    label=prop.label,
                    comment=prop.comment,
                    see_also=list(prop.see_also),
                    kind=prop.kind,
                    domain=prop.domain,
                    range=prop.range,
                )
            )
            note("property", prop.iri)
        for ind in source.individuals:
            network.add_individual(
                type(ind)(
                    ind.iri,
                    label=ind.label,
                    comment=ind.comment,
                    see_also=list(ind.see_also),
                    types=list(ind.types),
                )
            )
            note("individual", ind.iri)

    report = MergeReport(
        network_iri=network.iri,
        sources=tuple(o.iri for o in selected),
        n_classes=len(network.classes),
        n_properties=len(network.properties),
        n_individuals=len(network.individuals),
        collisions=tuple(collisions),
        prefix_bindings=bindings,
    )
    return network, report


def equivalence_triples(collisions: Sequence[CollisionLink]) -> TripleGraph:
    """Alignment-candidate triples for the collision links.

    Class collisions map to ``owl:equivalentClass``, property
    collisions to ``owl:equivalentProperty``, individual collisions to
    ``owl:sameAs`` — ready for an engineer to review and commit.
    """
    predicate = {
        "class": OWL.equivalentClass,
        "property": OWL.equivalentProperty,
        "individual": OWL.sameAs,
    }
    graph = TripleGraph()
    for link in collisions:
        graph.add(link.first_iri, predicate[link.kind], link.second_iri)
    return graph
