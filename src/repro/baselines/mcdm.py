"""Classic MCDM comparators for the ablation benches.

Three textbook methods over the same performance data the GMAA model
sees (average component utilities, average weights):

* **weighted sum** — the precise special case of the paper's additive
  model (no imprecision anywhere);
* **TOPSIS** — rank by closeness to the ideal / anti-ideal solutions;
* **lexicographic** — order criteria by weight and compare level by
  level.

They share one input form: a utility matrix (alternatives x criteria,
already preference-increasing in [0, 1]) plus weights.  The helper
:func:`utilities_from_problem` extracts that form from a
:class:`~repro.core.problem.DecisionProblem`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..core.model import AdditiveModel
from ..core.problem import DecisionProblem

__all__ = [
    "utilities_from_problem",
    "weighted_sum",
    "topsis",
    "lexicographic",
]


def utilities_from_problem(
    problem: DecisionProblem,
) -> Tuple[Tuple[str, ...], np.ndarray, np.ndarray]:
    """(alternative names, avg utility matrix, avg weights)."""
    model = AdditiveModel(problem)
    return model.alternative_names, model.u_avg.copy(), model.w_avg.copy()


def _validate(matrix: np.ndarray, weights: np.ndarray) -> None:
    if matrix.ndim != 2:
        raise ValueError("utility matrix must be 2-D")
    if weights.ndim != 1 or weights.shape[0] != matrix.shape[1]:
        raise ValueError(
            f"weights length {weights.shape} does not match criteria "
            f"count {matrix.shape[1]}"
        )
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    if weights.sum() <= 0:
        raise ValueError("at least one weight must be positive")


def weighted_sum(
    names: Sequence[str], matrix: np.ndarray, weights: np.ndarray
) -> Tuple[Tuple[str, float], ...]:
    """Precise weighted-sum ranking; (name, score) best first."""
    matrix = np.asarray(matrix, dtype=float)
    weights = np.asarray(weights, dtype=float)
    _validate(matrix, weights)
    scores = matrix @ (weights / weights.sum())
    order = sorted(range(len(names)), key=lambda i: (-scores[i], names[i]))
    return tuple((names[i], float(scores[i])) for i in order)


def topsis(
    names: Sequence[str], matrix: np.ndarray, weights: np.ndarray
) -> Tuple[Tuple[str, float], ...]:
    """TOPSIS closeness ranking; (name, closeness) best first.

    The matrix is vector-normalised per criterion, weighted, and every
    alternative scored by ``d- / (d+ + d-)`` against the ideal (best
    observed per criterion) and anti-ideal points.
    """
    matrix = np.asarray(matrix, dtype=float)
    weights = np.asarray(weights, dtype=float)
    _validate(matrix, weights)
    norms = np.sqrt((matrix ** 2).sum(axis=0))
    norms[norms == 0] = 1.0
    weighted = matrix / norms * (weights / weights.sum())
    ideal = weighted.max(axis=0)
    anti = weighted.min(axis=0)
    d_plus = np.sqrt(((weighted - ideal) ** 2).sum(axis=1))
    d_minus = np.sqrt(((weighted - anti) ** 2).sum(axis=1))
    denom = d_plus + d_minus
    closeness = np.where(denom > 0, d_minus / np.where(denom > 0, denom, 1.0), 1.0)
    order = sorted(range(len(names)), key=lambda i: (-closeness[i], names[i]))
    return tuple((names[i], float(closeness[i])) for i in order)


def lexicographic(
    names: Sequence[str],
    matrix: np.ndarray,
    weights: np.ndarray,
    tolerance: float = 1e-9,
) -> Tuple[str, ...]:
    """Lexicographic ranking: criteria considered by decreasing weight.

    Alternatives are compared on the heaviest criterion first; ties
    (within ``tolerance``) move to the next criterion, and so on.
    """
    matrix = np.asarray(matrix, dtype=float)
    weights = np.asarray(weights, dtype=float)
    _validate(matrix, weights)
    criterion_order = np.argsort(-weights, kind="stable")
    quantised = np.round(matrix[:, criterion_order] / max(tolerance, 1e-12))
    keys: List[Tuple] = [tuple(-row) for row in quantised]
    order = sorted(range(len(names)), key=lambda i: (keys[i], names[i]))
    return tuple(names[i] for i in order)
