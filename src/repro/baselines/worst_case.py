"""The thesis-[15] baseline: missing values as worst performances.

§IV compares the GMAA ranking against "the ranking in [15], where
missing performances were not correctly modeled (worst attribute
performances were assigned)".  This module reproduces that earlier
treatment: every unknown cell is replaced by the scale's worst level,
weights are fixed at their precise averages, and component utilities at
their class averages — a plain precise additive ranking.

The paper's observation — that the two rankings are nonetheless "very
similar" — is quantified by the comparison bench through Kendall's tau
between this baseline and the imprecise evaluation.
"""

from __future__ import annotations


from ..core.model import AdditiveModel, Evaluation
from ..core.problem import DecisionProblem

__all__ = ["worst_case_problem", "worst_case_ranking"]


def worst_case_problem(problem: DecisionProblem) -> DecisionProblem:
    """The [15] variant of a decision problem.

    Missing performances are replaced by the worst level of their
    scale; the weight system collapses to its precise averages.
    """
    table = problem.table.replacing_missing_with_worst()
    weights = problem.weights.as_precise_averages()
    return DecisionProblem(
        problem.hierarchy,
        table,
        problem.utilities,
        weights,
        name=f"{problem.name}:worst-case",
    )


def worst_case_ranking(problem: DecisionProblem) -> Evaluation:
    """Evaluate the worst-case variant (ranking by average utility)."""
    return AdditiveModel(worst_case_problem(problem)).evaluate()
