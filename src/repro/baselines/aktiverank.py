"""An AKTiveRank-style graph-metric ontology ranker.

The MAUT selection the paper advocates competes with a family of
ontology-ranking tools that score candidates from query-term matches
and graph structure alone — AKTiveRank (Alani & Brewster) being the
best known.  This baseline reimplements its four measures over the
substrate's ontology model, using networkx for the structural ones:

* **CMM** — class match measure: how many query terms match a class
  label exactly or partially;
* **DEM** — density measure: how richly connected the matched classes
  are (subclasses, superclasses, properties, siblings);
* **SSM** — semantic similarity measure: how close the matched classes
  sit to each other in the taxonomy (shortest paths);
* **BEM** — betweenness measure: the centrality of the matched classes
  in the ontology graph.

Scores are normalised per measure across the candidate set and
aggregated with the published default weights.  The ablation bench
contrasts this ranking with the MAUT one: graph metrics only see
structure + query overlap, so reliability/cost criteria are invisible
to them — which is the paper's motivation for a multi-criteria method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from ..ontology.cq import extract_terms, normalise_term
from ..ontology.metrics import split_identifier
from ..ontology.model import OntClass, Ontology

__all__ = ["AKTiveRankScores", "DEFAULT_WEIGHTS", "score_ontology", "rank"]

#: Aggregation weights (wCMM, wDEM, wSSM, wBEM) — AKTiveRank's defaults.
DEFAULT_WEIGHTS: Tuple[float, float, float, float] = (0.4, 0.3, 0.2, 0.1)


@dataclass(frozen=True)
class AKTiveRankScores:
    """Per-measure scores of one candidate (already in [0, 1])."""

    name: str
    cmm: float
    dem: float
    ssm: float
    bem: float

    def aggregate(
        self, weights: Tuple[float, float, float, float] = DEFAULT_WEIGHTS
    ) -> float:
        w_cmm, w_dem, w_ssm, w_bem = weights
        total = w_cmm + w_dem + w_ssm + w_bem
        return (
            w_cmm * self.cmm + w_dem * self.dem
            + w_ssm * self.ssm + w_bem * self.bem
        ) / total


def _class_tokens(cls: OntClass) -> set:
    tokens = set(split_identifier(cls.name))
    if cls.label:
        tokens |= set(split_identifier(cls.label))
    return {normalise_term(t) for t in tokens}


def _matched_classes(
    ontology: Ontology, terms: Sequence[str]
) -> Tuple[List[OntClass], float]:
    """(matching classes, raw CMM) — exact hit 1.0, partial hit 0.4."""
    matched: List[OntClass] = []
    score = 0.0
    term_set = {normalise_term(t) for t in terms}
    for cls in ontology.classes:
        tokens = _class_tokens(cls)
        if not tokens:
            continue
        exact = tokens & term_set
        if exact:
            matched.append(cls)
            score += len(exact)
        else:
            partial = sum(
                1
                for term in term_set
                for token in tokens
                if len(term) > 3 and (term in token or token in term)
            )
            if partial:
                matched.append(cls)
                score += 0.4 * partial
    return matched, score


def _class_graph(ontology: Ontology) -> nx.Graph:
    """Undirected graph of classes: subclass + property-domain arcs."""
    graph = nx.Graph()
    class_iris = {cls.iri for cls in ontology.classes}
    graph.add_nodes_from(class_iris)
    for cls in ontology.classes:
        for sup in cls.superclasses:
            if sup in class_iris:
                graph.add_edge(cls.iri, sup)
    for prop in ontology.properties:
        if prop.domain in class_iris and prop.range in class_iris:
            graph.add_edge(prop.domain, prop.range)
    return graph


def _density(ontology: Ontology, matched: Sequence[OntClass]) -> float:
    """Mean connectivity of the matched classes (raw DEM)."""
    if not matched:
        return 0.0
    class_iris = {cls.iri for cls in ontology.classes}
    subclass_counts: Dict[str, int] = {iri: 0 for iri in class_iris}
    property_counts: Dict[str, int] = {iri: 0 for iri in class_iris}
    for cls in ontology.classes:
        for sup in cls.superclasses:
            if sup in subclass_counts:
                subclass_counts[sup] += 1
    for prop in ontology.properties:
        if prop.domain in property_counts:
            property_counts[prop.domain] += 1
    total = 0.0
    for cls in matched:
        supers = sum(1 for s in cls.superclasses if s in class_iris)
        total += (
            subclass_counts[cls.iri] + property_counts[cls.iri] + supers
        )
    return total / len(matched)


def _semantic_similarity(graph: nx.Graph, matched: Sequence[OntClass]) -> float:
    """Mean inverse shortest-path length between matched pairs (raw SSM)."""
    if len(matched) < 2:
        return 0.0
    total = 0.0
    pairs = 0
    for i in range(len(matched)):
        for j in range(i + 1, len(matched)):
            pairs += 1
            try:
                distance = nx.shortest_path_length(
                    graph, matched[i].iri, matched[j].iri
                )
            except nx.NetworkXNoPath:
                continue
            if distance > 0:
                total += 1.0 / distance
            else:
                total += 1.0
    return total / pairs if pairs else 0.0


def _betweenness(graph: nx.Graph, matched: Sequence[OntClass]) -> float:
    """Mean betweenness centrality of the matched classes (raw BEM)."""
    if not matched or graph.number_of_nodes() < 3:
        return 0.0
    centrality = nx.betweenness_centrality(graph, normalized=True)
    return sum(centrality.get(cls.iri, 0.0) for cls in matched) / len(matched)


def score_ontology(ontology: Ontology, query: str) -> Dict[str, float]:
    """Raw (unnormalised) CMM/DEM/SSM/BEM for one candidate."""
    terms = extract_terms(query)
    if not terms:
        raise ValueError(f"query {query!r} contains no informative terms")
    matched, cmm = _matched_classes(ontology, terms)
    graph = _class_graph(ontology)
    return {
        "cmm": cmm,
        "dem": _density(ontology, matched),
        "ssm": _semantic_similarity(graph, matched),
        "bem": _betweenness(graph, matched),
    }


def rank(
    candidates: Dict[str, Ontology],
    query: str,
    weights: Tuple[float, float, float, float] = DEFAULT_WEIGHTS,
) -> Tuple[Tuple[str, float], ...]:
    """Rank candidates for a query; returns (name, score) best first.

    Raw measures are normalised by the per-measure maximum across the
    candidate set (AKTiveRank's treatment) before aggregation.
    """
    if not candidates:
        raise ValueError("need at least one candidate")
    raw = {name: score_ontology(onto, query) for name, onto in candidates.items()}
    maxima = {
        key: max(scores[key] for scores in raw.values()) or 1.0
        for key in ("cmm", "dem", "ssm", "bem")
    }
    results = []
    for name, scores in raw.items():
        normalised = AKTiveRankScores(
            name=name,
            cmm=scores["cmm"] / maxima["cmm"],
            dem=scores["dem"] / maxima["dem"],
            ssm=scores["ssm"] / maxima["ssm"],
            bem=scores["bem"] / maxima["bem"],
        )
        results.append((name, normalised.aggregate(weights)))
    results.sort(key=lambda pair: (-pair[1], pair[0]))
    return tuple(results)
