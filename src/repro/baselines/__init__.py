"""Comparison rankers: the thesis-[15] treatment, AKTiveRank, MCDM.

* :mod:`repro.baselines.worst_case` — §IV's earlier ranking with
  missing performances forced to the worst level and precise weights.
* :mod:`repro.baselines.aktiverank` — a graph-metric ontology ranker
  in the AKTiveRank family (novelty context: the tool landscape the
  MAUT approach competes with).
* :mod:`repro.baselines.mcdm` — precise weighted sum, TOPSIS and
  lexicographic rankings for the ablation benches.
"""

from .aktiverank import AKTiveRankScores, DEFAULT_WEIGHTS, rank, score_ontology
from .mcdm import lexicographic, topsis, utilities_from_problem, weighted_sum
from .worst_case import worst_case_problem, worst_case_ranking

__all__ = [
    "worst_case_problem",
    "worst_case_ranking",
    "AKTiveRankScores",
    "DEFAULT_WEIGHTS",
    "score_ontology",
    "rank",
    "utilities_from_problem",
    "weighted_sum",
    "topsis",
    "lexicographic",
]
