"""The federated registry query service: HTTP over registry indexes.

The reuse workflow the paper targets is repository-centric — many
analysts querying shared registries of candidate shortlists, not each
recomputing MAUT rankings locally.  This package serves one *or many*
persistent registry indexes (:mod:`repro.core.index`) over a
versioned, spec-first HTTP API:

* :mod:`repro.service.routes` — the declarative route table
  (:class:`~repro.service.routes.Route` /
  :class:`~repro.service.routes.Router`), the uniform JSON error
  envelope (:class:`~repro.service.routes.ServiceError`) and the
  OpenAPI 3.1 generator (:func:`~repro.service.routes.build_openapi`);
* :mod:`repro.service.federation` — the mount table of named
  registries (:class:`~repro.service.federation.Federation`), each
  with its own index, caches and circuit breaker, plus
  registry-to-registry sync
  (:func:`~repro.service.federation.pull_registry`);
* :mod:`repro.service.app` — the request handling
  (:class:`~repro.service.app.ServiceApp`), independent of any socket
  so tests drive it directly;
* :mod:`repro.service.cache` — the in-process content-hash-keyed LRU
  of hot responses sitting above the sqlite index, the ETag machinery
  (``If-None-Match`` → 304) and the deterministic gzip helpers;
* :mod:`repro.service.server` — a threaded stdlib HTTP server with
  graceful shutdown and an access log, plus the
  :func:`~repro.service.server.ServiceServer` lifecycle wrapper the
  ``repro serve`` CLI command and the tests share.

Reads are *read-through*: an index hit serves the exact cached floats
from ``RegistryIndex.results``; a miss falls back to a
:class:`~repro.core.runtime.ShardedRunner` compile-and-evaluate and
commits the fresh rows back through the index's single-writer path, so
the server and ``repro batch`` share one cache and stay byte-identical.
See ``docs/service.md``.
"""

from .app import ROUTES, ServiceApp, ServiceError
from .cache import ResponseCache, make_etag
from .federation import Federation, PullReport, pull_registry
from .routes import Route, Router, build_openapi
from .server import RegistryHTTPServer, ServiceServer

__all__ = [
    "ServiceApp",
    "ServiceError",
    "ResponseCache",
    "make_etag",
    "RegistryHTTPServer",
    "ServiceServer",
    "ROUTES",
    "Route",
    "Router",
    "build_openapi",
    "Federation",
    "PullReport",
    "pull_registry",
]
