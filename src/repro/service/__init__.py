"""The registry query service: HTTP serving over the registry index.

The reuse workflow the paper targets is repository-centric — many
analysts querying one shared registry of candidate shortlists, not each
recomputing MAUT rankings locally.  This package serves the persistent
registry index (:mod:`repro.core.index`) over HTTP:

* :mod:`repro.service.app` — the route table and JSON
  request/response handling (:class:`~repro.service.app.ServiceApp`),
  independent of any socket so tests drive it directly;
* :mod:`repro.service.cache` — the in-process content-hash-keyed LRU
  of hot responses sitting above the sqlite index, including the ETag
  machinery (``If-None-Match`` → 304);
* :mod:`repro.service.server` — a threaded stdlib HTTP server with
  graceful shutdown and an access log, plus the
  :func:`~repro.service.server.ServiceServer` lifecycle wrapper the
  ``repro serve`` CLI command and the tests share.

Reads are *read-through*: an index hit serves the exact cached floats
from ``RegistryIndex.results``; a miss falls back to a
:class:`~repro.core.runtime.ShardedRunner` compile-and-evaluate and
commits the fresh rows back through the index's single-writer path, so
the server and ``repro batch`` share one cache and stay byte-identical.
See ``docs/service.md``.
"""

from .app import ServiceApp, ServiceError
from .cache import ResponseCache, make_etag
from .server import RegistryHTTPServer, ServiceServer

__all__ = [
    "ServiceApp",
    "ServiceError",
    "ResponseCache",
    "make_etag",
    "RegistryHTTPServer",
    "ServiceServer",
]
