"""Declarative route table for the registry query service.

PR 10's API redesign: instead of an ad-hoc ``if/elif`` dispatch in
:mod:`repro.service.app`, every endpoint is declared as a
:class:`Route` — HTTP method, path template, handler name, query
parameter specs, auth class and deprecation status — and a
:class:`Router` compiles the table into a matcher.  One declaration
drives four consumers:

* **dispatch** — :meth:`Router.match` resolves ``(method, path)`` to
  ``(route, path_params)``, with RFC-correct 404/405 discrimination
  (a path that matches a template with a different method answers
  ``405`` + ``Allow``, not ``404``);
* **param coercion** — :func:`coerce_query` validates and converts a
  request's query string against the route's :class:`QueryParam`
  specs, so handlers receive typed values and unknown parameters are
  rejected uniformly;
* **the OpenAPI document** — :func:`build_openapi` renders the table
  as an OpenAPI 3.1 spec, served at ``GET /v1/openapi.json`` and
  drift-checked against ``docs/service.md`` by
  ``tools/check_openapi.py``;
* **metrics labels** — :attr:`Route.label` is the bounded-cardinality
  endpoint label (``/v1/registries/{registry}/workspaces/{id}/ranking``)
  the request counters use.

Path templates use ``{name}`` for one segment and ``{name...}`` for a
greedy run of one or more segments (workspace ids may contain ``/``).

Error model
-----------
:class:`ServiceError` carries the uniform JSON error envelope every
4xx/5xx response renders::

    {"error": {"code": "<machine-readable>", "message": "...",
               "detail": ... | null}}

The code vocabulary is :data:`ERROR_CODES` (documented in
``docs/service.md`` and embedded in the OpenAPI components).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "ServiceError",
    "ERROR_CODES",
    "DEFAULT_CODES",
    "QueryParam",
    "Route",
    "Router",
    "coerce_query",
    "build_openapi",
    "OPENAPI_VERSION",
    "API_VERSION",
]

#: The spec dialect ``build_openapi`` emits.
OPENAPI_VERSION = "3.1.0"

#: The service's API version (the ``/v1`` prefix and ``info.version``).
API_VERSION = "1"

#: Machine-readable error codes and what each one means.  Every
#: 4xx/5xx body carries exactly one of these in ``error.code``; the
#: table is rendered into docs/service.md and the OpenAPI components.
ERROR_CODES: Dict[str, str] = {
    "bad_request": "Malformed id, query parameter or request body.",
    "unauthorized": "Missing or malformed bearer credentials (401).",
    "forbidden": "Credentials present but the token does not match (403).",
    "not_found": "No route or resource at this path.",
    "registry_not_found": "No registry mounted under this name.",
    "version_not_found": (
        "No recorded results for the pinned content hash "
        "(or an unknown hash for tagging)."
    ),
    "method_not_allowed": "The path exists but not for this HTTP method.",
    "conflict": "The request conflicts with current state.",
    "workspace_invalid": (
        "The workspace file exists but cannot be parsed or evaluated."
    ),
    "circuit_open": (
        "The evaluation circuit breaker is open after repeated failures."
    ),
    "evaluation_failed": "An evaluation attempt failed unexpectedly.",
    "index_unavailable": (
        "The registry index is unreachable and no stale copy exists."
    ),
    "internal": "Unhandled server error.",
}

#: Fallback ``error.code`` per HTTP status for errors raised without
#: an explicit code.
DEFAULT_CODES: Dict[int, str] = {
    400: "bad_request",
    401: "unauthorized",
    403: "forbidden",
    404: "not_found",
    405: "method_not_allowed",
    409: "conflict",
    500: "internal",
    503: "index_unavailable",
}


class ServiceError(Exception):
    """An error response: HTTP ``status``, envelope code and message."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[Mapping[str, str]] = None,
        code: Optional[str] = None,
        detail: Optional[object] = None,
    ) -> None:
        """Record status, envelope fields and extra headers."""
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})
        self.code = code or DEFAULT_CODES.get(status, "error")
        self.detail = detail

    def envelope(self) -> Dict[str, object]:
        """The uniform JSON error body this error renders as."""
        return {
            "error": {
                "code": self.code,
                "message": self.message,
                "detail": self.detail,
            }
        }


@dataclass(frozen=True)
class QueryParam:
    """One declared query parameter: name, type and constraints.

    ``kind`` is ``"int"`` or ``"str"``; ``choices`` restricts string
    values; ``minimum`` bounds integers.  ``default`` is returned when
    the parameter is absent (``None`` means "absent stays absent").
    """

    name: str
    kind: str = "str"
    default: Optional[object] = None
    choices: Optional[Tuple[str, ...]] = None
    minimum: Optional[int] = None
    description: str = ""


_PARAM_SEGMENT = re.compile(r"^\{([a-zA-Z_][a-zA-Z0-9_]*)(\.\.\.)?\}$")


@dataclass(frozen=True)
class Route:
    """One declared endpoint of the service.

    Attributes
    ----------
    method : str
        HTTP method (``GET``/``POST``/``DELETE``).
    template : str
        Path template; ``{name}`` matches one segment, ``{name...}``
        greedily matches one or more (workspace ids contain ``/``).
    handler : str
        Name of the :class:`~repro.service.app.ServiceApp` method that
        serves the route.
    name : str
        Unique operation id (also the OpenAPI ``operationId``).
    summary : str
        One-line human description (rendered into the spec).
    auth : str
        Route class for bearer auth: ``"public"`` routes never require
        a token; ``"read"`` and ``"admin"`` routes require it once the
        service is started with ``--auth-token``.
    scope : str
        How the route resolves a registry: ``"registry"`` (from the
        ``{registry}`` path parameter), ``"default"`` (legacy alias of
        the default registry) or ``"service"`` (no registry).
    deprecated : bool
        Legacy alias answering with ``Deprecation``/``Sunset`` headers.
    params : tuple of QueryParam
        Declared query parameters (anything else is a 400).
    """

    method: str
    template: str
    handler: str
    name: str
    summary: str
    auth: str = "read"
    scope: str = "service"
    deprecated: bool = False
    params: Tuple[QueryParam, ...] = field(default_factory=tuple)

    @property
    def label(self) -> str:
        """The metrics/OpenAPI path: the template with ``...`` elided."""
        return self.template.replace("...", "")


class _Compiled:
    """One route's template, split for matching."""

    def __init__(self, route: Route) -> None:
        """Parse the template into literal / param / rest segments."""
        self.route = route
        self.segments: List[Tuple[str, str]] = []
        rest_positions = []
        for raw in [s for s in route.template.split("/") if s]:
            match = _PARAM_SEGMENT.match(raw)
            if match is None:
                self.segments.append(("literal", raw))
            elif match.group(2):
                rest_positions.append(len(self.segments))
                self.segments.append(("rest", match.group(1)))
            else:
                self.segments.append(("param", match.group(1)))
        if len(rest_positions) > 1:
            raise ValueError(
                f"{route.template}: at most one greedy segment allowed"
            )
        self.rest_at = rest_positions[0] if rest_positions else None

    def match(self, parts: Sequence[str]) -> Optional[Dict[str, str]]:
        """Path params when ``parts`` matches this template, else None."""
        segs = self.segments
        if self.rest_at is None:
            if len(parts) != len(segs):
                return None
            return self._match_run(segs, parts)
        if len(parts) < len(segs):  # the greedy segment needs >= 1 part
            return None
        head, rest_name = segs[: self.rest_at], segs[self.rest_at][1]
        tail = segs[self.rest_at + 1 :]
        captured = self._match_run(head, parts[: len(head)])
        if captured is None:
            return None
        tail_parts = parts[len(parts) - len(tail) :] if tail else []
        tail_captured = self._match_run(tail, tail_parts)
        if tail_captured is None:
            return None
        middle = parts[len(head) : len(parts) - len(tail)]
        captured.update(tail_captured)
        captured[rest_name] = "/".join(middle)
        return captured

    @staticmethod
    def _match_run(
        segs: Sequence[Tuple[str, str]], parts: Sequence[str]
    ) -> Optional[Dict[str, str]]:
        captured: Dict[str, str] = {}
        for (kind, value), part in zip(segs, parts):
            if kind == "literal":
                if part != value:
                    return None
            else:
                captured[value] = part
        return captured


class Router:
    """The compiled route table: ``(method, path)`` → route + params."""

    def __init__(self, routes: Sequence[Route]) -> None:
        """Compile ``routes``; route names must be unique."""
        names = [route.name for route in routes]
        if len(set(names)) != len(names):
            raise ValueError("route names must be unique")
        self.routes: Tuple[Route, ...] = tuple(routes)
        self._compiled = [_Compiled(route) for route in routes]

    def match(self, method: str, path: str) -> Tuple[Route, Dict[str, str]]:
        """Resolve one request line to ``(route, path_params)``.

        Raises :class:`ServiceError` 404 when no template matches the
        path, and 405 (with an ``Allow`` header) when a template
        matches under a different method.
        """
        parts = [p for p in path.split("/") if p]
        allowed: List[str] = []
        for compiled in self._compiled:
            params = compiled.match(parts)
            if params is None:
                continue
            if compiled.route.method == method:
                return compiled.route, params
            allowed.append(compiled.route.method)
        if allowed:
            raise ServiceError(
                405,
                f"{method} not allowed on {path!r}",
                headers={"Allow": ", ".join(sorted(set(allowed)))},
            )
        raise ServiceError(404, f"unknown endpoint {path!r}")


def coerce_query(
    route: Route, query: Mapping[str, List[str]]
) -> Dict[str, object]:
    """Validate and convert a request's query against the route's specs.

    Unknown parameter names are a 400 (``bad_request``); declared
    parameters are coerced per their :class:`QueryParam` (last value
    wins, matching ``parse_qs`` conventions).  Returns a dict of every
    declared parameter to its coerced value or default.
    """
    allowed = {param.name for param in route.params}
    unknown = sorted(set(query) - allowed)
    if unknown:
        raise ServiceError(
            400, f"unknown query parameter(s): {', '.join(unknown)}"
        )
    coerced: Dict[str, object] = {}
    for param in route.params:
        values = query.get(param.name)
        if not values:
            coerced[param.name] = param.default
            continue
        raw = values[-1]
        if param.kind == "int":
            try:
                value: object = int(raw)
            except ValueError:
                raise ServiceError(
                    400, f"query parameter {param.name!r} must be an integer"
                ) from None
            if param.minimum is not None and value < param.minimum:
                raise ServiceError(
                    400,
                    f"query parameter {param.name!r} must be "
                    f">= {param.minimum}",
                )
        else:
            value = raw
            if param.choices is not None and raw not in param.choices:
                raise ServiceError(
                    400,
                    f"{param.name} must be one of "
                    f"{', '.join(param.choices)}; got {raw!r}",
                )
        coerced[param.name] = value
    return coerced


def _param_schema(param: QueryParam) -> Dict[str, object]:
    schema: Dict[str, object] = {
        "type": "integer" if param.kind == "int" else "string"
    }
    if param.choices is not None:
        schema["enum"] = list(param.choices)
    if param.minimum is not None:
        schema["minimum"] = param.minimum
    if param.default is not None:
        schema["default"] = param.default
    return schema


def build_openapi(routes: Sequence[Route]) -> Dict[str, object]:
    """The OpenAPI 3.1 document generated from the route table.

    Served at ``GET /v1/openapi.json``; because it is *generated*, the
    spec can never drift from dispatch — ``tools/check_openapi.py``
    additionally pins ``docs/service.md`` to the same table.
    """
    paths: Dict[str, Dict[str, object]] = {}
    path_param_names = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")
    for route in routes:
        spec_path = route.label
        parameters: List[Dict[str, object]] = [
            {
                "name": name,
                "in": "path",
                "required": True,
                "schema": {"type": "string"},
            }
            for name in path_param_names.findall(spec_path)
        ]
        parameters.extend(
            {
                "name": param.name,
                "in": "query",
                "required": False,
                "description": param.description,
                "schema": _param_schema(param),
            }
            for param in route.params
        )
        operation: Dict[str, object] = {
            "operationId": route.name,
            "summary": route.summary,
            "x-auth-class": route.auth,
            "responses": {
                "200": {"description": "Success."},
                "default": {
                    "description": "Error envelope.",
                    "content": {
                        "application/json": {
                            "schema": {
                                "$ref": (
                                    "#/components/schemas/ErrorEnvelope"
                                )
                            }
                        }
                    },
                },
            },
        }
        if parameters:
            operation["parameters"] = parameters
        if route.deprecated:
            operation["deprecated"] = True
        if route.auth != "public":
            operation["security"] = [{"bearerAuth": []}, {}]
        paths.setdefault(spec_path, {})[route.method.lower()] = operation
    return {
        "openapi": OPENAPI_VERSION,
        "info": {
            "title": "repro registry query service",
            "version": API_VERSION,
            "description": (
                "Federated multi-registry MAUT evaluation service: "
                "registries → workspaces → versions → "
                "results.  See docs/service.md."
            ),
        },
        "paths": dict(sorted(paths.items())),
        "components": {
            "securitySchemes": {
                "bearerAuth": {
                    "type": "http",
                    "scheme": "bearer",
                    "description": (
                        "Static token configured with "
                        "`repro serve --auth-token`; optional when the "
                        "service runs without one."
                    ),
                }
            },
            "schemas": {
                "ErrorEnvelope": {
                    "type": "object",
                    "required": ["error"],
                    "properties": {
                        "error": {
                            "type": "object",
                            "required": ["code", "message", "detail"],
                            "properties": {
                                "code": {
                                    "type": "string",
                                    "enum": sorted(ERROR_CODES),
                                },
                                "message": {"type": "string"},
                                "detail": {},
                            },
                        }
                    },
                }
            },
        },
    }
