"""Federation layer: many named registries behind one service.

PR 10 grows the query service from one registry directory into a
federated, OntoMaven-style artifact fabric: a :class:`Federation` maps
registry *names* to :class:`RegistryState` bundles, each with its own
:class:`~repro.core.index.RegistryIndex`, response LRU, stale cache,
circuit breaker and write lock — so a failure storm or an edit burst
in one registry never invalidates or degrades another (the isolation
``tests/service/test_federation.py`` pins).

Registries can be mounted at boot (``repro serve --mount NAME=DIR``)
or at runtime (``POST /v1/registries``), and unmounted again; the
*default* registry — the one ``--registry`` names — also answers the
legacy unprefixed routes (``/v1/workspaces/...``) byte-identically.

:func:`pull_registry` is registry-to-registry sync (``repro registry
pull SRC DST``): workspace files copy skip-if-present by content hash,
and their cached result sets and version lineage travel *through the
index* so the destination serves the exact floats the source cached —
no re-evaluation, byte-identical bodies, idempotent reruns.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..core.index import DEFAULT_INDEX_FILENAME, RegistryIndex
from .cache import ResponseCache

__all__ = [
    "DEFAULT_REGISTRY_NAME",
    "RegistryState",
    "Federation",
    "PullReport",
    "pull_registry",
]

#: The name the ``--registry`` directory mounts under (and the one the
#: legacy unprefixed routes alias).
DEFAULT_REGISTRY_NAME = "default"

#: Valid registry names: DNS-label-ish, path-safe, boundedly short.
_NAME = re.compile(r"^[a-z0-9][a-z0-9._-]{0,63}$")


@dataclass
class RegistryState:
    """Everything the service holds per mounted registry.

    One bundle per registry name: the resolved root directory, its
    index, the response LRU, the never-invalidated stale cache, the
    evaluation circuit breaker and the single-writer lock.  The
    breaker is injected by the app (it owns the breaker class) via the
    federation's ``breaker_factory``.
    """

    name: str
    root: Path
    index_path: Path
    index: RegistryIndex
    cache: ResponseCache
    stale: ResponseCache
    breaker: object
    write_lock: threading.Lock = field(default_factory=threading.Lock)

    def close(self) -> None:
        """Release the registry's index connections."""
        self.index.close()


class Federation:
    """The mount table: registry name → :class:`RegistryState`.

    Thread-safe; mounting validates the name and directory eagerly so
    a bad ``--mount`` fails boot (and a bad ``POST /v1/registries``
    fails the request) instead of the first read.
    """

    def __init__(
        self,
        breaker_factory: Callable[[], object],
        cache_size: int = 1024,
    ) -> None:
        """An empty mount table building per-registry caches/breakers."""
        self._lock = threading.RLock()
        self._states: "Dict[str, RegistryState]" = {}
        self._breaker_factory = breaker_factory
        self._cache_size = cache_size
        self.default_name: Optional[str] = None

    def mount(
        self,
        name: str,
        root: Union[str, Path],
        index_path: Optional[Union[str, Path]] = None,
        default: bool = False,
    ) -> RegistryState:
        """Mount ``root`` under ``name``; raises ``ValueError`` when bad.

        The first mount (or ``default=True``) becomes the default
        registry the legacy routes alias.
        """
        if not _NAME.match(name):
            raise ValueError(
                f"invalid registry name {name!r} (want lowercase "
                "letters, digits, '.', '_' or '-'; max 64 chars)"
            )
        resolved = Path(root).resolve()
        if not resolved.is_dir():
            raise ValueError(f"not a registry directory: {root}")
        db_path = (
            Path(index_path)
            if index_path is not None
            else resolved / DEFAULT_INDEX_FILENAME
        )
        with self._lock:
            if name in self._states:
                raise ValueError(f"registry {name!r} is already mounted")
            state = RegistryState(
                name=name,
                root=resolved,
                index_path=db_path,
                index=RegistryIndex(db_path),
                cache=ResponseCache(self._cache_size),
                stale=ResponseCache(self._cache_size),
                breaker=self._breaker_factory(),
            )
            self._states[name] = state
            if default or self.default_name is None:
                self.default_name = name
        return state

    def unmount(self, name: str) -> RegistryState:
        """Remove (and close) one mounted registry; ``KeyError`` if absent.

        The default registry cannot be unmounted (``ValueError``) —
        the legacy aliases would dangle.
        """
        with self._lock:
            if name not in self._states:
                raise KeyError(name)
            if name == self.default_name:
                raise ValueError(
                    f"registry {name!r} is the default registry and "
                    "cannot be unmounted"
                )
            state = self._states.pop(name)
        state.close()
        return state

    def get(self, name: str) -> Optional[RegistryState]:
        """The state mounted under ``name``, or ``None``."""
        with self._lock:
            return self._states.get(name)

    @property
    def default(self) -> RegistryState:
        """The default registry's state (the legacy-route target)."""
        with self._lock:
            if self.default_name is None:
                raise RuntimeError("federation has no mounted registry")
            return self._states[self.default_name]

    def states(self) -> List[RegistryState]:
        """Every mounted state, sorted by name."""
        with self._lock:
            return [self._states[name] for name in sorted(self._states)]

    def names(self) -> List[str]:
        """Every mounted registry name, sorted."""
        with self._lock:
            return sorted(self._states)

    def __len__(self) -> int:
        """The number of mounted registries."""
        with self._lock:
            return len(self._states)

    def close(self) -> None:
        """Close every mounted registry's index."""
        with self._lock:
            states, self._states = list(self._states.values()), {}
        for state in states:
            state.close()


@dataclass(frozen=True)
class PullReport:
    """What one ``repro registry pull`` run did.

    ``copied`` are new files, ``updated`` are files whose destination
    content hash differed, ``skipped`` matched by content hash, and
    ``unreadable`` could not be parsed on the source side.  Result
    sets and lineage rows count across all synced workspaces.
    """

    n_workspaces: int
    copied: int
    updated: int
    skipped: int
    unreadable: int
    result_sets_copied: int
    result_sets_skipped: int
    version_rows_added: int

    def summary(self) -> str:
        """A one-paragraph human rendering (the CLI's output)."""
        return (
            f"pulled {self.n_workspaces} workspace(s): "
            f"{self.copied} copied, {self.updated} updated, "
            f"{self.skipped} skipped (content hash match), "
            f"{self.unreadable} unreadable; "
            f"result sets: {self.result_sets_copied} copied, "
            f"{self.result_sets_skipped} already present; "
            f"version lineage rows added: {self.version_rows_added}"
        )


def _registry_files(root: Path, index_path: Path) -> List[Path]:
    """Every workspace JSON under ``root``, excluding the index db."""
    return sorted(
        path
        for path in root.rglob("*.json")
        if path.resolve() != index_path.resolve()
    )


def pull_registry(
    src_dir: Union[str, Path],
    dst_dir: Union[str, Path],
    src_index_path: Optional[Union[str, Path]] = None,
    dst_index_path: Optional[Union[str, Path]] = None,
) -> PullReport:
    """Sync workspaces + cached results from one registry into another.

    For every readable workspace in ``src_dir``: the file copies into
    the same relative path under ``dst_dir`` unless the destination
    already carries the same content hash (skip-if-present); its cached
    result sets copy index-to-index per ``(content_hash, config_hash)``
    — never overwriting rows the destination already has — and its
    version lineage merges in.  Files present only in the destination
    are left untouched.  Running the same pull twice is a no-op
    (idempotent): everything skips on the second pass.

    Returns a :class:`PullReport`; raises ``ValueError`` when either
    side is not a directory (the destination is created when missing).
    """
    src = Path(src_dir).resolve()
    if not src.is_dir():
        raise ValueError(f"not a registry directory: {src_dir}")
    dst = Path(dst_dir)
    dst.mkdir(parents=True, exist_ok=True)
    dst = dst.resolve()
    if src == dst:
        raise ValueError("source and destination registries are the same")
    src_db = (
        Path(src_index_path)
        if src_index_path is not None
        else src / DEFAULT_INDEX_FILENAME
    )
    dst_db = (
        Path(dst_index_path)
        if dst_index_path is not None
        else dst / DEFAULT_INDEX_FILENAME
    )
    copied = updated = skipped = unreadable = 0
    sets_copied = sets_skipped = lineage_added = 0
    files = _registry_files(src, src_db)
    with RegistryIndex(src_db) as src_index, RegistryIndex(dst_db) as dst_index:
        for path in files:
            rel = path.relative_to(src)
            record = src_index.probe(path)
            if record is None:
                unreadable += 1
                continue
            target = dst / rel
            existing = (
                dst_index.probe(target) if target.is_file() else None
            )
            if existing is not None and (
                existing.content_hash == record.content_hash
            ):
                skipped += 1
            else:
                target.parent.mkdir(parents=True, exist_ok=True)
                target.write_bytes(path.read_bytes())
                if existing is None:
                    copied += 1
                else:
                    updated += 1
            # results travel through the index, keyed by content hash —
            # the destination serves the exact floats the source cached
            outcome = dst_index.import_result_sets(
                record.content_hash,
                src_index.result_sets(record.content_hash),
            )
            sets_copied += outcome["copied"]
            sets_skipped += outcome["skipped"]
            lineage_added += dst_index.import_versions(
                target, src_index.version_rows(path)
            )
            probed = dst_index.probe(target)
            if probed is not None:
                dst_index.record_probes([probed])
    return PullReport(
        n_workspaces=len(files),
        copied=copied,
        updated=updated,
        skipped=skipped,
        unreadable=unreadable,
        result_sets_copied=sets_copied,
        result_sets_skipped=sets_skipped,
        version_rows_added=lineage_added,
    )
