"""In-process response cache for the registry query service.

The sqlite registry index already memoises *numbers* across runs; this
module memoises *rendered responses* across requests.  A
:class:`ResponseCache` is a thread-safe LRU keyed by the semantic
identity of a response — for workspace endpoints that key contains the
workspace ``content_hash`` and the evaluation ``config_hash``, so a
``touch``/rename keeps an entry hot while any semantic edit silently
misses to a fresh render (the stale entry ages out of the LRU).

The same identity doubles as the HTTP validator: :func:`make_etag`
derives a strong ETag from the key parts, and
:func:`if_none_match_matches` implements the ``If-None-Match`` →
``304 Not Modified`` comparison, so a client that caches one response
revalidates with one stat + one sqlite point read and no body bytes.
"""

from __future__ import annotations

import gzip as _gzip
import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

__all__ = [
    "CachedResponse",
    "ResponseCache",
    "make_etag",
    "if_none_match_matches",
    "accepts_gzip",
    "gzip_bytes",
]


@dataclass(frozen=True)
class CachedResponse:
    """One rendered response body plus its validator."""

    body: bytes
    etag: str
    content_type: str = "application/json"


def make_etag(*parts: str) -> str:
    """A strong ETag derived from the response's semantic identity.

    ``parts`` are the key components (endpoint name, content hash,
    config hash, ...); the ETag is a quoted sha256 prefix over their
    canonical join, so equal identities always revalidate and any
    changed part produces a different validator.
    """
    digest = hashlib.sha256("\x1f".join(parts).encode("utf-8")).hexdigest()
    return f'"{digest[:32]}"'


def if_none_match_matches(header: Optional[str], etag: str) -> bool:
    """Whether an ``If-None-Match`` header revalidates ``etag``.

    Implements the comparison a GET endpoint needs: ``*`` matches any
    representation, otherwise the comma-separated candidate list is
    compared entity-tag by entity-tag (weak ``W/`` prefixes ignored,
    per RFC 9110's weak comparison for ``If-None-Match``).
    """
    if not header:
        return False
    if header.strip() == "*":
        return True
    for candidate in header.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == etag:
            return True
    return False


def accepts_gzip(accept_encoding: Optional[str]) -> bool:
    """Whether an ``Accept-Encoding`` header opts into gzip.

    Parses the comma-separated coding list: ``gzip`` (any positive
    ``q``) accepts; ``gzip;q=0`` refuses; ``*`` as a wildcard accepts
    unless gzip is explicitly zeroed.  Absent header means identity
    only — compression is strictly opt-in.
    """
    if not accept_encoding:
        return False
    wildcard = False
    for part in accept_encoding.split(","):
        tokens = part.strip().split(";")
        coding = tokens[0].strip().lower()
        q = 1.0
        for token in tokens[1:]:
            token = token.strip()
            if token.startswith("q="):
                try:
                    q = float(token[2:])
                except ValueError:
                    q = 0.0
        if coding == "gzip":
            return q > 0.0
        if coding == "*":
            wildcard = q > 0.0
    return wildcard


def gzip_bytes(body: bytes, level: int = 5) -> bytes:
    """Deterministically gzip one response body.

    ``mtime=0`` pins the gzip header so equal bodies always compress
    to equal bytes — compressed responses stay byte-reproducible, the
    same property the uncompressed read-through contract pins.  The
    (strong, semantic) ETag is *unchanged* by compression: the
    validator names the representation's content identity, and the
    ``If-None-Match`` check happens before any body is built, so 304
    revalidation works identically for gzip and identity clients.
    """
    return _gzip.compress(body, compresslevel=level, mtime=0)


class ResponseCache:
    """A bounded, thread-safe LRU of hot :class:`CachedResponse` entries.

    ``capacity`` bounds the entry count; insertion past it evicts the
    least-recently-used entry.  ``get``/``put`` are O(1) under one
    lock, and hit/miss counters feed the service's ``/metrics``
    endpoint.
    """

    def __init__(self, capacity: int = 1024) -> None:
        """Create an empty cache holding at most ``capacity`` entries."""
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, CachedResponse]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: Hashable) -> Optional[CachedResponse]:
        """The cached response under ``key``, refreshed to MRU; or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: Hashable, entry: CachedResponse) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries past capacity."""
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def invalidate(self, part: Hashable) -> int:
        """Drop every entry whose key tuple contains ``part``.

        The incremental-invalidation hook: when a workspace edit is
        detected, passing its *old* ``content_hash`` evicts exactly the
        responses rendered from the superseded content (every verb,
        every configuration) while the rest of the cache stays hot —
        instead of waiting for stale entries to age out of the LRU.
        Returns the number of entries dropped.
        """
        with self._lock:
            doomed = [
                key
                for key in self._entries
                if isinstance(key, tuple) and part in key
            ]
            for key in doomed:
                del self._entries[key]
        return len(doomed)

    def __len__(self) -> int:
        """Current entry count."""
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, object]:
        """Hit/miss counters and occupancy for ``/metrics``."""
        with self._lock:
            hits, misses = self._hits, self._misses
            size = len(self._entries)
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "size": size,
            "capacity": self.capacity,
            "hit_ratio": (hits / total) if total else 0.0,
        }
