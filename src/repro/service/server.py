"""Threaded stdlib HTTP server for the registry query service.

Adapts a :class:`~repro.service.app.ServiceApp` onto
``http.server.ThreadingHTTPServer``: HTTP/1.1 keep-alive (one client
connection can pipeline thousands of warm cache hits), a bounded
worker-thread budget, a structured JSON-lines access log (ISO-8601
timestamp, method, path, status, duration, request id — one object
per line, machine-parseable), and graceful shutdown that drains
in-flight requests before the index's sqlite connections close.

:class:`ServiceServer` is the lifecycle wrapper shared by the
``repro serve`` CLI command, the service tests and
``benchmarks/bench_service.py`` — construct, ``start()`` (binds and
serves on a background thread; ``port=0`` picks an ephemeral port),
``stop()`` (or use it as a context manager).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from datetime import datetime, timezone
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import IO, Mapping, Optional, Union

from .app import Response, ServiceApp

__all__ = ["RegistryHTTPServer", "ServiceServer"]


class _Handler(BaseHTTPRequestHandler):
    """One request: delegate to the app, write status/headers/body."""

    server_version = "repro-registry/1"
    protocol_version = "HTTP/1.1"
    # status+headers and body leave as separate small sends; letting
    # Nagle coalesce them against delayed ACKs costs ~40 ms per
    # keep-alive response — three orders of magnitude over a warm hit.
    disable_nagle_algorithm = True
    # idle keep-alive connections are dropped after this many seconds,
    # so parked clients cost a blocked thread only temporarily
    timeout = 30

    def _dispatch(self, method: str) -> None:
        started = time.perf_counter()
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        # the worker budget bounds concurrent *request processing*,
        # not connections: an idle keep-alive client holds no slot
        with self.server._slots:
            response: Response = self.server.app.handle(
                method, self.path, dict(self.headers.items()), body
            )
        self.send_response(response.status)
        for name, value in response.headers.items():
            self.send_header(name, value)
        if response.status != 304:
            self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        self.end_headers()
        if response.body:
            self.wfile.write(response.body)
        self._log_access(method, response, started)

    def do_GET(self) -> None:
        """Serve one GET request through the app."""
        self._dispatch("GET")

    def do_POST(self) -> None:
        """Serve one POST request through the app."""
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        """Serve one DELETE request through the app (unmounts)."""
        self._dispatch("DELETE")

    def _log_access(
        self, method: str, response: Response, started: float
    ) -> None:
        """One JSON object per request, or nothing when quiet."""
        stream = self.server.access_log
        if stream is None:
            return
        line = {
            "ts": datetime.now(timezone.utc)
            .astimezone()
            .isoformat(timespec="milliseconds"),
            "method": method,
            "path": self.path,
            "status": response.status,
            "duration_ms": round((time.perf_counter() - started) * 1000.0, 3),
            "request_id": response.headers.get("X-Request-Id", ""),
        }
        stream.write(json.dumps(line, separators=(",", ":")) + "\n")

    def log_request(self, code="-", size="-") -> None:
        """Suppressed: :meth:`_log_access` is the access log."""

    def log_message(self, format: str, *args) -> None:
        """Non-access diagnostics (parse errors etc.), JSON-framed."""
        stream = self.server.access_log
        if stream is None:
            return
        line = {
            "ts": datetime.now(timezone.utc)
            .astimezone()
            .isoformat(timespec="milliseconds"),
            "message": format % args,
        }
        stream.write(json.dumps(line, separators=(",", ":")) + "\n")


class RegistryHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` bound to one :class:`ServiceApp`.

    One thread per connection (the mixin's model), but a bounded
    semaphore caps *concurrent request processing* at ``workers`` —
    excess requests wait for a slot while idle keep-alive connections
    hold nothing and are reaped by the handler's socket timeout, so
    parked clients cannot starve the server.  ``access_log=None``
    silences the access log (tests, benchmarks).
    """

    daemon_threads = True

    def __init__(
        self,
        address,
        app: ServiceApp,
        workers: int = 8,
        access_log: Optional[IO[str]] = sys.stderr,
    ) -> None:
        """Bind ``address`` and route every request through ``app``."""
        if workers < 1:
            raise ValueError("workers must be positive")
        self.app = app
        self.workers = workers
        self.access_log = access_log
        self._slots = threading.BoundedSemaphore(workers)
        super().__init__(address, _Handler)


class ServiceServer:
    """Lifecycle wrapper: app + server + background serving thread.

    >>> with ServiceServer("registry/", port=0) as server:
    ...     urllib.request.urlopen(server.url + "/healthz")

    ``stop()`` drains in-flight requests (``shutdown``), closes the
    listening socket, then releases the app's index connections — the
    graceful order that never strands a request on a closed database.
    """

    def __init__(
        self,
        registry_dir: Union[str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 8,
        index_path: Optional[Union[str, Path]] = None,
        cache_size: int = 1024,
        access_log: Optional[IO[str]] = sys.stderr,
        members_path: Optional[Union[str, Path]] = None,
        mounts: Optional[Mapping[str, Union[str, Path]]] = None,
        auth_token: Optional[str] = None,
        warm_writes: bool = False,
    ) -> None:
        """Build the app and bind the server (not yet serving)."""
        self.app = ServiceApp(
            registry_dir,
            index_path=index_path,
            cache_size=cache_size,
            members_path=members_path,
            mounts=mounts,
            auth_token=auth_token,
            warm_writes=warm_writes,
        )
        try:
            self.httpd = RegistryHTTPServer(
                (host, port), self.app, workers=workers, access_log=access_log
            )
        except BaseException:
            self.app.close()
            raise
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` (real port even when asked for 0)."""
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        """Base URL of the bound server, e.g. ``http://127.0.0.1:8321``."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServiceServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI mode)."""
        try:
            self.httpd.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Graceful shutdown: drain, close the socket, close the index."""
        if self._thread is not None:
            self.httpd.shutdown()
            self._thread.join(timeout=10)
            self._thread = None
        self.httpd.server_close()
        self.app.close()

    def __enter__(self) -> "ServiceServer":
        """Start serving on entry to a ``with`` block."""
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        """Stop the server on ``with`` block exit."""
        self.stop()
