"""Route table and JSON request/response handling for the query service.

A :class:`ServiceApp` is the whole HTTP surface minus the socket: it
maps ``(method, path, query, headers, body)`` to a :class:`Response`,
so unit tests exercise every endpoint, error path and cache state
without binding a port.  :mod:`repro.service.server` adapts it onto a
threaded stdlib HTTP server.

Endpoints
---------
``GET /healthz``
    Liveness: the registry and index the server is bound to.
``GET /metrics``
    Request counts, response-cache hit ratio, p50/p99 latency.
``GET /v1/registry``
    Index status plus the workspace listing with identity fingerprints.
``GET /v1/workspaces/{id}/ranking``
    The cached batch ranking row set for one workspace (read-through).
``GET /v1/workspaces/{id}/montecarlo``
    Ranking plus §V Monte Carlo stats (``simulations``/``method``/
    ``seed`` query parameters select the configuration; read-through).
``GET /v1/workspaces/{id}/dominance``
    The §V strict-dominance matrix (LRU-cached by content hash).
``GET /v1/workspaces/{id}/rankintervals``
    Attainable-rank intervals (LRU-cached by content hash).
``GET /v1/workspaces/{id}/group``
    The group-decision result under the server's member roster
    (``repro serve --members FILE``): per-member rankings, consensus /
    tolerant / Borda aggregations, disagreement profile.  Read-through
    like ranking, keyed by content hash × roster digest.
``POST /v1/evaluate``
    Evaluate an ad-hoc workspace JSON document through
    :class:`~repro.core.engine.BatchEvaluator`; nothing is persisted.

Read-through contract: ranking/montecarlo answers come from the
registry index when the workspace's content hash has cached rows for
the requested configuration — the *exact* floats ``repro batch``
stored.  On a miss the workspace is compiled and evaluated via
:class:`~repro.core.runtime.ShardedRunner` (under the app's single
writer lock) and the fresh rows are committed back through
:meth:`~repro.core.index.RegistryIndex.record_run`, so the server and
the batch CLI share one cache and serve byte-identical numbers in
either direction.

Workspace ids are registry-relative paths without the ``.json``
suffix (``shortlists/2024/q1`` → ``<registry>/shortlists/2024/q1.json``).
Status codes: 400 malformed ids/parameters/bodies, 404 unknown routes
and workspaces, 405 wrong method on a known route, 409 a workspace
file that exists but cannot be parsed or evaluated.
"""

from __future__ import annotations

import json
import math
import os
import sqlite3
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union
from urllib.parse import parse_qs, unquote, urlsplit

from ..core import workspace as _workspace
from ..core.engine import BatchEvaluator, compile_problem
from ..core.group import load_members, members_digest
from ..core.index import (
    DEFAULT_INDEX_FILENAME,
    RegistryIndex,
    eval_config_hash,
)
from ..core.runtime import BatchOptions, ShardedRunner
from ..obs import metrics as _obs_metrics
from ..obs import span as _span
from ..obs.metrics import PROMETHEUS_CONTENT_TYPE, render_prometheus
from ..reporting.figures import MC_SEED
from .cache import (
    CachedResponse,
    ResponseCache,
    if_none_match_matches,
    make_etag,
)

__all__ = ["Response", "ServiceError", "ServiceApp"]

_JSON = "application/json"
_MC_METHODS = ("random", "rank_order", "intervals")
_WORKSPACE_VERBS = (
    "ranking",
    "montecarlo",
    "dominance",
    "rankintervals",
    "group",
)
_LOAD_ERRORS = (OSError, ValueError, KeyError, TypeError)


class ServiceError(Exception):
    """An error response: HTTP ``status`` plus a client-facing message."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Record the status, message and extra headers (``Retry-After``)."""
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


@dataclass(frozen=True)
class Response:
    """One rendered HTTP response (status, body bytes, extra headers)."""

    status: int
    body: bytes = b""
    content_type: str = _JSON
    headers: Mapping[str, str] = field(default_factory=dict)


def _dumps(payload: object) -> bytes:
    """Canonical JSON rendering: sorted keys, no whitespace.

    ``json.dumps`` renders floats via ``repr`` (shortest round-trip),
    so two payloads built from bit-identical binary64 values always
    render byte-identical bodies — the property the read-through
    contract and its tests rely on.
    """
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


class _Metrics:
    """Thread-safe request counters and a latency reservoir.

    Both accumulators are bounded, so a long-lived (``--follow``-era)
    server cannot grow without limit: latency samples live in a ring
    buffer of the last ``window`` requests, and the per-endpoint
    counter keeps at most ``max_endpoints`` distinct labels — requests
    for further labels (typically unique 404 paths, which use the raw
    request path as their label) aggregate under ``"(other)"``.
    """

    #: Distinct endpoint labels kept before aggregating into "(other)".
    _MAX_ENDPOINTS = 64

    def __init__(
        self, window: int = 4096, max_endpoints: int = _MAX_ENDPOINTS
    ) -> None:
        """Empty counters; latency keeps the last ``window`` samples."""
        self._lock = threading.Lock()
        self._by_endpoint: Dict[str, int] = {}
        self._by_status: Dict[str, int] = {}
        self._latencies: deque = deque(maxlen=window)
        self._max_endpoints = max_endpoints
        self._total = 0
        self._not_modified = 0
        # Scrape-time percentiles need the reservoir sorted, but a
        # monitoring stack polling an idle server must not pay an
        # O(window log window) sort per scrape: the sorted copy is
        # cached and reused until the next sample invalidates it.
        self._sorted: Optional[List[float]] = None
        self._n_sorts = 0

    def record(self, endpoint: str, status: int, seconds: float) -> None:
        """Count one served request and append its latency sample."""
        with self._lock:
            self._total += 1
            if (
                endpoint not in self._by_endpoint
                and len(self._by_endpoint) >= self._max_endpoints
            ):
                endpoint = "(other)"
            self._by_endpoint[endpoint] = self._by_endpoint.get(endpoint, 0) + 1
            key = str(status)
            self._by_status[key] = self._by_status.get(key, 0) + 1
            if status == 304:
                self._not_modified += 1
            self._latencies.append(seconds)
            self._sorted = None

    def snapshot(self) -> Dict[str, object]:
        """The ``/metrics`` payload: counters + latency percentiles."""
        with self._lock:
            if self._sorted is None:
                self._sorted = sorted(self._latencies)
                self._n_sorts += 1
            latencies = self._sorted
            payload = {
                "total": self._total,
                "by_endpoint": dict(sorted(self._by_endpoint.items())),
                "by_status": dict(sorted(self._by_status.items())),
                "not_modified": self._not_modified,
            }
        latency: Dict[str, object] = {"window": len(latencies)}
        if latencies:
            def pct(q: float) -> float:
                pos = min(len(latencies) - 1, int(q * (len(latencies) - 1)))
                return latencies[pos] * 1000.0
            latency["p50_ms"] = pct(0.50)
            latency["p99_ms"] = pct(0.99)
            latency["max_ms"] = latencies[-1] * 1000.0
        return {"requests": payload, "latency": latency}


class _CircuitBreaker:
    """Evaluation circuit breaker: ``closed`` → ``open`` → ``half-open``.

    Protects the evaluation machinery from failure storms.  While
    closed every evaluation proceeds; after ``threshold`` *consecutive*
    failures the circuit opens and evaluations are refused outright
    (503 + ``Retry-After``) for ``cooldown`` seconds.  The first
    request after the cooldown transitions to half-open and is let
    through as a single probe — success closes the circuit, failure
    re-opens it for another full cooldown.  The clock is injectable so
    tests drive the state machine without sleeping.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        """A closed breaker tripping after ``threshold`` straight failures."""
        self._lock = threading.Lock()
        self._threshold = threshold
        self._cooldown = cooldown
        self._clock = clock
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        """The current state: ``closed``, ``open`` or ``half-open``."""
        with self._lock:
            return self._state

    def acquire(self) -> Optional[int]:
        """Ask to run one evaluation.

        Returns ``None`` when the call may proceed (closed, or the
        single half-open probe).  Otherwise returns the whole number of
        seconds the caller should advertise as ``Retry-After``.
        """
        with self._lock:
            if self._state == "closed":
                return None
            elapsed = self._clock() - self._opened_at
            if self._state == "open" and elapsed >= self._cooldown:
                self._state = "half-open"
            if self._state == "half-open" and not self._probing:
                self._probing = True
                return None
            return max(1, math.ceil(self._cooldown - elapsed))

    def record_success(self) -> None:
        """An evaluation completed: reset the count, close the circuit."""
        with self._lock:
            self._failures = 0
            self._state = "closed"
            self._probing = False

    def record_failure(self) -> None:
        """An evaluation failed: count it, opening at the threshold."""
        with self._lock:
            self._failures += 1
            if self._state == "half-open" or self._failures >= self._threshold:
                self._state = "open"
                self._opened_at = self._clock()
            self._probing = False

    def abort_probe(self) -> None:
        """A probe ended without a verdict (index outage mid-flight)."""
        with self._lock:
            self._probing = False

    def snapshot(self) -> Dict[str, object]:
        """The ``/healthz`` view of the breaker's state."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "threshold": self._threshold,
                "cooldown_seconds": self._cooldown,
            }


class ServiceApp:
    """The registry query service's request handler (no socket).

    Binds a registry directory to its
    :class:`~repro.core.index.RegistryIndex` (shared across request
    threads; per-thread sqlite connections) and an in-process
    :class:`~repro.service.cache.ResponseCache` of hot rendered
    responses keyed by content hash.  All evaluation writes funnel
    through one lock so the index keeps its single-writer discipline.

    Parameters
    ----------
    registry_dir : str or Path
        Directory of workspace ``*.json`` files to serve.
    index_path : str or Path, optional
        Index database (default ``<registry>/.repro-index.sqlite``).
    cache_size : int, optional
        Response-LRU capacity (entries, not bytes).
    members_path : str or Path, optional
        A ``repro-members/1`` roster document; configures the
        ``/v1/workspaces/{id}/group`` endpoint (404 without it).
        Validated at boot, so a malformed roster fails startup, not a
        request.
    """

    def __init__(
        self,
        registry_dir: Union[str, Path],
        index_path: Optional[Union[str, Path]] = None,
        cache_size: int = 1024,
        members_path: Optional[Union[str, Path]] = None,
    ) -> None:
        """Open the registry index and build an empty response cache."""
        self.registry_dir = Path(registry_dir).resolve()
        if not self.registry_dir.is_dir():
            raise ValueError(f"not a registry directory: {registry_dir}")
        self.index_path = (
            Path(index_path)
            if index_path is not None
            else self.registry_dir / DEFAULT_INDEX_FILENAME
        )
        self.members_path = (
            Path(members_path) if members_path is not None else None
        )
        self.members_spec = (
            load_members(self.members_path)
            if self.members_path is not None
            else None
        )
        self.members_digest = (
            members_digest(self.members_spec)
            if self.members_spec is not None
            else None
        )
        self.index = RegistryIndex(self.index_path)
        self.cache = ResponseCache(cache_size)
        self.metrics = _Metrics()
        self.breaker = _CircuitBreaker()
        # Last known-good response per (verb, workspace id) — never
        # invalidated, only overwritten, so index-unavailable reads can
        # degrade to a stale answer with a ``Warning: 110`` header.
        self._stale = ResponseCache(cache_size)
        self._write_lock = threading.Lock()

    def close(self) -> None:
        """Release the index's sqlite connections."""
        self.index.close()

    def __enter__(self) -> "ServiceApp":
        """Enter a ``with`` block; returns the app."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the app on ``with`` block exit."""
        self.close()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def handle(
        self,
        method: str,
        target: str,
        headers: Optional[Mapping[str, str]] = None,
        body: bytes = b"",
    ) -> Response:
        """Route one request; never raises (errors become JSON bodies).

        Request correlation: an incoming ``X-Request-Id`` header is
        propagated into the request's span and echoed on the response;
        absent one, a fresh id is generated so every response (and its
        access-log line) is correlatable anyway.
        """
        headers = {k.lower(): v for k, v in (headers or {}).items()}
        request_id = headers.get("x-request-id") or os.urandom(8).hex()
        split = urlsplit(target)
        path = unquote(split.path)
        query = parse_qs(split.query, keep_blank_values=True)
        endpoint, started = path, time.perf_counter()
        with _span(
            "http.request",
            method=method,
            path=path,
            request_id=request_id,
        ):
            try:
                endpoint, response = self._route(
                    method, path, query, headers, body
                )
            except ServiceError as exc:
                response = Response(
                    exc.status,
                    _dumps({"error": exc.message, "status": exc.status}),
                    headers=exc.headers,
                )
            except Exception as exc:  # pragma: no cover - defensive backstop
                response = Response(
                    500,
                    _dumps(
                        {
                            "error": f"{type(exc).__name__}: {exc}",
                            "status": 500,
                        }
                    ),
                )
        elapsed = time.perf_counter() - started
        self.metrics.record(endpoint, response.status, elapsed)
        self._record_obs(endpoint, response.status, elapsed)
        merged = dict(response.headers)
        merged.setdefault("X-Request-Id", request_id)
        return replace(response, headers=merged)

    @staticmethod
    def _record_obs(endpoint: str, status: int, seconds: float) -> None:
        """Mirror one served request into the process-wide obs metrics."""
        reg = _obs_metrics.registry()
        reg.counter(
            "repro_http_requests_total",
            "HTTP requests served, by endpoint label and status.",
            labelnames=("endpoint", "status"),
        ).inc(endpoint=endpoint, status=str(status))
        reg.histogram(
            "repro_http_request_seconds",
            "End-to-end request handling latency in seconds.",
        ).observe(seconds)

    def _route(
        self,
        method: str,
        path: str,
        query: Mapping[str, List[str]],
        headers: Mapping[str, str],
        body: bytes,
    ) -> Tuple[str, Response]:
        """(metrics endpoint label, response) for one parsed request."""
        parts = [p for p in path.split("/") if p]
        if parts == ["healthz"]:
            return path, self._require_get(method, path, self._healthz)
        if parts == ["metrics"]:
            return path, self._require_get(
                method, path, lambda: self._metrics(query)
            )
        if parts == ["v1", "registry"]:
            return path, self._require_get(method, path, self._registry)
        if parts[:2] == ["v1", "workspaces"] and len(parts) >= 4:
            verb = parts[-1]
            ws_id = "/".join(parts[2:-1])
            if verb not in _WORKSPACE_VERBS:
                raise ServiceError(404, f"unknown endpoint {path!r}")
            label = f"/v1/workspaces/{{id}}/{verb}"
            if method != "GET":
                raise ServiceError(405, f"{method} not allowed on {path!r}")
            return label, self._workspace_endpoint(verb, ws_id, query, headers)
        if parts == ["v1", "evaluate"]:
            if method != "POST":
                raise ServiceError(405, f"{method} not allowed on {path!r}")
            return path, self._evaluate(body)
        raise ServiceError(404, f"unknown endpoint {path!r}")

    @staticmethod
    def _require_get(method: str, path: str, handler) -> Response:
        if method != "GET":
            raise ServiceError(405, f"{method} not allowed on {path!r}")
        return handler()

    # ------------------------------------------------------------------
    # Plain endpoints
    # ------------------------------------------------------------------

    def _healthz(self) -> Response:
        """Liveness plus degradation report — always HTTP 200.

        ``status`` is ``"ok"`` when the index answers a ping and the
        evaluation circuit breaker is closed, ``"degraded"`` otherwise.
        Monitors read the payload, not the status code: a degraded
        service is still *serving* (stale reads keep working), so
        load balancers must not eject it.
        """
        index_error: Optional[str] = None
        try:
            self.index.ping()
        except sqlite3.Error as exc:
            index_error = f"{type(exc).__name__}: {exc}"
        breaker = self.breaker.snapshot()
        degraded = index_error is not None or breaker["state"] != "closed"
        return Response(
            200,
            _dumps(
                {
                    "status": "degraded" if degraded else "ok",
                    "registry": str(self.registry_dir),
                    "index_db": str(self.index_path),
                    "index_available": index_error is None,
                    "index_error": index_error,
                    "circuit_breaker": breaker,
                    "members": (
                        str(self.members_path)
                        if self.members_path is not None
                        else None
                    ),
                }
            ),
        )

    def _metrics(
        self, query: Optional[Mapping[str, List[str]]] = None
    ) -> Response:
        """The metrics scrape: JSON by default, ``?format=prometheus``.

        The JSON snapshot is unchanged (existing dashboards keep
        working); the Prometheus branch renders the process-wide
        :mod:`repro.obs.metrics` registry — request counts, response
        cache hits/misses, per-stage eval seconds — plus the breaker
        state gauge, in text exposition format 0.0.4.
        """
        fmt = (query or {}).get("format", ["json"])[-1]
        if fmt == "prometheus":
            return Response(
                200,
                self._prometheus_text().encode("utf-8"),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        if fmt != "json":
            raise ServiceError(
                400,
                f"unknown metrics format {fmt!r} "
                "(expected 'json' or 'prometheus')",
            )
        payload = self.metrics.snapshot()
        payload["cache"] = self.cache.stats()
        return Response(200, _dumps(payload))

    #: Breaker states as gauge values (closed is healthy).
    _BREAKER_STATES = {"closed": 0, "half-open": 1, "open": 2}

    def _prometheus_text(self) -> str:
        """The exposition body: obs registry + scrape-time gauges."""
        reg = _obs_metrics.registry()
        reg.gauge(
            "repro_breaker_state",
            "Evaluation circuit breaker: 0 closed, 1 half-open, 2 open.",
        ).set(self._BREAKER_STATES.get(self.breaker.state, -1))
        return render_prometheus(reg)

    def _registry_paths(self) -> List[Path]:
        return sorted(
            p
            for p in self.registry_dir.rglob("*.json")
            if p.resolve() != self.index_path.resolve()
        )

    def _registry(self) -> Response:
        workspaces = []
        fresh_records = []
        for path in self._registry_paths():
            ws_id = path.relative_to(self.registry_dir).with_suffix(
                ""
            ).as_posix()
            record, status = self.index.probe_with_status(path)
            if record is None:
                workspaces.append({"id": ws_id, "error": "unreadable"})
                continue
            if status != "fresh":
                if status == "changed":
                    old = self.index.lookup_workspace(path)
                    if (
                        old is not None
                        and old.content_hash != record.content_hash
                    ):
                        self.cache.invalidate(old.content_hash)
                fresh_records.append(record)
            workspaces.append(
                {
                    "id": ws_id,
                    "content_hash": record.content_hash,
                    "source_sha": record.source_sha,
                    "size": record.size,
                    "mtime_ns": record.mtime_ns,
                    "n_alternatives": record.n_alternatives,
                    "n_attributes": record.n_attributes,
                }
            )
        if fresh_records:
            # persist the fingerprints so the next listing (and every
            # ranking probe) takes the stat fast path instead of
            # re-hashing unchanged files
            with self._write_lock:
                self.index.record_probes(fresh_records)
        payload = {
            "registry": str(self.registry_dir),
            "index": self.index.status(),
            "n_workspaces": len(workspaces),
            "workspaces": workspaces,
        }
        return Response(200, _dumps(payload))

    # ------------------------------------------------------------------
    # Workspace endpoints
    # ------------------------------------------------------------------

    def _resolve(self, ws_id: str) -> Path:
        """The registry file behind a workspace id (404 when absent)."""
        segments = ws_id.split("/")
        if not ws_id or any(s in ("", ".", "..") for s in segments):
            raise ServiceError(400, f"invalid workspace id {ws_id!r}")
        path = self.registry_dir / (ws_id + ".json")
        if not path.is_file():
            raise ServiceError(404, f"unknown workspace {ws_id!r}")
        return path

    def _probe(self, ws_id: str, path: Path):
        """Probe one workspace, absorbing any edit incrementally.

        When the probe reports the file changed, the responses rendered
        from its *previous* content hash are evicted from the LRU
        (:meth:`~repro.service.cache.ResponseCache.invalidate`) —
        targeted invalidation instead of waiting for cold misses to age
        them out — and the fresh fingerprint is persisted so every
        later probe takes the stat fast path.
        """
        record, status = self.index.probe_with_status(path)
        if record is None:
            raise ServiceError(
                409, f"workspace {ws_id!r} exists but cannot be parsed"
            )
        if status != "fresh":
            if status == "changed":
                old = self.index.lookup_workspace(path)
                if old is not None and old.content_hash != record.content_hash:
                    self.cache.invalidate(old.content_hash)
            with self._write_lock:
                self.index.record_probes([record])
        return record

    @staticmethod
    def _reject_unknown_params(
        query: Mapping[str, List[str]], allowed: Sequence[str]
    ) -> None:
        unknown = sorted(set(query) - set(allowed))
        if unknown:
            raise ServiceError(
                400, f"unknown query parameter(s): {', '.join(unknown)}"
            )

    @staticmethod
    def _int_param(
        query: Mapping[str, List[str]], name: str, default: int
    ) -> int:
        values = query.get(name)
        if not values:
            return default
        try:
            return int(values[-1])
        except ValueError:
            raise ServiceError(
                400, f"query parameter {name!r} must be an integer"
            ) from None

    def _mc_options(self, query: Mapping[str, List[str]]) -> BatchOptions:
        self._reject_unknown_params(query, ("simulations", "method", "seed"))
        simulations = self._int_param(query, "simulations", 10_000)
        if simulations < 1:
            raise ServiceError(400, "simulations must be positive")
        method = query.get("method", ["intervals"])[-1]
        if method not in _MC_METHODS:
            raise ServiceError(
                400,
                f"method must be one of {', '.join(_MC_METHODS)}; "
                f"got {method!r}",
            )
        seed = self._int_param(query, "seed", MC_SEED)
        return BatchOptions(simulations=simulations, method=method, seed=seed)

    def _workspace_endpoint(
        self,
        verb: str,
        ws_id: str,
        query: Mapping[str, List[str]],
        headers: Mapping[str, str],
    ) -> Response:
        path = self._resolve(ws_id)
        try:
            if verb == "ranking":
                self._reject_unknown_params(query, ())
                return self._serve_results(ws_id, path, BatchOptions(), headers)
            if verb == "montecarlo":
                return self._serve_results(
                    ws_id, path, self._mc_options(query), headers
                )
            if verb == "group":
                self._reject_unknown_params(query, ())
                return self._serve_group(ws_id, path, headers)
            self._reject_unknown_params(query, ())
            return self._serve_screening(verb, ws_id, path, headers)
        except sqlite3.Error as exc:
            self.breaker.abort_probe()
            return self._serve_stale(verb, ws_id, exc)

    def _serve_stale(
        self, verb: str, ws_id: str, exc: sqlite3.Error
    ) -> Response:
        """Degraded read: the last known-good body for this endpoint.

        Reached when the registry index raises ``sqlite3.Error`` while
        serving a workspace GET.  If this endpoint answered before, the
        stored body is replayed with ``X-Cache: stale`` and the RFC
        7234 ``Warning: 110`` header so clients know it may be out of
        date; otherwise the outage surfaces as 503 + ``Retry-After``.
        """
        stale = self._stale.get((verb, ws_id))
        if stale is None:
            raise ServiceError(
                503,
                f"registry index unavailable "
                f"({type(exc).__name__}: {exc}) and no cached response "
                f"for {ws_id!r}",
                headers={"Retry-After": "5"},
            ) from exc
        return Response(
            200,
            stale.body,
            headers={
                "ETag": stale.etag,
                "X-Cache": "stale",
                "Warning": '110 - "Response is Stale"',
            },
        )

    def _finish(
        self,
        key: Tuple,
        etag: str,
        headers: Mapping[str, str],
        build,
        stale_key: Optional[Tuple[str, str]] = None,
    ) -> Response:
        """The shared validator → LRU → build tail of every GET.

        ``build()`` runs only when both the client validator and the
        response LRU miss; its body is cached under ``key`` for the
        next request with the same semantic identity.  Every 200 body
        is also stored under ``stale_key`` — the per-endpoint last
        known-good answer replayed by :meth:`_serve_stale` when the
        index goes down.
        """
        if if_none_match_matches(headers.get("if-none-match"), etag):
            return Response(304, b"", headers={"ETag": etag})
        cached = self.cache.get(key)
        if cached is None:
            cached = CachedResponse(body=build(), etag=etag)
            self.cache.put(key, cached)
            x_cache = "miss"
        else:
            x_cache = "hit"
        name = (
            "repro_response_cache_hits_total"
            if x_cache == "hit"
            else "repro_response_cache_misses_total"
        )
        _obs_metrics.registry().counter(
            name,
            "Response LRU lookups, split by outcome "
            "(hits serve the stored body; misses rebuild it).",
        ).inc()
        if stale_key is not None:
            self._stale.put(stale_key, cached)
        return Response(
            200, cached.body, headers={"ETag": etag, "X-Cache": x_cache}
        )

    # -- ranking / montecarlo: the index read-through -------------------

    def _serve_results(
        self,
        ws_id: str,
        path: Path,
        options: BatchOptions,
        headers: Mapping[str, str],
    ) -> Response:
        record = self._probe(ws_id, path)
        config_hash = eval_config_hash(options)
        verb = "montecarlo" if options.simulations else "ranking"
        etag = make_etag(verb, record.content_hash, config_hash)
        key = (verb, record.content_hash, config_hash)

        def build() -> bytes:
            rows = self.index.lookup_results(record.content_hash, config_hash)
            if rows is None:
                rows = self._evaluate_through(ws_id, path, options, config_hash)
            return _dumps(
                self._results_payload(ws_id, record.content_hash, options, rows)
            )

        return self._finish(key, etag, headers, build, stale_key=(verb, ws_id))

    def _evaluate_through(
        self,
        ws_id: str,
        path: Path,
        options: BatchOptions,
        config_hash: str,
    ):
        """The read-through miss: evaluate and commit via the index.

        Serialised on the app's write lock so concurrent misses for the
        same workspace evaluate once and the index keeps exactly one
        writer at a time.  The runner probes, evaluates, and persists
        through :meth:`RegistryIndex.record_run` — the same single
        -writer path ``repro batch`` uses — so the committed rows are
        the ones a batch run would cache.

        Guarded by the app's :class:`_CircuitBreaker`: while the
        circuit is open this raises 503 + ``Retry-After`` immediately,
        and any unexpected evaluation failure counts toward opening it.
        ``sqlite3.Error`` passes through untouched (the index outage
        path serves stale instead); a 409 for unevaluable *content* is
        a machinery success — it must not trip the breaker.
        """
        retry_after = self.breaker.acquire()
        if retry_after is not None:
            raise ServiceError(
                503,
                "evaluation circuit open after repeated failures; "
                f"retry in {retry_after}s",
                headers={"Retry-After": str(retry_after)},
            )
        try:
            with self._write_lock:
                probed = self.index.probe(path)
                if probed is not None:
                    rows = self.index.lookup_results(
                        probed.content_hash, config_hash
                    )
                    if rows is not None:
                        self.breaker.record_success()
                        return rows
                report = ShardedRunner(workers=1, options=options).run(
                    [str(path)], index=self.index
                )
        except sqlite3.Error:
            self.breaker.abort_probe()
            raise
        except ServiceError:
            raise
        except Exception as exc:
            self.breaker.record_failure()
            raise ServiceError(
                503,
                f"evaluation failed: {type(exc).__name__}: {exc}",
                headers={"Retry-After": "1"},
            ) from exc
        self.breaker.record_success()
        if report.skipped or not report.results:
            detail = report.skipped[0].error if report.skipped else "empty"
            raise ServiceError(
                409, f"workspace {ws_id!r} cannot be evaluated: {detail}"
            )
        return report.results

    @staticmethod
    def _results_payload(
        ws_id: str, content_hash: str, options: BatchOptions, rows
    ) -> Dict[str, object]:
        """One ranking/montecarlo body, identical for cached and fresh rows.

        ``rows`` are :class:`~repro.core.index.CachedResult` (index hit)
        or :class:`~repro.core.runtime.WorkspaceResult` (fresh) — the
        shared field names carry bit-identical binary64 floats either
        way, so the rendered bytes never depend on the cache state.
        """
        simulations = int(options.simulations)
        results = []
        for row in rows:
            entry: Dict[str, object] = {
                "sub_index": row.sub_index,
                "name": row.name,
                "n_alternatives": row.n_alternatives,
                "n_attributes": row.n_attributes,
                "best": {
                    "name": row.best_name,
                    "minimum": row.best_minimum,
                    "average": row.best_average,
                    "maximum": row.best_maximum,
                },
            }
            if simulations:
                entry["ever_best"] = row.ever_best
                entry["top5_fluctuation"] = row.top5_fluctuation
            results.append(entry)
        return {
            "workspace": ws_id,
            "content_hash": content_hash,
            "config": {
                "objectives": False,
                "simulations": simulations,
                "method": options.method if simulations else None,
                "seed": options.seed if simulations else None,
            },
            "results": results,
        }

    # -- group: the members-axis read-through ---------------------------

    def _serve_group(
        self,
        ws_id: str,
        path: Path,
        headers: Mapping[str, str],
    ) -> Response:
        """The group-decision result under the configured roster.

        Same read-through contract as ranking: the cache key (and the
        ETag) is the workspace content hash × the evaluation
        configuration hash, which for group runs folds in the member
        roster digest — so editing the roster file and restarting the
        server serves fresh results while every other cache row stays
        valid.  On a miss the workspace evaluates through the stacked
        members axis via :class:`~repro.core.runtime.ShardedRunner` and
        the rows commit back through the index, byte-identical to what
        ``repro group`` caches.
        """
        if self.members_spec is None:
            raise ServiceError(
                404,
                "no member roster configured; start the service with "
                "a members file (repro serve --members FILE)",
            )
        record = self._probe(ws_id, path)
        options = BatchOptions(group=self.members_spec)
        config_hash = eval_config_hash(options)
        etag = make_etag("group", record.content_hash, config_hash)
        key = ("group", record.content_hash, config_hash)

        def build() -> bytes:
            rows = self.index.lookup_results(record.content_hash, config_hash)
            if rows is None:
                rows = self._evaluate_through(ws_id, path, options, config_hash)
            group_json = rows[0].group_json
            if group_json is None:  # pragma: no cover - defensive
                raise ServiceError(
                    409, f"workspace {ws_id!r} has no group result"
                )
            return _dumps(
                {
                    "workspace": ws_id,
                    "content_hash": record.content_hash,
                    "members_digest": self.members_digest,
                    "group": json.loads(group_json),
                }
            )

        return self._finish(
            key, etag, headers, build, stale_key=("group", ws_id)
        )

    # -- dominance / rank intervals: engine-backed, LRU-cached ----------

    def _serve_screening(
        self,
        verb: str,
        ws_id: str,
        path: Path,
        headers: Mapping[str, str],
    ) -> Response:
        record = self._probe(ws_id, path)
        etag = make_etag(verb, record.content_hash)
        key = (verb, record.content_hash)

        def build() -> bytes:
            try:
                compiled = _workspace.load_compiled_fast(str(path))
            except _LOAD_ERRORS as exc:
                raise ServiceError(
                    409,
                    f"workspace {ws_id!r} cannot be compiled: "
                    f"{type(exc).__name__}: {exc}",
                ) from exc
            evaluator = BatchEvaluator(compiled)
            names = list(evaluator.alternative_names)
            if verb == "dominance":
                matrix = evaluator.dominance_matrix()
                dominated = matrix.any(axis=0)
                payload = {
                    "workspace": ws_id,
                    "content_hash": record.content_hash,
                    "alternatives": names,
                    "matrix": [[bool(x) for x in row] for row in matrix],
                    "non_dominated": [
                        name
                        for name, hit in zip(names, dominated)
                        if not hit
                    ],
                }
            else:
                intervals = evaluator.rank_intervals()
                payload = {
                    "workspace": ws_id,
                    "content_hash": record.content_hash,
                    "intervals": [
                        {
                            "name": name,
                            "best": intervals[name].best,
                            "worst": intervals[name].worst,
                        }
                        for name in names
                    ],
                }
            return _dumps(payload)

        return self._finish(key, etag, headers, build, stale_key=(verb, ws_id))

    # ------------------------------------------------------------------
    # POST /v1/evaluate
    # ------------------------------------------------------------------

    def _evaluate(self, body: bytes) -> Response:
        """Ad-hoc evaluation of a posted workspace document.

        Accepts either the raw ``repro-workspace/1`` document or an
        envelope ``{"workspace": <document>, "simulations": N,
        "method": ..., "seed": ...}``.  Nothing touches the registry or
        the index — the problem never has a path, so there is nothing
        to fingerprint.
        """
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(400, f"request body is not JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise ServiceError(400, "request body must be a JSON object")
        simulations, method, seed = 0, "intervals", MC_SEED
        if "format" not in doc and "workspace" in doc:
            envelope, doc = doc, doc["workspace"]
            unknown = sorted(
                set(envelope) - {"workspace", "simulations", "method", "seed"}
            )
            if unknown:
                raise ServiceError(
                    400, f"unknown field(s): {', '.join(unknown)}"
                )
            simulations = envelope.get("simulations", 0)
            method = envelope.get("method", "intervals")
            seed = envelope.get("seed", MC_SEED)
            if not isinstance(simulations, int) or simulations < 0:
                raise ServiceError(
                    400, "simulations must be a non-negative integer"
                )
            if method not in _MC_METHODS:
                raise ServiceError(
                    400, f"method must be one of {', '.join(_MC_METHODS)}"
                )
            if not isinstance(seed, int):
                raise ServiceError(400, "seed must be an integer")
        if not isinstance(doc, dict):
            raise ServiceError(400, "workspace must be a JSON object")
        try:
            problem = _workspace.from_dict(doc)
            compiled = compile_problem(problem)
        except _LOAD_ERRORS as exc:
            raise ServiceError(
                400,
                f"invalid workspace document: {type(exc).__name__}: {exc}",
            ) from exc
        evaluator = BatchEvaluator(compiled)
        evaluation = evaluator.evaluate()
        payload: Dict[str, object] = {
            "problem": compiled.name,
            "n_alternatives": evaluator.n_alternatives,
            "n_attributes": evaluator.n_attributes,
            "best": evaluation.best.name,
            "ranking": [
                {
                    "rank": row.rank,
                    "name": row.name,
                    "minimum": row.minimum,
                    "average": row.average,
                    "maximum": row.maximum,
                }
                for row in evaluation
            ],
        }
        if simulations:
            result = evaluator.simulate(
                method=method,
                n_simulations=simulations,
                seed=seed,
                sample_utilities="missing",
            )
            payload["montecarlo"] = {
                "simulations": simulations,
                "method": method,
                "seed": seed,
                "ever_best": list(result.ever_best()),
                "top5_fluctuation": int(
                    result.max_fluctuation(result.top_k_by_mean(5))
                ),
            }
        return Response(200, _dumps(payload))
