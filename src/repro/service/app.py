"""Request handling for the federated registry query service.

A :class:`ServiceApp` is the whole HTTP surface minus the socket: it
maps ``(method, path, query, headers, body)`` to a :class:`Response`,
so unit tests exercise every endpoint, error path and cache state
without binding a port.  :mod:`repro.service.server` adapts it onto a
threaded stdlib HTTP server.

Dispatch is declarative: :data:`ROUTES` is the route table
(:class:`~repro.service.routes.Route` entries — method, path
template, handler, query-parameter specs, auth class) compiled by a
:class:`~repro.service.routes.Router`; the same table generates the
OpenAPI 3.1 document served at ``GET /v1/openapi.json``.

Resource model (v1)
-------------------
``registries → workspaces → versions → results``.  A
:class:`~repro.service.federation.Federation` mounts many named
registries, each with its own index, response LRU, stale cache and
circuit breaker, so one registry's edit bursts or failure storms
never degrade another:

``GET /healthz`` / ``GET /metrics`` / ``GET /v1/openapi.json``
    Service-scoped: liveness (per-registry blocks), counters/latency
    (``?format=prometheus`` for exposition text) and the generated
    API description.
``GET /v1/registries`` · ``POST /v1/registries``
    The mount table: list mounted registries; mount another at
    runtime (``{"name": ..., "root": ..., "index": ...}``).
``GET /v1/registries/{registry}`` · ``DELETE /v1/registries/{registry}``
    One registry's descriptor + index status; unmount it (the
    default registry refuses with 409).
``GET /v1/registries/{registry}/registry``
    The workspace listing with identity fingerprints.
``GET /v1/registries/{registry}/workspaces/{id}/ranking``
    The cached batch ranking row set (read-through; ``?at=<hash>``
    pins the read to a recorded content-hash version).
``GET /v1/registries/{registry}/workspaces/{id}/montecarlo``
    Ranking plus §V Monte Carlo stats (``simulations``/``method``/
    ``seed`` select the configuration; ``at`` pins the version).
``GET /v1/registries/{registry}/workspaces/{id}/dominance``
    The §V strict-dominance matrix (LRU-cached by content hash).
``GET /v1/registries/{registry}/workspaces/{id}/rankintervals``
    Attainable-rank intervals (LRU-cached by content hash).
``GET /v1/registries/{registry}/workspaces/{id}/group``
    The group-decision result under the server's member roster.
``GET /v1/registries/{registry}/workspaces/{id}/versions``
    Content-hash lineage: every version the index has seen, its tag,
    and how many result sets are recorded for it.
``POST /v1/registries/{registry}/workspaces/{id}/versions``
    Tag one recorded version (``{"content_hash": ..., "tag": ...}``).
``POST /v1/registries/{registry}/evaluate``
    Ad-hoc evaluation of a posted workspace document; nothing is
    persisted.

Legacy aliases (deprecated)
---------------------------
The PR-4-era single-registry routes — ``/v1/registry``,
``/v1/workspaces/{id}/<verb>`` and ``POST /v1/evaluate`` — keep
working as aliases of the *default* registry and answer
byte-identically to their ``/v1/registries/{default}/...``
equivalents, plus ``Deprecation``/``Sunset`` headers.

Read-through contract: ranking/montecarlo answers come from the
registry index when the workspace's content hash has cached rows for
the requested configuration — the *exact* floats ``repro batch``
stored.  On a miss the workspace is compiled and evaluated via
:class:`~repro.core.runtime.ShardedRunner` (under the registry's
single writer lock) and the fresh rows are committed back through
:meth:`~repro.core.index.RegistryIndex.record_run`, so the server and
the batch CLI share one cache and serve byte-identical numbers in
either direction.

Hardening: a static bearer token (``repro serve --auth-token``) gates
every non-public route; bodies ≥ :data:`_GZIP_MIN_BYTES` gzip when
the client sends ``Accept-Encoding: gzip`` (ETag-safe — the validator
names content identity and ``If-None-Match`` is checked before any
body is built); ``--warm-writes`` starts a :class:`_CacheWarmer` that
pre-evaluates edited workspaces in the background.

Errors are uniform: every 4xx/5xx body is the JSON envelope
``{"error": {"code", "message", "detail"}}``
(:class:`~repro.service.routes.ServiceError`).  Workspace ids are
registry-relative paths without the ``.json`` suffix.
"""

from __future__ import annotations

import hmac
import json
import math
import os
import re
import sqlite3
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path
from queue import Queue
from typing import Dict, List, Mapping, Optional, Tuple, Union
from urllib.parse import parse_qs, unquote, urlsplit

from ..core import workspace as _workspace
from ..core.engine import BatchEvaluator, compile_problem
from ..core.group import load_members, members_digest
from ..core.index import RegistryIndex, eval_config_hash
from ..core.runtime import BatchOptions, ShardedRunner
from ..obs import metrics as _obs_metrics
from ..obs import span as _span
from ..obs.metrics import PROMETHEUS_CONTENT_TYPE, render_prometheus
from ..reporting.figures import MC_SEED
from .cache import (
    CachedResponse,
    accepts_gzip,
    gzip_bytes,
    if_none_match_matches,
    make_etag,
)
from .federation import DEFAULT_REGISTRY_NAME, Federation, RegistryState
from .routes import (
    QueryParam,
    Route,
    Router,
    ServiceError,
    build_openapi,
    coerce_query,
)

__all__ = ["Response", "ServiceError", "ServiceApp", "Request", "ROUTES"]

_JSON = "application/json"
_MC_METHODS = ("random", "rank_order", "intervals")
_WORKSPACE_VERBS = (
    "ranking",
    "montecarlo",
    "dominance",
    "rankintervals",
    "group",
)
_LOAD_ERRORS = (OSError, ValueError, KeyError, TypeError)

#: Response bodies below this size are never gzipped (the header
#: overhead would not pay for itself).
_GZIP_MIN_BYTES = 512

#: Content hashes accepted by ``?at=`` / version tagging.
_HEX_HASH = re.compile(r"^[0-9a-f]{8,64}$")

#: Headers every deprecated legacy alias answers with.
_DEPRECATION_HEADERS = {
    "Deprecation": "true",
    "Sunset": "Wed, 01 Jul 2027 00:00:00 GMT",
    "Link": '</v1/openapi.json>; rel="successor-version"',
}


@dataclass(frozen=True)
class Response:
    """One rendered HTTP response (status, body bytes, extra headers)."""

    status: int
    body: bytes = b""
    content_type: str = _JSON
    headers: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class Request:
    """One parsed, authorized request as handlers receive it.

    ``path_params`` are the template captures (``registry``, ``id``),
    ``params`` the coerced query values per the route's
    :class:`~repro.service.routes.QueryParam` specs, ``query`` the raw
    ``parse_qs`` mapping, ``headers`` lower-cased.
    """

    method: str
    path: str
    route: Route
    path_params: Mapping[str, str]
    params: Mapping[str, object]
    query: Mapping[str, List[str]]
    headers: Mapping[str, str]
    body: bytes = b""


def _dumps(payload: object) -> bytes:
    """Canonical JSON rendering: sorted keys, no whitespace.

    ``json.dumps`` renders floats via ``repr`` (shortest round-trip),
    so two payloads built from bit-identical binary64 values always
    render byte-identical bodies — the property the read-through
    contract and its tests rely on.
    """
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


class _Metrics:
    """Thread-safe request counters and a latency reservoir.

    Both accumulators are bounded, so a long-lived (``--follow``-era)
    server cannot grow without limit: latency samples live in a ring
    buffer of the last ``window`` requests, and the per-endpoint
    counter keeps at most ``max_endpoints`` distinct labels — requests
    for further labels (typically unique 404 paths, which use the raw
    request path as their label) aggregate under ``"(other)"``.
    """

    #: Distinct endpoint labels kept before aggregating into "(other)".
    _MAX_ENDPOINTS = 64

    def __init__(
        self, window: int = 4096, max_endpoints: int = _MAX_ENDPOINTS
    ) -> None:
        """Empty counters; latency keeps the last ``window`` samples."""
        self._lock = threading.Lock()
        self._by_endpoint: Dict[str, int] = {}
        self._by_status: Dict[str, int] = {}
        self._latencies: deque = deque(maxlen=window)
        self._max_endpoints = max_endpoints
        self._total = 0
        self._not_modified = 0
        # Scrape-time percentiles need the reservoir sorted, but a
        # monitoring stack polling an idle server must not pay an
        # O(window log window) sort per scrape: the sorted copy is
        # cached and reused until the next sample invalidates it.
        self._sorted: Optional[List[float]] = None
        self._n_sorts = 0

    def record(self, endpoint: str, status: int, seconds: float) -> None:
        """Count one served request and append its latency sample."""
        with self._lock:
            self._total += 1
            if (
                endpoint not in self._by_endpoint
                and len(self._by_endpoint) >= self._max_endpoints
            ):
                endpoint = "(other)"
            self._by_endpoint[endpoint] = self._by_endpoint.get(endpoint, 0) + 1
            key = str(status)
            self._by_status[key] = self._by_status.get(key, 0) + 1
            if status == 304:
                self._not_modified += 1
            self._latencies.append(seconds)
            self._sorted = None

    def snapshot(self) -> Dict[str, object]:
        """The ``/metrics`` payload: counters + latency percentiles."""
        with self._lock:
            if self._sorted is None:
                self._sorted = sorted(self._latencies)
                self._n_sorts += 1
            latencies = self._sorted
            payload = {
                "total": self._total,
                "by_endpoint": dict(sorted(self._by_endpoint.items())),
                "by_status": dict(sorted(self._by_status.items())),
                "not_modified": self._not_modified,
            }
        latency: Dict[str, object] = {"window": len(latencies)}
        if latencies:
            def pct(q: float) -> float:
                pos = min(len(latencies) - 1, int(q * (len(latencies) - 1)))
                return latencies[pos] * 1000.0
            latency["p50_ms"] = pct(0.50)
            latency["p99_ms"] = pct(0.99)
            latency["max_ms"] = latencies[-1] * 1000.0
        return {"requests": payload, "latency": latency}


class _CircuitBreaker:
    """Evaluation circuit breaker: ``closed`` → ``open`` → ``half-open``.

    Protects the evaluation machinery from failure storms.  While
    closed every evaluation proceeds; after ``threshold`` *consecutive*
    failures the circuit opens and evaluations are refused outright
    (503 + ``Retry-After``) for ``cooldown`` seconds.  The first
    request after the cooldown transitions to half-open and is let
    through as a single probe — success closes the circuit, failure
    re-opens it for another full cooldown.  The clock is injectable so
    tests drive the state machine without sleeping.  Each mounted
    registry owns its own breaker, so one registry's failure storm
    never refuses another registry's evaluations.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        """A closed breaker tripping after ``threshold`` straight failures."""
        self._lock = threading.Lock()
        self._threshold = threshold
        self._cooldown = cooldown
        self._clock = clock
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        """The current state: ``closed``, ``open`` or ``half-open``."""
        with self._lock:
            return self._state

    def acquire(self) -> Optional[int]:
        """Ask to run one evaluation.

        Returns ``None`` when the call may proceed (closed, or the
        single half-open probe).  Otherwise returns the whole number of
        seconds the caller should advertise as ``Retry-After``.
        """
        with self._lock:
            if self._state == "closed":
                return None
            elapsed = self._clock() - self._opened_at
            if self._state == "open" and elapsed >= self._cooldown:
                self._state = "half-open"
            if self._state == "half-open" and not self._probing:
                self._probing = True
                return None
            return max(1, math.ceil(self._cooldown - elapsed))

    def record_success(self) -> None:
        """An evaluation completed: reset the count, close the circuit."""
        with self._lock:
            self._failures = 0
            self._state = "closed"
            self._probing = False

    def record_failure(self) -> None:
        """An evaluation failed: count it, opening at the threshold."""
        with self._lock:
            self._failures += 1
            if self._state == "half-open" or self._failures >= self._threshold:
                self._state = "open"
                self._opened_at = self._clock()
            self._probing = False

    def abort_probe(self) -> None:
        """A probe ended without a verdict (index outage mid-flight)."""
        with self._lock:
            self._probing = False

    def snapshot(self) -> Dict[str, object]:
        """The ``/healthz`` view of the breaker's state."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "threshold": self._threshold,
                "cooldown_seconds": self._cooldown,
            }


class _CacheWarmer:
    """Post-write cache warming: pre-evaluate edited workspaces.

    When a probe detects a workspace edit, the app notifies this
    warmer (``repro serve --warm-writes``); a single daemon thread
    replays the default ranking read for the edited workspace so the
    read-through miss — compile, evaluate, ``record_run`` — is paid
    *before* the next client request instead of by it.  Failures are
    swallowed (the foreground path re-raises them properly) and
    counted under ``repro_cache_warm_total{outcome}``.
    """

    def __init__(self, app: "ServiceApp") -> None:
        """Start the warming thread against ``app``."""
        self._app = app
        self._queue: "Queue" = Queue()
        self._cond = threading.Condition()
        self._pending = 0
        self._thread = threading.Thread(
            target=self._run, name="repro-cache-warmer", daemon=True
        )
        self._thread.start()

    def notify(self, registry_name: str, ws_id: str) -> None:
        """Enqueue one edited workspace for background evaluation."""
        with self._cond:
            self._pending += 1
        self._queue.put((registry_name, ws_id))

    def drain(self, timeout: float = 10.0) -> bool:
        """Block until every queued warm finished; False on timeout."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(min(remaining, 0.05))
            return True

    def close(self) -> None:
        """Stop the warming thread (waits for in-flight work)."""
        self._queue.put(None)
        self._thread.join(timeout=5.0)

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            name, ws_id = item
            outcome = "ok"
            try:
                self._app._warm(name, ws_id)
            except Exception:
                outcome = "error"
            finally:
                _obs_metrics.registry().counter(
                    "repro_cache_warm_total",
                    "Background cache-warming runs, by outcome.",
                    labelnames=("outcome",),
                ).inc(outcome=outcome)
                with self._cond:
                    self._pending -= 1
                    self._cond.notify_all()


def _build_routes() -> List[Route]:
    """The service's route table (new v1 surface + legacy aliases)."""
    at_param = QueryParam(
        "at",
        description=(
            "Pin the read to a recorded content hash; answers 404 "
            "version_not_found when the index has no rows for it."
        ),
    )
    mc_params = (
        QueryParam(
            "simulations",
            kind="int",
            default=10_000,
            minimum=1,
            description="Monte Carlo sample count.",
        ),
        QueryParam(
            "method",
            choices=_MC_METHODS,
            default="intervals",
            description="Weight sampling scheme.",
        ),
        QueryParam(
            "seed",
            kind="int",
            default=MC_SEED,
            description="Deterministic sampling seed.",
        ),
        at_param,
    )
    verb_specs = [
        (
            "ranking",
            "_h_ranking",
            "Cached batch ranking row set (read-through).",
            (at_param,),
        ),
        (
            "montecarlo",
            "_h_montecarlo",
            "Ranking plus Monte Carlo stability statistics.",
            mc_params,
        ),
        (
            "dominance",
            "_h_dominance",
            "Strict-dominance screening matrix.",
            (),
        ),
        (
            "rankintervals",
            "_h_rankintervals",
            "Attainable-rank intervals.",
            (),
        ),
        (
            "group",
            "_h_group",
            "Group-decision result under the configured roster.",
            (),
        ),
    ]
    routes = [
        Route(
            "GET", "/healthz", "_h_healthz", "healthz",
            "Liveness and degradation report (always 200).",
            auth="public",
        ),
        Route(
            "GET", "/metrics", "_h_metrics", "metrics",
            "Request counters, cache stats and latency percentiles.",
            auth="public",
            params=(
                QueryParam(
                    "format",
                    default="json",
                    description="'json' (default) or 'prometheus'.",
                ),
            ),
        ),
        Route(
            "GET", "/v1/openapi.json", "_h_openapi", "openapi",
            "The OpenAPI 3.1 description generated from the route table.",
            auth="public",
        ),
        Route(
            "GET", "/v1/registries", "_h_registries", "list_registries",
            "List every mounted registry.",
        ),
        Route(
            "POST", "/v1/registries", "_h_mount", "mount_registry",
            "Mount another registry directory at runtime.",
            auth="admin",
        ),
        Route(
            "GET", "/v1/registries/{registry}", "_h_registry_info",
            "get_registry",
            "One registry's descriptor, index status and cache stats.",
            scope="registry",
        ),
        Route(
            "DELETE", "/v1/registries/{registry}", "_h_unmount",
            "unmount_registry",
            "Unmount one registry (the default registry refuses).",
            auth="admin", scope="registry",
        ),
        Route(
            "GET", "/v1/registries/{registry}/registry", "_h_registry",
            "registry",
            "Workspace listing with identity fingerprints.",
            scope="registry",
        ),
        Route(
            "GET",
            "/v1/registries/{registry}/workspaces/{id...}/versions",
            "_h_versions", "versions",
            "Content-hash lineage of one workspace, with tags.",
            scope="registry",
        ),
        Route(
            "POST",
            "/v1/registries/{registry}/workspaces/{id...}/versions",
            "_h_tag_version", "tag_version",
            "Tag one recorded content-hash version.",
            auth="admin", scope="registry",
        ),
        Route(
            "POST", "/v1/registries/{registry}/evaluate", "_h_evaluate",
            "evaluate",
            "Evaluate an ad-hoc workspace document (nothing persists).",
            scope="registry",
        ),
    ]
    for verb, handler, summary, params in verb_specs:
        routes.append(
            Route(
                "GET",
                f"/v1/registries/{{registry}}/workspaces/{{id...}}/{verb}",
                handler, f"get_{verb}", summary,
                scope="registry", params=params,
            )
        )
    # Legacy single-registry aliases: same handlers, default registry,
    # Deprecation/Sunset headers — bodies stay byte-identical.
    routes.append(
        Route(
            "GET", "/v1/registry", "_h_registry", "registry_legacy",
            "Deprecated alias of /v1/registries/{default}/registry.",
            scope="default", deprecated=True,
        )
    )
    for verb, handler, summary, params in verb_specs:
        routes.append(
            Route(
                "GET", f"/v1/workspaces/{{id...}}/{verb}",
                handler, f"get_{verb}_legacy",
                f"Deprecated alias: {summary}",
                scope="default", deprecated=True, params=params,
            )
        )
    routes.append(
        Route(
            "POST", "/v1/evaluate", "_h_evaluate", "evaluate_legacy",
            "Deprecated alias of /v1/registries/{default}/evaluate.",
            scope="default", deprecated=True,
        )
    )
    return routes


#: The declarative route table — dispatch, coercion, metrics labels
#: and the OpenAPI document are all generated from this one list.
ROUTES: Tuple[Route, ...] = tuple(_build_routes())


class ServiceApp:
    """The federated registry query service's request handler (no socket).

    Mounts one or more registry directories into a
    :class:`~repro.service.federation.Federation` — each with its own
    :class:`~repro.core.index.RegistryIndex` (shared across request
    threads; per-thread sqlite connections), response LRU, stale cache
    and circuit breaker.  All evaluation writes for one registry
    funnel through its write lock so each index keeps its
    single-writer discipline.

    Parameters
    ----------
    registry_dir : str or Path
        Directory of workspace ``*.json`` files to serve as the
        *default* registry (the one legacy routes alias).
    index_path : str or Path, optional
        Default registry's index database
        (default ``<registry>/.repro-index.sqlite``).
    cache_size : int, optional
        Per-registry response-LRU capacity (entries, not bytes).
    members_path : str or Path, optional
        A ``repro-members/1`` roster document; configures the
        ``.../workspaces/{id}/group`` endpoint (404 without it).
        Validated at boot, so a malformed roster fails startup, not a
        request.
    mounts : mapping, optional
        Extra registries to mount at boot: name → directory.
    auth_token : str, optional
        Static bearer token; when set, every non-public route
        requires ``Authorization: Bearer <token>``.
    warm_writes : bool, optional
        Start the post-write cache warmer (background pre-evaluation
        of edited workspaces).
    default_name : str, optional
        The default registry's mount name.
    """

    _router = Router(ROUTES)

    def __init__(
        self,
        registry_dir: Union[str, Path],
        index_path: Optional[Union[str, Path]] = None,
        cache_size: int = 1024,
        members_path: Optional[Union[str, Path]] = None,
        mounts: Optional[Mapping[str, Union[str, Path]]] = None,
        auth_token: Optional[str] = None,
        warm_writes: bool = False,
        default_name: str = DEFAULT_REGISTRY_NAME,
    ) -> None:
        """Mount the registries and build empty per-registry caches."""
        self.members_path = (
            Path(members_path) if members_path is not None else None
        )
        self.members_spec = (
            load_members(self.members_path)
            if self.members_path is not None
            else None
        )
        self.members_digest = (
            members_digest(self.members_spec)
            if self.members_spec is not None
            else None
        )
        self.auth_token = auth_token
        self.federation = Federation(_CircuitBreaker, cache_size)
        default_state = self.federation.mount(
            default_name, registry_dir, index_path=index_path, default=True
        )
        for name in sorted(mounts or {}):
            self.federation.mount(name, (mounts or {})[name])
        # Single-registry compatibility surface (tests, server banner).
        self.registry_dir = default_state.root
        self.index_path = default_state.index_path
        self.metrics = _Metrics()
        self._warmer: Optional[_CacheWarmer] = (
            _CacheWarmer(self) if warm_writes else None
        )

    # -- single-registry compatibility properties -----------------------

    @property
    def index(self) -> RegistryIndex:
        """The default registry's index (legacy single-registry view)."""
        return self.federation.default.index

    @index.setter
    def index(self, value: RegistryIndex) -> None:
        """Swap the default registry's index (tests inject failures)."""
        self.federation.default.index = value

    @property
    def cache(self):
        """The default registry's response LRU."""
        return self.federation.default.cache

    @cache.setter
    def cache(self, value) -> None:
        """Swap the default registry's response LRU."""
        self.federation.default.cache = value

    @property
    def breaker(self) -> _CircuitBreaker:
        """The default registry's evaluation circuit breaker."""
        return self.federation.default.breaker

    @breaker.setter
    def breaker(self, value: _CircuitBreaker) -> None:
        """Swap the default registry's breaker (tests inject clocks)."""
        self.federation.default.breaker = value

    @property
    def _stale(self):
        """The default registry's stale (last known-good) cache."""
        return self.federation.default.stale

    @property
    def _write_lock(self) -> threading.Lock:
        """The default registry's single-writer lock."""
        return self.federation.default.write_lock

    def close(self) -> None:
        """Stop the warmer and release every index's connections."""
        if self._warmer is not None:
            self._warmer.close()
        self.federation.close()

    def __enter__(self) -> "ServiceApp":
        """Enter a ``with`` block; returns the app."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the app on ``with`` block exit."""
        self.close()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def handle(
        self,
        method: str,
        target: str,
        headers: Optional[Mapping[str, str]] = None,
        body: bytes = b"",
    ) -> Response:
        """Route one request; never raises (errors become JSON envelopes).

        The pipeline: route-table match (404/405) → bearer auth
        (401/403) → query coercion (400) → handler → deprecation
        headers for legacy aliases → gzip negotiation.  Request
        correlation: an incoming ``X-Request-Id`` header is propagated
        into the request's span and echoed on the response; absent
        one, a fresh id is generated so every response (and its
        access-log line) is correlatable anyway.
        """
        headers = {k.lower(): v for k, v in (headers or {}).items()}
        request_id = headers.get("x-request-id") or os.urandom(8).hex()
        split = urlsplit(target)
        path = unquote(split.path)
        query = parse_qs(split.query, keep_blank_values=True)
        endpoint, registry_label = path, ""
        started = time.perf_counter()
        with _span(
            "http.request",
            method=method,
            path=path,
            request_id=request_id,
        ):
            try:
                route, path_params = self._router.match(method, path)
                endpoint = route.label
                if route.scope == "registry":
                    registry_label = path_params.get("registry", "")
                elif route.scope == "default":
                    registry_label = self.federation.default_name or ""
                self._authorize(route, headers)
                params = coerce_query(route, query)
                request = Request(
                    method=method,
                    path=path,
                    route=route,
                    path_params=path_params,
                    params=params,
                    query=query,
                    headers=headers,
                    body=body,
                )
                response = getattr(self, route.handler)(request)
                if route.deprecated:
                    merged = dict(_DEPRECATION_HEADERS)
                    merged.update(response.headers)
                    response = replace(response, headers=merged)
            except ServiceError as exc:
                response = Response(
                    exc.status, _dumps(exc.envelope()), headers=exc.headers
                )
            except Exception as exc:  # pragma: no cover - defensive backstop
                response = Response(
                    500,
                    _dumps(
                        ServiceError(
                            500, f"{type(exc).__name__}: {exc}"
                        ).envelope()
                    ),
                )
            response = self._negotiate_encoding(response, headers)
        elapsed = time.perf_counter() - started
        self.metrics.record(endpoint, response.status, elapsed)
        self._record_obs(endpoint, registry_label, response.status, elapsed)
        merged = dict(response.headers)
        merged.setdefault("X-Request-Id", request_id)
        return replace(response, headers=merged)

    def _authorize(self, route: Route, headers: Mapping[str, str]) -> None:
        """Bearer-token gate: 401 without credentials, 403 on mismatch.

        A no-op when the service runs without ``--auth-token`` or the
        route is public (``/healthz``, ``/metrics``, the spec).
        """
        if self.auth_token is None or route.auth == "public":
            return
        value = headers.get("authorization", "")
        if not value.startswith("Bearer "):
            raise ServiceError(
                401,
                "missing bearer token",
                headers={"WWW-Authenticate": "Bearer"},
                code="unauthorized",
            )
        token = value[len("Bearer "):].strip()
        if not hmac.compare_digest(token, self.auth_token):
            raise ServiceError(403, "invalid bearer token", code="forbidden")

    @staticmethod
    def _negotiate_encoding(
        response: Response, headers: Mapping[str, str]
    ) -> Response:
        """Gzip the body when the client accepts it and it pays off.

        ETag-safe: the validator names the response's *content*
        identity and the ``If-None-Match`` check runs before any body
        is built, so 304 revalidation is identical for gzip and
        identity clients.  Compression is deterministic
        (:func:`~repro.service.cache.gzip_bytes` pins ``mtime=0``).
        """
        if response.status == 304 or not response.body:
            return response
        if len(response.body) < _GZIP_MIN_BYTES:
            return response
        if "Content-Encoding" in response.headers:
            return response
        if not accepts_gzip(headers.get("accept-encoding")):
            return response
        compressed = gzip_bytes(response.body)
        if len(compressed) >= len(response.body):
            return response
        merged = dict(response.headers)
        merged["Content-Encoding"] = "gzip"
        merged["Vary"] = "Accept-Encoding"
        return replace(response, body=compressed, headers=merged)

    @staticmethod
    def _record_obs(
        endpoint: str, registry: str, status: int, seconds: float
    ) -> None:
        """Mirror one served request into the process-wide obs metrics."""
        reg = _obs_metrics.registry()
        reg.counter(
            "repro_http_requests_total",
            "HTTP requests served, by endpoint label, registry and status.",
            labelnames=("endpoint", "registry", "status"),
        ).inc(endpoint=endpoint, registry=registry, status=str(status))
        reg.histogram(
            "repro_http_request_seconds",
            "End-to-end request handling latency in seconds.",
        ).observe(seconds)

    def _state_for(self, request: Request) -> RegistryState:
        """The registry state a request addresses (404 when unmounted)."""
        if request.route.scope == "registry":
            name = request.path_params["registry"]
            state = self.federation.get(name)
            if state is None:
                raise ServiceError(
                    404,
                    f"unknown registry {name!r}",
                    code="registry_not_found",
                )
            return state
        return self.federation.default

    # ------------------------------------------------------------------
    # Service-scoped endpoints
    # ------------------------------------------------------------------

    def _h_healthz(self, request: Request) -> Response:
        """Liveness plus degradation report — always HTTP 200.

        ``status`` is ``"ok"`` when every registry's index answers a
        ping and every circuit breaker is closed, ``"degraded"``
        otherwise; ``registries`` carries the per-registry blocks.
        Monitors read the payload, not the status code: a degraded
        service is still *serving* (stale reads keep working), so
        load balancers must not eject it.
        """
        registries: Dict[str, Dict[str, object]] = {}
        for state in self.federation.states():
            index_error: Optional[str] = None
            try:
                state.index.ping()
            except sqlite3.Error as exc:
                index_error = f"{type(exc).__name__}: {exc}"
            breaker = state.breaker.snapshot()
            degraded = index_error is not None or breaker["state"] != "closed"
            registries[state.name] = {
                "status": "degraded" if degraded else "ok",
                "registry": str(state.root),
                "index_db": str(state.index_path),
                "index_available": index_error is None,
                "index_error": index_error,
                "circuit_breaker": breaker,
            }
        default_name = self.federation.default.name
        payload = dict(registries[default_name])
        payload["status"] = (
            "degraded"
            if any(r["status"] == "degraded" for r in registries.values())
            else "ok"
        )
        payload["members"] = (
            str(self.members_path) if self.members_path is not None else None
        )
        payload["default_registry"] = default_name
        payload["registries"] = registries
        return Response(200, _dumps(payload))

    def _h_metrics(self, request: Request) -> Response:
        """The metrics scrape: JSON by default, ``?format=prometheus``.

        The JSON snapshot keeps its PR-4 shape (existing dashboards
        keep working) plus per-registry cache stats; the Prometheus
        branch renders the process-wide :mod:`repro.obs.metrics`
        registry — request counts, response cache hits/misses,
        per-stage eval seconds — plus one breaker state gauge per
        registry, in text exposition format 0.0.4.
        """
        fmt = request.params["format"]
        if fmt == "prometheus":
            return Response(
                200,
                self._prometheus_text().encode("utf-8"),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        if fmt != "json":
            raise ServiceError(
                400,
                f"unknown metrics format {fmt!r} "
                "(expected 'json' or 'prometheus')",
            )
        payload = self.metrics.snapshot()
        payload["cache"] = self.cache.stats()
        payload["registries"] = {
            state.name: {"cache": state.cache.stats()}
            for state in self.federation.states()
        }
        return Response(200, _dumps(payload))

    #: Breaker states as gauge values (closed is healthy).
    _BREAKER_STATES = {"closed": 0, "half-open": 1, "open": 2}

    def _prometheus_text(self) -> str:
        """The exposition body: obs registry + scrape-time gauges."""
        reg = _obs_metrics.registry()
        gauge = reg.gauge(
            "repro_breaker_state",
            "Per-registry evaluation circuit breaker: "
            "0 closed, 1 half-open, 2 open.",
            labelnames=("registry",),
        )
        for state in self.federation.states():
            gauge.set(
                self._BREAKER_STATES.get(state.breaker.state, -1),
                registry=state.name,
            )
        return render_prometheus(reg)

    def _h_openapi(self, request: Request) -> Response:
        """The generated OpenAPI 3.1 document for the route table."""
        return Response(200, _dumps(build_openapi(self._router.routes)))

    # ------------------------------------------------------------------
    # Registry CRUD
    # ------------------------------------------------------------------

    def _h_registries(self, request: Request) -> Response:
        """List every mounted registry (name, root, index, default)."""
        default_name = self.federation.default_name
        entries = [
            {
                "name": state.name,
                "root": str(state.root),
                "index_db": str(state.index_path),
                "default": state.name == default_name,
            }
            for state in self.federation.states()
        ]
        return Response(
            200,
            _dumps(
                {
                    "default": default_name,
                    "n_registries": len(entries),
                    "registries": entries,
                }
            ),
        )

    def _h_mount(self, request: Request) -> Response:
        """Mount another registry at runtime (POST /v1/registries)."""
        doc = self._json_body(request.body)
        unknown = sorted(set(doc) - {"name", "root", "index"})
        if unknown:
            raise ServiceError(400, f"unknown field(s): {', '.join(unknown)}")
        name, root = doc.get("name"), doc.get("root")
        if not isinstance(name, str) or not isinstance(root, str):
            raise ServiceError(400, "'name' and 'root' must be strings")
        index = doc.get("index")
        if index is not None and not isinstance(index, str):
            raise ServiceError(400, "'index' must be a string path")
        try:
            state = self.federation.mount(name, root, index_path=index)
        except ValueError as exc:
            if "already mounted" in str(exc):
                raise ServiceError(409, str(exc), code="conflict") from exc
            raise ServiceError(400, str(exc)) from exc
        return Response(
            201,
            _dumps(
                {
                    "name": state.name,
                    "root": str(state.root),
                    "index_db": str(state.index_path),
                    "default": state.name == self.federation.default_name,
                }
            ),
        )

    def _h_registry_info(self, request: Request) -> Response:
        """One registry's descriptor, index status and cache stats."""
        state = self._state_for(request)
        index_status: Optional[Dict[str, object]] = None
        index_error: Optional[str] = None
        try:
            index_status = state.index.status()
        except sqlite3.Error as exc:
            index_error = f"{type(exc).__name__}: {exc}"
        return Response(
            200,
            _dumps(
                {
                    "name": state.name,
                    "root": str(state.root),
                    "index_db": str(state.index_path),
                    "default": state.name == self.federation.default_name,
                    "index": index_status,
                    "index_error": index_error,
                    "cache": state.cache.stats(),
                }
            ),
        )

    def _h_unmount(self, request: Request) -> Response:
        """Unmount one registry (DELETE; the default refuses with 409)."""
        name = request.path_params["registry"]
        try:
            self.federation.unmount(name)
        except KeyError:
            raise ServiceError(
                404, f"unknown registry {name!r}", code="registry_not_found"
            ) from None
        except ValueError as exc:
            raise ServiceError(409, str(exc), code="conflict") from exc
        return Response(200, _dumps({"unmounted": name}))

    # ------------------------------------------------------------------
    # Registry listing
    # ------------------------------------------------------------------

    @staticmethod
    def _registry_paths(state: RegistryState) -> List[Path]:
        return sorted(
            p
            for p in state.root.rglob("*.json")
            if p.resolve() != state.index_path.resolve()
        )

    def _h_registry(self, request: Request) -> Response:
        """The workspace listing with identity fingerprints."""
        state = self._state_for(request)
        workspaces = []
        fresh_records = []
        for path in self._registry_paths(state):
            ws_id = path.relative_to(state.root).with_suffix("").as_posix()
            record, status = state.index.probe_with_status(path)
            if record is None:
                workspaces.append({"id": ws_id, "error": "unreadable"})
                continue
            if status != "fresh":
                if status == "changed":
                    old = state.index.lookup_workspace(path)
                    if (
                        old is not None
                        and old.content_hash != record.content_hash
                    ):
                        state.cache.invalidate(old.content_hash)
                        self._notify_warm(state.name, ws_id)
                fresh_records.append(record)
            workspaces.append(
                {
                    "id": ws_id,
                    "content_hash": record.content_hash,
                    "source_sha": record.source_sha,
                    "size": record.size,
                    "mtime_ns": record.mtime_ns,
                    "n_alternatives": record.n_alternatives,
                    "n_attributes": record.n_attributes,
                }
            )
        if fresh_records:
            # persist the fingerprints so the next listing (and every
            # ranking probe) takes the stat fast path instead of
            # re-hashing unchanged files
            with state.write_lock:
                state.index.record_probes(fresh_records)
        payload = {
            "name": state.name,
            "registry": str(state.root),
            "index": state.index.status(),
            "n_workspaces": len(workspaces),
            "workspaces": workspaces,
        }
        return Response(200, _dumps(payload))

    # ------------------------------------------------------------------
    # Workspace endpoints
    # ------------------------------------------------------------------

    def _h_ranking(self, request: Request) -> Response:
        """GET .../workspaces/{id}/ranking."""
        return self._workspace_get(request, "ranking")

    def _h_montecarlo(self, request: Request) -> Response:
        """GET .../workspaces/{id}/montecarlo."""
        return self._workspace_get(request, "montecarlo")

    def _h_dominance(self, request: Request) -> Response:
        """GET .../workspaces/{id}/dominance."""
        return self._workspace_get(request, "dominance")

    def _h_rankintervals(self, request: Request) -> Response:
        """GET .../workspaces/{id}/rankintervals."""
        return self._workspace_get(request, "rankintervals")

    def _h_group(self, request: Request) -> Response:
        """GET .../workspaces/{id}/group."""
        return self._workspace_get(request, "group")

    def _workspace_get(self, request: Request, verb: str) -> Response:
        """The shared workspace GET: resolve, serve, degrade on outage."""
        state = self._state_for(request)
        ws_id = request.path_params["id"]
        path = self._resolve(state, ws_id)
        try:
            at = request.params.get("at")
            if at is not None and verb in ("ranking", "montecarlo"):
                options = (
                    BatchOptions()
                    if verb == "ranking"
                    else self._mc_options(request.params)
                )
                return self._serve_pinned(
                    state, ws_id, verb, str(at), options, request.headers
                )
            if verb == "ranking":
                return self._serve_results(
                    state, ws_id, path, BatchOptions(), request.headers
                )
            if verb == "montecarlo":
                return self._serve_results(
                    state,
                    ws_id,
                    path,
                    self._mc_options(request.params),
                    request.headers,
                )
            if verb == "group":
                return self._serve_group(state, ws_id, path, request.headers)
            return self._serve_screening(
                state, verb, ws_id, path, request.headers
            )
        except sqlite3.Error as exc:
            state.breaker.abort_probe()
            return self._serve_stale(state, verb, ws_id, exc)

    @staticmethod
    def _resolve(state: RegistryState, ws_id: str) -> Path:
        """The registry file behind a workspace id (404 when absent)."""
        segments = ws_id.split("/")
        if not ws_id or any(s in ("", ".", "..") for s in segments):
            raise ServiceError(400, f"invalid workspace id {ws_id!r}")
        path = state.root / (ws_id + ".json")
        if not path.is_file():
            raise ServiceError(404, f"unknown workspace {ws_id!r}")
        return path

    def _probe(self, state: RegistryState, ws_id: str, path: Path):
        """Probe one workspace, absorbing any edit incrementally.

        When the probe reports the file changed, the responses rendered
        from its *previous* content hash are evicted from the
        registry's LRU
        (:meth:`~repro.service.cache.ResponseCache.invalidate`) —
        targeted invalidation instead of waiting for cold misses to age
        them out — the cache warmer (when enabled) is notified, and the
        fresh fingerprint is persisted so every later probe takes the
        stat fast path.
        """
        record, status = state.index.probe_with_status(path)
        if record is None:
            raise ServiceError(
                409,
                f"workspace {ws_id!r} exists but cannot be parsed",
                code="workspace_invalid",
            )
        if status != "fresh":
            if status == "changed":
                old = state.index.lookup_workspace(path)
                if old is not None and old.content_hash != record.content_hash:
                    state.cache.invalidate(old.content_hash)
                    self._notify_warm(state.name, ws_id)
            with state.write_lock:
                state.index.record_probes([record])
        return record

    def _notify_warm(self, registry_name: str, ws_id: str) -> None:
        """Queue a background pre-evaluation when warming is enabled."""
        if self._warmer is not None:
            self._warmer.notify(registry_name, ws_id)

    def _warm(self, registry_name: str, ws_id: str) -> None:
        """One background warm: replay the default ranking read."""
        state = self.federation.get(registry_name)
        if state is None:
            return
        path = state.root / (ws_id + ".json")
        if not path.is_file():
            return
        self._serve_results(state, ws_id, path, BatchOptions(), {})

    @staticmethod
    def _mc_options(params: Mapping[str, object]) -> BatchOptions:
        """Monte Carlo options from the route's coerced parameters."""
        return BatchOptions(
            simulations=int(params["simulations"]),  # type: ignore[arg-type]
            method=str(params["method"]),
            seed=int(params["seed"]),  # type: ignore[arg-type]
        )

    def _serve_stale(
        self,
        state: RegistryState,
        verb: str,
        ws_id: str,
        exc: sqlite3.Error,
    ) -> Response:
        """Degraded read: the last known-good body for this endpoint.

        Reached when the registry index raises ``sqlite3.Error`` while
        serving a workspace GET.  If this endpoint answered before, the
        stored body is replayed with ``X-Cache: stale`` and the RFC
        7234 ``Warning: 110`` header so clients know it may be out of
        date; otherwise the outage surfaces as 503 + ``Retry-After``.
        """
        stale = state.stale.get((verb, ws_id))
        if stale is None:
            raise ServiceError(
                503,
                f"registry index unavailable "
                f"({type(exc).__name__}: {exc}) and no cached response "
                f"for {ws_id!r}",
                headers={"Retry-After": "5"},
                code="index_unavailable",
            ) from exc
        return Response(
            200,
            stale.body,
            headers={
                "ETag": stale.etag,
                "X-Cache": "stale",
                "Warning": '110 - "Response is Stale"',
            },
        )

    def _finish(
        self,
        state: RegistryState,
        key: Tuple,
        etag: str,
        headers: Mapping[str, str],
        build,
        stale_key: Optional[Tuple[str, str]] = None,
    ) -> Response:
        """The shared validator → LRU → build tail of every GET.

        ``build()`` runs only when both the client validator and the
        registry's response LRU miss; its body is cached under ``key``
        for the next request with the same semantic identity.  Every
        200 body is also stored under ``stale_key`` — the per-endpoint
        last known-good answer replayed by :meth:`_serve_stale` when
        the index goes down.
        """
        if if_none_match_matches(headers.get("if-none-match"), etag):
            return Response(304, b"", headers={"ETag": etag})
        cached = state.cache.get(key)
        if cached is None:
            cached = CachedResponse(body=build(), etag=etag)
            state.cache.put(key, cached)
            x_cache = "miss"
        else:
            x_cache = "hit"
        name = (
            "repro_response_cache_hits_total"
            if x_cache == "hit"
            else "repro_response_cache_misses_total"
        )
        _obs_metrics.registry().counter(
            name,
            "Response LRU lookups, split by outcome "
            "(hits serve the stored body; misses rebuild it).",
        ).inc()
        if stale_key is not None:
            state.stale.put(stale_key, cached)
        return Response(
            200, cached.body, headers={"ETag": etag, "X-Cache": x_cache}
        )

    # -- ranking / montecarlo: the index read-through -------------------

    def _serve_results(
        self,
        state: RegistryState,
        ws_id: str,
        path: Path,
        options: BatchOptions,
        headers: Mapping[str, str],
    ) -> Response:
        record = self._probe(state, ws_id, path)
        config_hash = eval_config_hash(options)
        verb = "montecarlo" if options.simulations else "ranking"
        etag = make_etag(verb, record.content_hash, config_hash)
        key = (verb, record.content_hash, config_hash)

        def build() -> bytes:
            rows = state.index.lookup_results(record.content_hash, config_hash)
            if rows is None:
                rows = self._evaluate_through(
                    state, ws_id, path, options, config_hash
                )
            return _dumps(
                self._results_payload(ws_id, record.content_hash, options, rows)
            )

        return self._finish(
            state, key, etag, headers, build, stale_key=(verb, ws_id)
        )

    def _serve_pinned(
        self,
        state: RegistryState,
        ws_id: str,
        verb: str,
        at: str,
        options: BatchOptions,
        headers: Mapping[str, str],
    ) -> Response:
        """A version-pinned read: recorded results for ``?at=<hash>``.

        Pinned reads never evaluate — the index either has rows for
        ``(at, config_hash)`` (because a batch run or a live read
        recorded them before the workspace moved on) or the request is
        a 404 ``version_not_found``.  The live current-content read
        and the pinned read of the same hash share one cache entry.
        """
        if not _HEX_HASH.match(at):
            raise ServiceError(
                400, f"invalid content hash {at!r} for 'at'"
            )
        config_hash = eval_config_hash(options)
        etag = make_etag(verb, at, config_hash)
        key = (verb, at, config_hash)

        def build() -> bytes:
            rows = state.index.lookup_results(at, config_hash)
            if rows is None:
                raise ServiceError(
                    404,
                    f"no recorded results for content hash {at!r}",
                    code="version_not_found",
                    detail={"content_hash": at},
                )
            return _dumps(self._results_payload(ws_id, at, options, rows))

        return self._finish(state, key, etag, headers, build)

    def _evaluate_through(
        self,
        state: RegistryState,
        ws_id: str,
        path: Path,
        options: BatchOptions,
        config_hash: str,
    ):
        """The read-through miss: evaluate and commit via the index.

        Serialised on the registry's write lock so concurrent misses
        for the same workspace evaluate once and the index keeps
        exactly one writer at a time.  The runner probes, evaluates,
        and persists through :meth:`RegistryIndex.record_run` — the
        same single-writer path ``repro batch`` uses — so the
        committed rows are the ones a batch run would cache.

        Guarded by the registry's :class:`_CircuitBreaker`: while the
        circuit is open this raises 503 + ``Retry-After`` immediately,
        and any unexpected evaluation failure counts toward opening it.
        ``sqlite3.Error`` passes through untouched (the index outage
        path serves stale instead); a 409 for unevaluable *content* is
        a machinery success — it must not trip the breaker.
        """
        retry_after = state.breaker.acquire()
        if retry_after is not None:
            raise ServiceError(
                503,
                "evaluation circuit open after repeated failures; "
                f"retry in {retry_after}s",
                headers={"Retry-After": str(retry_after)},
                code="circuit_open",
            )
        try:
            with state.write_lock:
                probed = state.index.probe(path)
                if probed is not None:
                    rows = state.index.lookup_results(
                        probed.content_hash, config_hash
                    )
                    if rows is not None:
                        state.breaker.record_success()
                        return rows
                report = ShardedRunner(workers=1, options=options).run(
                    [str(path)], index=state.index
                )
        except sqlite3.Error:
            state.breaker.abort_probe()
            raise
        except ServiceError:
            raise
        except Exception as exc:
            state.breaker.record_failure()
            raise ServiceError(
                503,
                f"evaluation failed: {type(exc).__name__}: {exc}",
                headers={"Retry-After": "1"},
                code="evaluation_failed",
            ) from exc
        state.breaker.record_success()
        if report.skipped or not report.results:
            detail = report.skipped[0].error if report.skipped else "empty"
            raise ServiceError(
                409,
                f"workspace {ws_id!r} cannot be evaluated: {detail}",
                code="workspace_invalid",
            )
        return report.results

    @staticmethod
    def _results_payload(
        ws_id: str, content_hash: str, options: BatchOptions, rows
    ) -> Dict[str, object]:
        """One ranking/montecarlo body, identical for cached and fresh rows.

        ``rows`` are :class:`~repro.core.index.CachedResult` (index hit)
        or :class:`~repro.core.runtime.WorkspaceResult` (fresh) — the
        shared field names carry bit-identical binary64 floats either
        way, so the rendered bytes never depend on the cache state.
        """
        simulations = int(options.simulations)
        results = []
        for row in rows:
            entry: Dict[str, object] = {
                "sub_index": row.sub_index,
                "name": row.name,
                "n_alternatives": row.n_alternatives,
                "n_attributes": row.n_attributes,
                "best": {
                    "name": row.best_name,
                    "minimum": row.best_minimum,
                    "average": row.best_average,
                    "maximum": row.best_maximum,
                },
            }
            if simulations:
                entry["ever_best"] = row.ever_best
                entry["top5_fluctuation"] = row.top5_fluctuation
            results.append(entry)
        return {
            "workspace": ws_id,
            "content_hash": content_hash,
            "config": {
                "objectives": False,
                "simulations": simulations,
                "method": options.method if simulations else None,
                "seed": options.seed if simulations else None,
            },
            "results": results,
        }

    # -- group: the members-axis read-through ---------------------------

    def _serve_group(
        self,
        state: RegistryState,
        ws_id: str,
        path: Path,
        headers: Mapping[str, str],
    ) -> Response:
        """The group-decision result under the configured roster.

        Same read-through contract as ranking: the cache key (and the
        ETag) is the workspace content hash × the evaluation
        configuration hash, which for group runs folds in the member
        roster digest — so editing the roster file and restarting the
        server serves fresh results while every other cache row stays
        valid.  On a miss the workspace evaluates through the stacked
        members axis via :class:`~repro.core.runtime.ShardedRunner` and
        the rows commit back through the index, byte-identical to what
        ``repro group`` caches.
        """
        if self.members_spec is None:
            raise ServiceError(
                404,
                "no member roster configured; start the service with "
                "a members file (repro serve --members FILE)",
            )
        record = self._probe(state, ws_id, path)
        options = BatchOptions(group=self.members_spec)
        config_hash = eval_config_hash(options)
        etag = make_etag("group", record.content_hash, config_hash)
        key = ("group", record.content_hash, config_hash)

        def build() -> bytes:
            rows = state.index.lookup_results(record.content_hash, config_hash)
            if rows is None:
                rows = self._evaluate_through(
                    state, ws_id, path, options, config_hash
                )
            group_json = rows[0].group_json
            if group_json is None:  # pragma: no cover - defensive
                raise ServiceError(
                    409,
                    f"workspace {ws_id!r} has no group result",
                    code="workspace_invalid",
                )
            return _dumps(
                {
                    "workspace": ws_id,
                    "content_hash": record.content_hash,
                    "members_digest": self.members_digest,
                    "group": json.loads(group_json),
                }
            )

        return self._finish(
            state, key, etag, headers, build, stale_key=("group", ws_id)
        )

    # -- dominance / rank intervals: engine-backed, LRU-cached ----------

    def _serve_screening(
        self,
        state: RegistryState,
        verb: str,
        ws_id: str,
        path: Path,
        headers: Mapping[str, str],
    ) -> Response:
        record = self._probe(state, ws_id, path)
        etag = make_etag(verb, record.content_hash)
        key = (verb, record.content_hash)

        def build() -> bytes:
            try:
                compiled = _workspace.load_compiled_fast(str(path))
            except _LOAD_ERRORS as exc:
                raise ServiceError(
                    409,
                    f"workspace {ws_id!r} cannot be compiled: "
                    f"{type(exc).__name__}: {exc}",
                    code="workspace_invalid",
                ) from exc
            evaluator = BatchEvaluator(compiled)
            names = list(evaluator.alternative_names)
            if verb == "dominance":
                matrix = evaluator.dominance_matrix()
                dominated = matrix.any(axis=0)
                payload = {
                    "workspace": ws_id,
                    "content_hash": record.content_hash,
                    "alternatives": names,
                    "matrix": [[bool(x) for x in row] for row in matrix],
                    "non_dominated": [
                        name
                        for name, hit in zip(names, dominated)
                        if not hit
                    ],
                }
            else:
                intervals = evaluator.rank_intervals()
                payload = {
                    "workspace": ws_id,
                    "content_hash": record.content_hash,
                    "intervals": [
                        {
                            "name": name,
                            "best": intervals[name].best,
                            "worst": intervals[name].worst,
                        }
                        for name in names
                    ],
                }
            return _dumps(payload)

        return self._finish(
            state, key, etag, headers, build, stale_key=(verb, ws_id)
        )

    # ------------------------------------------------------------------
    # Versions
    # ------------------------------------------------------------------

    def _h_versions(self, request: Request) -> Response:
        """Content-hash lineage: every recorded version of a workspace."""
        state = self._state_for(request)
        ws_id = request.path_params["id"]
        path = self._resolve(state, ws_id)
        try:
            record = self._probe(state, ws_id, path)
            history = state.index.version_history(path)
        except sqlite3.Error as exc:
            raise ServiceError(
                503,
                f"registry index unavailable "
                f"({type(exc).__name__}: {exc})",
                headers={"Retry-After": "5"},
                code="index_unavailable",
            ) from exc
        return Response(
            200,
            _dumps(
                {
                    "workspace": ws_id,
                    "registry": state.name,
                    "content_hash": record.content_hash,
                    "versions": history,
                }
            ),
        )

    def _h_tag_version(self, request: Request) -> Response:
        """Tag one recorded version (``{"content_hash", "tag"}``)."""
        state = self._state_for(request)
        ws_id = request.path_params["id"]
        doc = self._json_body(request.body)
        unknown = sorted(set(doc) - {"content_hash", "tag"})
        if unknown:
            raise ServiceError(400, f"unknown field(s): {', '.join(unknown)}")
        content_hash, tag = doc.get("content_hash"), doc.get("tag")
        if not isinstance(content_hash, str) or not _HEX_HASH.match(
            content_hash
        ):
            raise ServiceError(400, "'content_hash' must be a hex digest")
        if not isinstance(tag, str) or not tag:
            raise ServiceError(400, "'tag' must be a non-empty string")
        path = self._resolve(state, ws_id)
        try:
            self._probe(state, ws_id, path)
            tagged = state.index.tag_version(path, content_hash, tag)
        except sqlite3.Error as exc:
            raise ServiceError(
                503,
                f"registry index unavailable "
                f"({type(exc).__name__}: {exc})",
                headers={"Retry-After": "5"},
                code="index_unavailable",
            ) from exc
        if not tagged:
            raise ServiceError(
                404,
                f"no recorded version {content_hash!r} for "
                f"workspace {ws_id!r}",
                code="version_not_found",
                detail={"content_hash": content_hash},
            )
        return Response(
            200,
            _dumps(
                {
                    "workspace": ws_id,
                    "registry": state.name,
                    "content_hash": content_hash,
                    "tag": tag,
                }
            ),
        )

    # ------------------------------------------------------------------
    # POST .../evaluate
    # ------------------------------------------------------------------

    @staticmethod
    def _json_body(body: bytes) -> Dict[str, object]:
        """Parse a request body as a JSON object (400 otherwise)."""
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                400, f"request body is not JSON: {exc}"
            ) from exc
        if not isinstance(doc, dict):
            raise ServiceError(400, "request body must be a JSON object")
        return doc

    def _h_evaluate(self, request: Request) -> Response:
        """Ad-hoc evaluation of a posted workspace document.

        Accepts either the raw ``repro-workspace/1`` document or an
        envelope ``{"workspace": <document>, "simulations": N,
        "method": ..., "seed": ...}``.  Nothing touches the registry or
        the index — the problem never has a path, so there is nothing
        to fingerprint (the ``{registry}`` path segment only has to
        name a mounted registry).
        """
        self._state_for(request)  # 404 for unknown registries
        doc = self._json_body(request.body)
        simulations, method, seed = 0, "intervals", MC_SEED
        if "format" not in doc and "workspace" in doc:
            envelope, doc = doc, doc["workspace"]
            unknown = sorted(
                set(envelope) - {"workspace", "simulations", "method", "seed"}
            )
            if unknown:
                raise ServiceError(
                    400, f"unknown field(s): {', '.join(unknown)}"
                )
            simulations = envelope.get("simulations", 0)
            method = envelope.get("method", "intervals")
            seed = envelope.get("seed", MC_SEED)
            if not isinstance(simulations, int) or simulations < 0:
                raise ServiceError(
                    400, "simulations must be a non-negative integer"
                )
            if method not in _MC_METHODS:
                raise ServiceError(
                    400, f"method must be one of {', '.join(_MC_METHODS)}"
                )
            if not isinstance(seed, int):
                raise ServiceError(400, "seed must be an integer")
        if not isinstance(doc, dict):
            raise ServiceError(400, "workspace must be a JSON object")
        try:
            problem = _workspace.from_dict(doc)
            compiled = compile_problem(problem)
        except _LOAD_ERRORS as exc:
            raise ServiceError(
                400,
                f"invalid workspace document: {type(exc).__name__}: {exc}",
            ) from exc
        evaluator = BatchEvaluator(compiled)
        evaluation = evaluator.evaluate()
        payload: Dict[str, object] = {
            "problem": compiled.name,
            "n_alternatives": evaluator.n_alternatives,
            "n_attributes": evaluator.n_attributes,
            "best": evaluation.best.name,
            "ranking": [
                {
                    "rank": row.rank,
                    "name": row.name,
                    "minimum": row.minimum,
                    "average": row.average,
                    "maximum": row.maximum,
                }
                for row in evaluation
            ],
        }
        if simulations:
            result = evaluator.simulate(
                method=method,
                n_simulations=simulations,
                seed=seed,
                sample_utilities="missing",
            )
            payload["montecarlo"] = {
                "simulations": simulations,
                "method": method,
                "seed": seed,
                "ever_best": list(result.ever_best()),
                "top5_fluctuation": int(
                    result.max_fluctuation(result.top_k_by_mean(5))
                ),
            }
        return Response(200, _dumps(payload))
