"""Weight-stability intervals (§V, Fig. 8).

GMAA "computes the stability weight interval for any objective at any
level in the hierarchy.  This represents the interval where the average
normalized weight for the considered objective can vary without
affecting the overall ranking of alternatives or just the best-ranked
alternative."

Mechanics: let objective ``n`` (a child of parent ``p``) currently hold
local average weight ``l`` among its siblings.  Sliding it to ``x``
rescales every sibling proportionally by ``(1 - x) / (1 - l)``; weights
outside ``p``'s subtree and above ``p`` are untouched.  Every
alternative's average overall utility is then *affine in x*, so the
stability interval is an intersection of half-lines obtained from
pairwise comparisons — computed exactly, no search.

In the case study, the interval is ``[0, 1]`` for practically every
objective ("Media Ontology is still the best-ranked candidate whatever
average normalized weights are assigned"), except for *number of
functional requirements covered* and *adequacy of naming conventions*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .interval import Interval
from .model import AdditiveModel
from .problem import DecisionProblem

__all__ = [
    "StabilityReport",
    "affine_coefficients",
    "batch_affine_coefficients",
    "stability_interval",
    "stability_report",
]

_TOL = 1e-9


def affine_coefficients(
    model: AdditiveModel, objective: str
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-alternative (constant, slope) of utility as the weight moves.

    Returns arrays ``(C, S)`` such that alternative ``i``'s average
    overall utility equals ``C[i] + x * S[i]`` when ``objective``'s
    average normalised weight is set to ``x`` and its siblings are
    rescaled proportionally.
    """
    problem = model.problem
    hierarchy = problem.hierarchy
    if objective == hierarchy.root.name:
        raise ValueError("the root objective has no weight to vary")
    hierarchy.node(objective)  # validates the objective name
    parent = hierarchy.parent_of(objective)
    assert parent is not None

    weights = problem.weights
    local_avg = weights.local_average(objective)
    attrs = list(model.attribute_names)
    w_avg = model.w_avg

    under_node = set(hierarchy.attributes_under(objective))
    under_parent = set(hierarchy.attributes_under(parent.name))
    sibling_attrs = under_parent - under_node

    if not sibling_attrs:
        # An only child: renormalisation forces its weight back to 1,
        # so utilities never move.
        constant = model.average_utilities()
        return constant, np.zeros_like(constant)

    parent_weight = weights.node_weight_average(parent.name)

    def inner_weight(attr: str) -> float:
        """Product of local averages strictly below ``objective``."""
        leaf = hierarchy.leaf_for_attribute(attr)
        path = hierarchy.path_to(leaf.name)
        node_pos = next(
            i for i, step in enumerate(path) if step.name == objective
        )
        product = 1.0
        for step in path[node_pos + 1:]:
            product *= weights.local_average(step.name)
        return product

    n_alt = model.n_alternatives
    constant = np.zeros(n_alt)
    slope = np.zeros(n_alt)
    for j, attr in enumerate(attrs):
        contrib = model.u_avg[:, j] * w_avg[j]
        if attr in under_node:
            # w_j(x) = parent_weight * x * inner_weight — pure slope,
            # valid even when the current local average is zero.
            slope += model.u_avg[:, j] * parent_weight * inner_weight(attr)
        elif attr in sibling_attrs:
            if 1.0 - local_avg <= _TOL:
                raise ValueError(
                    f"siblings of {objective!r} hold zero weight; the "
                    "proportional rescaling is undefined"
                )
            constant += contrib / (1.0 - local_avg)
            slope -= contrib / (1.0 - local_avg)
        else:
            constant += contrib
    return constant, slope


def batch_affine_coefficients(
    model: AdditiveModel,
    objectives: "Sequence[str] | None" = None,
) -> Tuple[Tuple[str, ...], np.ndarray, np.ndarray]:
    """(objectives, constants, slopes) for many objectives at once.

    Returns ``(names, C, S)`` with ``C``/``S`` of shape
    ``(n_objectives, n_alternatives)``: alternative ``i``'s average
    overall utility equals ``C[o, i] + x * S[o, i]`` when objective
    ``o``'s average normalised weight is set to ``x``.

    The hierarchy walk only builds two weight-coefficient matrices
    ``(n_objectives, n_attributes)``; the per-alternative math — the
    part that scales with the problem — is two tensor ops through the
    model's :class:`~repro.core.engine.BatchEvaluator`
    (``utilities_for_weights``), not a Python loop per objective.
    Equivalent to calling :func:`affine_coefficients` per objective
    (pinned by tests) up to summation order.
    """
    problem = model.problem
    hierarchy = problem.hierarchy
    root = hierarchy.root.name
    if objectives is None:
        objectives = tuple(
            node.name for node in hierarchy.nodes() if node.name != root
        )
    names = tuple(objectives)
    if root in names:
        raise ValueError("the root objective has no weight to vary")

    weights = problem.weights
    attrs = list(model.attribute_names)
    w_avg = model.w_avg
    n_att = len(attrs)

    # Weight-space coefficient matrices: w_j(x) = Wc[o, j] + x * Ws[o, j].
    coef_const = np.zeros((len(names), n_att))
    coef_slope = np.zeros((len(names), n_att))
    for o, objective in enumerate(names):
        parent = hierarchy.parent_of(objective)
        assert parent is not None
        local_avg = weights.local_average(objective)
        under_node = set(hierarchy.attributes_under(objective))
        under_parent = set(hierarchy.attributes_under(parent.name))
        sibling_attrs = under_parent - under_node
        if not sibling_attrs:
            # An only child: renormalisation pins its weight, so the
            # current averages are the whole story.
            coef_const[o] = w_avg
            continue
        if 1.0 - local_avg <= _TOL:
            raise ValueError(
                f"siblings of {objective!r} hold zero weight; the "
                "proportional rescaling is undefined"
            )
        parent_weight = weights.node_weight_average(parent.name)
        for j, attr in enumerate(attrs):
            if attr in under_node:
                leaf = hierarchy.leaf_for_attribute(attr)
                path = hierarchy.path_to(leaf.name)
                node_pos = next(
                    i for i, step in enumerate(path) if step.name == objective
                )
                inner = 1.0
                for step in path[node_pos + 1:]:
                    inner *= weights.local_average(step.name)
                coef_slope[o, j] = parent_weight * inner
            elif attr in sibling_attrs:
                coef_const[o, j] = w_avg[j] / (1.0 - local_avg)
                coef_slope[o, j] = -w_avg[j] / (1.0 - local_avg)
            else:
                coef_const[o, j] = w_avg[j]

    # One batched tensor op each over all objectives: (n_alt, n_obj).T
    evaluator = model.evaluator
    constants = evaluator.utilities_for_weights(coef_const).T
    slopes = evaluator.utilities_for_weights(coef_slope).T
    return names, constants, slopes


def _feasible_interval(
    constraints: List[Tuple[float, float]]
) -> "Interval | None":
    """Intersect ``{x : c + s*x >= 0}`` half-lines with [0, 1]."""
    lo, hi = 0.0, 1.0
    for c, s in constraints:
        if abs(s) <= _TOL:
            if c < -1e-7:
                return None
            continue
        bound = -c / s
        if s > 0:
            lo = max(lo, bound)
        else:
            hi = min(hi, bound)
    if lo > hi + _TOL:
        return None
    return Interval(max(0.0, min(lo, 1.0)), max(0.0, min(hi, 1.0)))


def stability_interval(
    problem: DecisionProblem,
    objective: str,
    mode: str = "best",
    model: "AdditiveModel | None" = None,
) -> "Interval | None":
    """The stability interval of one objective's average weight.

    ``mode="best"`` (the paper's Fig. 8 setting) keeps only the
    best-ranked alternative fixed; ``mode="ranking"`` keeps the whole
    ranking fixed.  Returns ``None`` when the current point is already
    degenerate (should not happen for a valid problem).
    """
    if mode not in ("best", "ranking"):
        raise ValueError(f"mode must be 'best' or 'ranking', got {mode!r}")
    model = model or AdditiveModel(problem)
    constant, slope = affine_coefficients(model, objective)
    order = np.argsort(-model.average_utilities(), kind="stable")
    return _interval_from_coefficients(constant, slope, order, mode)


def _interval_from_coefficients(
    constant: np.ndarray, slope: np.ndarray, order: np.ndarray, mode: str
) -> "Interval | None":
    """The stability interval implied by one objective's (C, S) row."""
    constraints: List[Tuple[float, float]] = []
    if mode == "best":
        best = order[0]
        for i in range(len(constant)):
            if i == best:
                continue
            constraints.append(
                (constant[best] - constant[i], slope[best] - slope[i])
            )
    else:
        for a, b in zip(order, order[1:]):
            constraints.append((constant[a] - constant[b], slope[a] - slope[b]))
    return _feasible_interval(constraints)


@dataclass(frozen=True)
class StabilityReport:
    """Stability intervals for every non-root objective (Fig. 8)."""

    mode: str
    intervals: Dict[str, "Interval | None"]

    def insensitive_objectives(self, tol: float = 1e-6) -> Tuple[str, ...]:
        """Objectives whose interval is the whole [0, 1]."""
        full = Interval(0.0, 1.0)
        return tuple(
            name
            for name, iv in self.intervals.items()
            if iv is not None and iv.almost_equal(full, tol)
        )

    def sensitive_objectives(self, tol: float = 1e-6) -> Tuple[str, ...]:
        """Objectives with a strictly smaller stability interval.

        The paper finds exactly two: the number of functional
        requirements covered and the adequacy of naming conventions.
        """
        full = Interval(0.0, 1.0)
        return tuple(
            name
            for name, iv in self.intervals.items()
            if iv is None or not iv.almost_equal(full, tol)
        )


def stability_report(
    problem: DecisionProblem, mode: str = "best"
) -> StabilityReport:
    """Stability intervals for all objectives at all levels.

    The whole sweep — every non-root objective, every alternative —
    evaluates as two batched tensor ops through
    :func:`batch_affine_coefficients`, not one model evaluation per
    objective.
    """
    if mode not in ("best", "ranking"):
        raise ValueError(f"mode must be 'best' or 'ranking', got {mode!r}")
    model = AdditiveModel(problem)
    names, constants, slopes = batch_affine_coefficients(model)
    order = np.argsort(-model.average_utilities(), kind="stable")
    intervals = {
        name: _interval_from_coefficients(
            constants[o], slopes[o], order, mode
        )
        for o, name in enumerate(names)
    }
    return StabilityReport(mode, intervals)
