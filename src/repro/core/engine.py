"""Vectorized batch evaluation engine.

The paper's workflow — additive MAUT evaluation (§IV), the §V
screening and the 10,000-run Monte Carlo sensitivity analysis — is the
hot path of this reproduction.  This module lowers a
:class:`~repro.core.problem.DecisionProblem` into dense NumPy arrays
*once* (:class:`CompiledProblem`) and evaluates everything downstream
as array programs over ``(n_scenarios, n_alternatives, n_attributes)``
tensors (:class:`BatchEvaluator`) — no Python-level loop over
simulations or alternatives.

Layering: this module sits *below* :mod:`repro.core.model`,
:mod:`repro.core.montecarlo` and :mod:`repro.core.dominance`; they keep
their public, paper-exact APIs and delegate the numeric work here.  The
result-object imports in :class:`BatchEvaluator` are deferred so the
dependency arrows at import time only point downward.

Compiled layout
---------------

``u_low``/``u_avg``/``u_up``
    ``(n_alternatives, n_attributes)`` component-utility envelopes —
    the lower bound, class-average and upper bound of every cell of the
    performance table pushed through its utility function.
``w_low``/``w_avg``/``w_up``
    ``(n_attributes,)`` elicited weight bounds and normalised averages.
``missing``
    boolean ``(n_alternatives, n_attributes)`` mask of unknown cells
    (the ref.-[18] "whole [0, 1] interval" facts).
``key_low``/``key_up``/``alt_key``/``key_count``
    the utility-*class* structure used by full utility sampling: per
    attribute, the distinct performance values define keys ordered by
    average utility; every alternative points at its key.  Padded to
    the maximum key count so one ``(n_scenarios, n_attributes,
    max_keys)`` uniform draw covers all attributes at once.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs import stage as _stage
from .interval import Interval
from .performance import UncertainValue
from .problem import DecisionProblem
from .scales import MISSING
from .weights import WeightSystem

__all__ = [
    "CompiledProblem",
    "StackedProblem",
    "CompiledRoster",
    "StackedRoster",
    "GroupResult",
    "BatchEvaluator",
    "StackedEvaluator",
    "compile_problem",
    "delta_compile",
    "compile_roster",
    "stack_problems",
    "rank_matrix",
    "sample_simplex",
    "sample_rank_order",
    "sample_in_intervals",
    "batch_dominance",
    "stacked_dominance",
    "weight_polytope",
]

_FEAS_TOL = 1e-9


# ----------------------------------------------------------------------
# Lowering
# ----------------------------------------------------------------------

def _utility_triplet(fn, performance) -> Tuple[float, float, float]:
    """(lower, average, upper) component utility of one performance."""
    if performance is MISSING:
        interval = fn.utility(MISSING)
        return interval.lower, interval.midpoint, interval.upper
    if isinstance(performance, UncertainValue):
        at_min = fn.utility(performance.minimum)
        at_avg = fn.utility(performance.average)
        at_max = fn.utility(performance.maximum)
        lower = min(at_min.lower, at_avg.lower, at_max.lower)
        upper = max(at_min.upper, at_avg.upper, at_max.upper)
        return lower, at_avg.midpoint, upper
    interval = fn.utility(performance)
    return interval.lower, interval.midpoint, interval.upper


def _performance_key(value: object) -> object:
    """A hashable identity for a performance value (MISSING included)."""
    if value is MISSING:
        return "__missing__"
    return float(value)


class CompiledProblem:
    """A decision problem lowered to dense arrays, built once.

    Everything the sensitivity analyses touch — utility envelopes,
    weight bounds, the missing-cell mask and the utility-class key
    structure — lives here as plain ``float64``/``bool``/``intp``
    arrays, so :class:`BatchEvaluator` never walks the object graph
    again.

    Attributes
    ----------
    u_low, u_avg, u_up : ndarray of float64, shape (n_alt, n_att)
        Component-utility envelope per (alternative, attribute):
        interval lower bound, midpoint/average, interval upper bound.
    missing : ndarray of bool, shape (n_alt, n_att)
        True where the performance is :data:`~repro.core.scales.MISSING`
        (utility envelope pinned to ``[0, 1]``).
    w_low, w_avg, w_up : ndarray of float64, shape (n_att,)
        Attribute-level weight bounds and normalized averages.
    key_low, key_up : ndarray of float64, shape (n_att, max_keys)
        Distinct utility-class values per attribute, padded to the
        per-problem maximum and sorted by utility midpoint.
    key_count : ndarray of intp, shape (n_att,)
        How many leading entries of ``key_low``/``key_up`` are real.
    alt_key : ndarray of intp, shape (n_att, n_alt)
        Each alternative's index into its attribute's key row.
    problem : DecisionProblem or None
        The source object graph; ``None`` on the ``.npz`` fast path
        (:meth:`from_arrays`).
    """

    def __init__(self, problem: DecisionProblem) -> None:
        """Walk ``problem``'s object graph once and build every array."""
        self.problem = problem
        self.name = problem.name
        self.attribute_names: Tuple[str, ...] = problem.hierarchy.attribute_names
        self.alternative_names: Tuple[str, ...] = problem.table.alternative_names
        n_alt = len(self.alternative_names)
        n_att = len(self.attribute_names)

        self.u_low = np.zeros((n_alt, n_att))
        self.u_avg = np.zeros((n_alt, n_att))
        self.u_up = np.zeros((n_alt, n_att))
        self.missing = np.zeros((n_alt, n_att), dtype=bool)
        for i, alt in enumerate(problem.table.alternatives):
            for j, attr in enumerate(self.attribute_names):
                fn = problem.utility_function(attr)
                perf = alt.performance(attr)
                lo, avg, up = _utility_triplet(fn, perf)
                self.u_low[i, j] = lo
                self.u_avg[i, j] = avg
                self.u_up[i, j] = up
                self.missing[i, j] = perf is MISSING

        intervals = [
            problem.weights.attribute_weight_interval(a)
            for a in self.attribute_names
        ]
        averages = problem.weights.attribute_averages()
        self.w_low = np.array([iv.lower for iv in intervals])
        self.w_up = np.array([iv.upper for iv in intervals])
        self.w_avg = np.array([averages[a] for a in self.attribute_names])

        self._compile_utility_classes(problem)

    def _compile_utility_classes(self, problem: DecisionProblem) -> None:
        """The per-attribute utility-class key tensors (padded)."""
        n_alt = len(self.alternative_names)
        n_att = len(self.attribute_names)
        key_lows: List[np.ndarray] = []
        key_ups: List[np.ndarray] = []
        alt_key = np.zeros((n_att, n_alt), dtype=np.intp)
        for j, attr in enumerate(self.attribute_names):
            fn = problem.utility_function(attr)
            values = []
            for alt in problem.table.alternatives:
                perf = alt.performance(attr)
                if isinstance(perf, UncertainValue):
                    perf = perf.average
                values.append(perf)
            keys: List[object] = []
            for v in values:
                if v not in keys:
                    keys.append(v)
            # Order keys by their average utility so the monotone
            # accumulation in full utility sampling never flips
            # preference.
            keys.sort(key=lambda v: fn.utility(v).midpoint)
            index = {_performance_key(v): k for k, v in enumerate(keys)}
            alt_key[j] = [index[_performance_key(v)] for v in values]
            key_intervals = [fn.utility(v) for v in keys]
            key_lows.append(np.array([iv.lower for iv in key_intervals]))
            key_ups.append(np.array([iv.upper for iv in key_intervals]))

        self.key_count = np.array([len(k) for k in key_lows], dtype=np.intp)
        max_keys = int(self.key_count.max()) if n_att else 0
        self.key_low = np.zeros((n_att, max_keys))
        self.key_up = np.zeros((n_att, max_keys))
        for j in range(n_att):
            k = len(key_lows[j])
            self.key_low[j, :k] = key_lows[j]
            self.key_up[j, :k] = key_ups[j]
        self.alt_key = alt_key

    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        name: str,
        attribute_names: Sequence[str],
        alternative_names: Sequence[str],
        u_low: np.ndarray,
        u_avg: np.ndarray,
        u_up: np.ndarray,
        missing: np.ndarray,
        w_low: np.ndarray,
        w_avg: np.ndarray,
        w_up: np.ndarray,
        key_low: np.ndarray,
        key_up: np.ndarray,
        key_count: np.ndarray,
        alt_key: np.ndarray,
        problem: Optional[DecisionProblem] = None,
    ) -> "CompiledProblem":
        """Rebuild a compiled form straight from its dense arrays.

        This is the loading path of the persisted ``.npz`` compile
        cache (:mod:`repro.core.workspace`): no object graph is walked,
        no utility function is evaluated.  ``problem`` stays ``None``
        unless the caller also parsed the workspace JSON.
        """
        self = cls.__new__(cls)
        self.problem = problem
        self.name = name
        self.attribute_names = tuple(str(a) for a in attribute_names)
        self.alternative_names = tuple(str(a) for a in alternative_names)
        self.u_low = np.asarray(u_low, dtype=float)
        self.u_avg = np.asarray(u_avg, dtype=float)
        self.u_up = np.asarray(u_up, dtype=float)
        self.missing = np.asarray(missing, dtype=bool)
        self.w_low = np.asarray(w_low, dtype=float)
        self.w_avg = np.asarray(w_avg, dtype=float)
        self.w_up = np.asarray(w_up, dtype=float)
        self.key_low = np.asarray(key_low, dtype=float)
        self.key_up = np.asarray(key_up, dtype=float)
        self.key_count = np.asarray(key_count, dtype=np.intp)
        self.alt_key = np.asarray(alt_key, dtype=np.intp)
        n_alt, n_att = self.u_low.shape
        if self.missing.shape != (n_alt, n_att) or self.w_low.shape != (n_att,):
            raise ValueError("compiled arrays have inconsistent shapes")
        if self.alt_key.shape != (n_att, n_alt):
            raise ValueError("alt_key must be (n_attributes, n_alternatives)")
        return self

    @property
    def n_alternatives(self) -> int:
        """Number of alternatives (rows of the utility envelopes)."""
        return len(self.alternative_names)

    @property
    def n_attributes(self) -> int:
        """Number of leaf attributes (columns of the utility envelopes)."""
        return len(self.attribute_names)

    @property
    def shape(self) -> Tuple[int, int]:
        """(n_alternatives, n_attributes) — the stacking group key."""
        return (len(self.alternative_names), len(self.attribute_names))

    def alternative_index(self, name: str) -> int:
        """The row index of alternative ``name`` (KeyError if absent)."""
        try:
            return self.alternative_names.index(name)
        except ValueError:
            raise KeyError(f"no alternative named {name!r}") from None

    def reweighted(
        self,
        w_low: np.ndarray,
        w_avg: np.ndarray,
        w_up: np.ndarray,
    ) -> "CompiledProblem":
        """A shallow view of this compiled form with other weight vectors.

        The utility envelopes, masks and key tensors are shared (not
        copied); only the ``(n_attributes,)`` weight arrays differ.
        This is how group decision support evaluates aggregated
        (consensus / tolerant) weight systems through exactly the same
        array program as the member weights — one
        :class:`BatchEvaluator` over the reweighted view is
        bit-identical to compiling ``problem.with_weights(...)``.
        """
        clone = CompiledProblem.__new__(CompiledProblem)
        clone.__dict__.update(self.__dict__)
        clone.w_low = np.asarray(w_low, dtype=float)
        clone.w_avg = np.asarray(w_avg, dtype=float)
        clone.w_up = np.asarray(w_up, dtype=float)
        n_att = len(self.attribute_names)
        for arr in (clone.w_low, clone.w_avg, clone.w_up):
            if arr.shape != (n_att,):
                raise ValueError(
                    f"weight vectors must have shape ({n_att},), "
                    f"got {arr.shape}"
                )
        return clone


def compile_problem(problem: DecisionProblem) -> CompiledProblem:
    """Lower ``problem`` into the dense-array form evaluated in batch."""
    return CompiledProblem(problem)


def delta_compile(
    old: CompiledProblem,
    problem: DecisionProblem,
    changed_rows: Sequence[int],
) -> CompiledProblem:
    """Patch an existing compiled form for a partially edited problem.

    ``old`` is the compiled form of the *previous* version of
    ``problem`` (typically mmapped off the ``.npz`` artifact), and
    ``changed_rows`` names every alternative row whose performances
    differ — callers derive it from the per-component fingerprints the
    registry index stores (schema v3).  Only those rows' component
    -utility triplets are recomputed; unchanged rows are copied
    bit-for-bit.  The weight vectors and the utility-class key tensors
    are always rebuilt (both are cheap relative to the per-row utility
    walk, and the key structure is global: one edited cell can merge or
    split a utility class).

    The result is **bit-identical** to ``compile_problem(problem)``
    provided the problem's structure — hierarchy, scales, utility
    functions, alternative order — is unchanged and ``changed_rows``
    covers every row whose performances differ; both preconditions are
    validated by hash upstream and the cheap shape/name parts are
    re-checked here (ValueError on mismatch).
    """
    new_names = tuple(problem.table.alternative_names)
    new_attrs = tuple(problem.hierarchy.attribute_names)
    if new_names != tuple(old.alternative_names) or new_attrs != tuple(
        old.attribute_names
    ):
        raise ValueError(
            "delta_compile needs an unchanged alternative/attribute "
            "structure; recompile from scratch instead"
        )
    self = CompiledProblem.__new__(CompiledProblem)
    self.problem = problem
    self.name = problem.name
    self.attribute_names = new_attrs
    self.alternative_names = new_names
    # copies, not views: the old arrays may be read-only mmaps
    self.u_low = np.array(old.u_low, dtype=float)
    self.u_avg = np.array(old.u_avg, dtype=float)
    self.u_up = np.array(old.u_up, dtype=float)
    self.missing = np.array(old.missing, dtype=bool)
    alternatives = problem.table.alternatives
    for i in changed_rows:
        alt = alternatives[i]
        for j, attr in enumerate(new_attrs):
            fn = problem.utility_function(attr)
            perf = alt.performance(attr)
            lo, avg, up = _utility_triplet(fn, perf)
            self.u_low[i, j] = lo
            self.u_avg[i, j] = avg
            self.u_up[i, j] = up
            self.missing[i, j] = perf is MISSING

    intervals = [
        problem.weights.attribute_weight_interval(a) for a in new_attrs
    ]
    averages = problem.weights.attribute_averages()
    self.w_low = np.array([iv.lower for iv in intervals])
    self.w_up = np.array([iv.upper for iv in intervals])
    self.w_avg = np.array([averages[a] for a in new_attrs])

    self._compile_utility_classes(problem)
    return self


def _as_compiled(
    source: Union[DecisionProblem, CompiledProblem, object]
) -> CompiledProblem:
    """Accept a problem, a compiled problem, or an AdditiveModel."""
    if isinstance(source, CompiledProblem):
        return source
    if isinstance(source, DecisionProblem):
        return CompiledProblem(source)
    compiled = getattr(source, "compiled", None)
    if isinstance(compiled, CompiledProblem):
        return compiled
    raise TypeError(
        "expected a DecisionProblem, CompiledProblem or AdditiveModel, "
        f"got {type(source).__name__}"
    )


# ----------------------------------------------------------------------
# Stacking — many same-shape problems as one tensor set
# ----------------------------------------------------------------------

class StackedProblem:
    """Same-shape compiled problems stacked into one tensor set.

    A repository-scale registry holds thousands of decision problems
    that share one shape (e.g. every reuse shortlist compares 8
    candidates on the 14 §II criteria).  Stacking them turns the
    per-problem ``(n_alternatives, n_attributes)`` arrays into
    ``(n_problems, n_alternatives, n_attributes)`` tensors so
    :class:`StackedEvaluator` can answer every deterministic question
    and run every Monte Carlo sweep for the whole stack in one array
    program — no Python loop over problems.

    ``source_indices`` remembers each member's position in the original
    registry so results merge back deterministically after grouping.

    Attributes
    ----------
    u_low, u_avg, u_up, missing : ndarray, shape (P, n_alt, n_att)
        Member envelopes/masks stacked along a leading problem axis.
    w_low, w_avg, w_up : ndarray of float64, shape (P, n_att)
        Member weight bounds, stacked.
    key_low, key_up : ndarray of float64, shape (P, n_att, max_keys)
        Utility-class keys re-padded to the stack-wide maximum.
    key_count : ndarray of intp, shape (P, n_att)
    alt_key : ndarray of intp, shape (P, n_att, n_alt)
    members : tuple of CompiledProblem
    source_indices : tuple of int
        Each member's registry position (defaults to ``0..P-1``).
    """

    def __init__(
        self,
        members: Sequence[CompiledProblem],
        source_indices: Optional[Sequence[int]] = None,
    ) -> None:
        """Stack ``members`` (all sharing one shape) into tensors."""
        if not members:
            raise ValueError("a stack needs at least one compiled problem")
        shape = members[0].shape
        for member in members[1:]:
            if member.shape != shape:
                raise ValueError(
                    f"cannot stack shape {member.shape} with {shape}; "
                    "group problems with stack_problems() first"
                )
        self.members: Tuple[CompiledProblem, ...] = tuple(members)
        if source_indices is None:
            source_indices = range(len(members))
        self.source_indices: Tuple[int, ...] = tuple(
            int(i) for i in source_indices
        )
        if len(self.source_indices) != len(self.members):
            raise ValueError("source_indices must align with members")
        self.names: Tuple[str, ...] = tuple(m.name for m in members)

        self.u_low = np.stack([m.u_low for m in members])
        self.u_avg = np.stack([m.u_avg for m in members])
        self.u_up = np.stack([m.u_up for m in members])
        self.missing = np.stack([m.missing for m in members])
        self.w_low = np.stack([m.w_low for m in members])
        self.w_avg = np.stack([m.w_avg for m in members])
        self.w_up = np.stack([m.w_up for m in members])

        # Key tensors are padded per member; re-pad to the stack-wide
        # maximum so one (P, n_att, max_keys) tensor covers everyone.
        max_keys = max(m.key_low.shape[1] for m in members)
        p, (n_alt, n_att) = len(members), shape
        self.key_low = np.zeros((p, n_att, max_keys))
        self.key_up = np.zeros((p, n_att, max_keys))
        for idx, m in enumerate(members):
            k = m.key_low.shape[1]
            self.key_low[idx, :, :k] = m.key_low
            self.key_up[idx, :, :k] = m.key_up
        self.key_count = np.stack([m.key_count for m in members])
        self.alt_key = np.stack([m.alt_key for m in members])

    # ------------------------------------------------------------------
    @property
    def n_problems(self) -> int:
        """Stack size ``P`` (the leading tensor axis)."""
        return len(self.members)

    @property
    def n_alternatives(self) -> int:
        """Alternatives per member (every member shares this)."""
        return self.u_low.shape[1]

    @property
    def n_attributes(self) -> int:
        """Leaf attributes per member (every member shares this)."""
        return self.u_low.shape[2]

    @property
    def shape(self) -> Tuple[int, int]:
        """The shared per-member ``(n_alternatives, n_attributes)``."""
        return (self.n_alternatives, self.n_attributes)

    def __len__(self) -> int:
        """Stack size ``P`` — same as :attr:`n_problems`."""
        return len(self.members)

    def patch_member(self, pos: int, compiled: CompiledProblem) -> None:
        """Replace member ``pos``'s slices of every stacked tensor in place.

        The delta-compilation path: when one workspace of a stacked
        registry changes, its freshly (delta-)compiled form is written
        into the existing ``(P, ...)`` tensors instead of re-stacking
        all ``P`` members.  Key tensors re-pad if the new member needs
        more utility-class slots than the current stack-wide maximum;
        padding never influences results (``key_count`` masks it), so a
        patched stack evaluates bit-identically to a freshly stacked
        one.
        """
        if not 0 <= pos < len(self.members):
            raise IndexError(f"no stack member at position {pos}")
        if compiled.shape != self.shape:
            raise ValueError(
                f"cannot patch shape {compiled.shape} into a "
                f"{self.shape} stack"
            )
        members = list(self.members)
        members[pos] = compiled
        self.members = tuple(members)
        self.names = tuple(m.name for m in self.members)
        for field in ("u_low", "u_avg", "u_up", "missing", "w_low",
                      "w_avg", "w_up"):
            getattr(self, field)[pos] = getattr(compiled, field)
        k = compiled.key_low.shape[1]
        max_keys = self.key_low.shape[2]
        if k > max_keys:
            p, (_, n_att) = len(self.members), self.shape
            for field in ("key_low", "key_up"):
                grown = np.zeros((p, n_att, k))
                grown[:, :, :max_keys] = getattr(self, field)
                setattr(self, field, grown)
        self.key_low[pos] = 0.0
        self.key_up[pos] = 0.0
        self.key_low[pos, :, :k] = compiled.key_low
        self.key_up[pos, :, :k] = compiled.key_up
        self.key_count[pos] = compiled.key_count
        self.alt_key[pos] = compiled.alt_key

    def subset(self, positions: Sequence[int]) -> "StackedProblem":
        """A new stack of just ``positions``, keeping source indices.

        The sliced re-evaluation primitive: every member's numbers
        depend only on its own arrays and its own seeded stream (the
        PR 2 determinism contract), so evaluating a subset stack is
        bit-identical to evaluating those members inside the full
        stack.
        """
        return StackedProblem(
            [self.members[p] for p in positions],
            [self.source_indices[p] for p in positions],
        )


def stack_problems(
    compiled: Sequence[CompiledProblem],
) -> List[StackedProblem]:
    """Group compiled problems into same-shape stacks.

    Groups form in first-seen order and keep each member's original
    index, so downstream merges are deterministic regardless of how the
    registry interleaves shapes.
    """
    groups: "OrderedDict[Tuple[int, int], List[int]]" = OrderedDict()
    for i, c in enumerate(compiled):
        groups.setdefault(c.shape, []).append(i)
    return [
        StackedProblem([compiled[i] for i in indices], indices)
        for indices in groups.values()
    ]


# ----------------------------------------------------------------------
# Group decision support — the members axis
# ----------------------------------------------------------------------

_DISAGREEMENT_TOL = 1e-12


@dataclass(frozen=True)
class GroupResult:
    """Everything a group evaluation of one decision problem produces.

    The tensor complement of the scalar :class:`repro.core.group`
    workflow: per-member rankings, the two aggregated group rankings
    (consensus = interval intersection, tolerant = interval hull),
    Borda aggregation of the member rankings, and the per-objective
    disagreement profile.  ``consensus`` is ``None`` when the members'
    local weight intervals are disjoint on at least one objective (the
    objectives are listed in ``disjoint``) — the documented fallback is
    the tolerant ranking, which :attr:`best` applies.

    The payload round-trips exactly: rankings are name tuples and
    disagreement scores are binary64 floats, both of which JSON
    preserves bit-for-bit (:meth:`to_payload` / :meth:`from_payload`).
    """

    member_names: Tuple[str, ...]
    member_rankings: Tuple[Tuple[str, ...], ...]
    borda: Tuple[str, ...]
    tolerant: Tuple[str, ...]
    consensus: Optional[Tuple[str, ...]]
    disjoint: Tuple[str, ...]
    disagreement: Tuple[Tuple[str, float], ...]

    @property
    def best(self) -> str:
        """The group's top alternative: consensus, else tolerant hull."""
        ranking = self.consensus if self.consensus is not None else self.tolerant
        return ranking[0]

    @property
    def n_members(self) -> int:
        """How many decision makers the result aggregates."""
        return len(self.member_names)

    @property
    def max_disagreement(self) -> float:
        """The largest per-objective disagreement score (0 when empty)."""
        return max((score for _, score in self.disagreement), default=0.0)

    def to_payload(self) -> Dict[str, object]:
        """A JSON-ready dict preserving every ranking and float exactly."""
        return {
            "member_names": list(self.member_names),
            "member_rankings": [list(r) for r in self.member_rankings],
            "borda": list(self.borda),
            "tolerant": list(self.tolerant),
            "consensus": (
                list(self.consensus) if self.consensus is not None else None
            ),
            "disjoint": list(self.disjoint),
            "disagreement": [[name, score] for name, score in self.disagreement],
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "GroupResult":
        """Rebuild a result from :meth:`to_payload` output (exact)."""
        consensus = payload["consensus"]
        return cls(
            member_names=tuple(payload["member_names"]),
            member_rankings=tuple(
                tuple(r) for r in payload["member_rankings"]
            ),
            borda=tuple(payload["borda"]),
            tolerant=tuple(payload["tolerant"]),
            consensus=tuple(consensus) if consensus is not None else None,
            disjoint=tuple(payload["disjoint"]),
            disagreement=tuple(
                (str(name), float(score))
                for name, score in payload["disagreement"]
            ),
        )


class CompiledRoster:
    """A member roster lowered to dense per-member weight tensors.

    The group analogue of :class:`CompiledProblem`: every decision
    maker's elicited :class:`~repro.core.weights.WeightSystem` is
    lowered once into ``(n_members, n_attributes)`` weight tensors and
    ``(n_members, n_nodes)`` local-interval tensors, so the evaluators
    answer every group question as one array program over a members
    axis — no Python loop over decision makers.

    Attributes
    ----------
    member_names : tuple of str
        Decision-maker names, roster order (the members axis order).
    attribute_names : tuple of str
        Leaf attributes in hierarchy order (matches the compiled
        problem the roster is evaluated against).
    node_names : tuple of str
        Every non-root objective, hierarchy order — the axis of the
        local-interval tensors and the disagreement profile.
    w_low, w_avg, w_up : ndarray of float64, shape (M, n_att)
        Per-member global attribute weight bounds and normalised
        averages — exactly what compiling
        ``problem.with_weights(member.weights)`` produces per member.
    node_low, node_up : ndarray of float64, shape (M, n_nodes)
        Per-member local weight interval bounds per non-root objective.
    hierarchy : Hierarchy
        The shared objective hierarchy (aggregated weight systems are
        rebuilt over it).
    """

    def __init__(self, members: Sequence[object], hierarchy=None) -> None:
        """Lower ``members`` (objects with ``.name`` / ``.weights``)."""
        members = list(members)
        if not members:
            raise ValueError("a group needs at least one member")
        first = members[0].weights.hierarchy
        first_names = {n.name for n in first.nodes()}
        for member in members[1:]:
            names = {n.name for n in member.weights.hierarchy.nodes()}
            if names != first_names:
                raise ValueError(
                    f"member {member.name!r} uses a different hierarchy "
                    "(objective names do not match)"
                )
        if hierarchy is not None:
            expected = {n.name for n in hierarchy.nodes()}
            for member in members:
                names = {n.name for n in member.weights.hierarchy.nodes()}
                if names != expected:
                    raise ValueError(
                        f"member {member.name!r} weights do not match the "
                        "problem hierarchy"
                    )
        else:
            hierarchy = first
        self.hierarchy = hierarchy
        self.member_names: Tuple[str, ...] = tuple(m.name for m in members)
        self.attribute_names: Tuple[str, ...] = hierarchy.attribute_names
        root = hierarchy.root.name
        self.node_names: Tuple[str, ...] = tuple(
            n.name for n in hierarchy.nodes() if n.name != root
        )

        m = len(members)
        n_att = len(self.attribute_names)
        n_nodes = len(self.node_names)
        self.w_low = np.zeros((m, n_att))
        self.w_avg = np.zeros((m, n_att))
        self.w_up = np.zeros((m, n_att))
        self.node_low = np.zeros((m, n_nodes))
        self.node_up = np.zeros((m, n_nodes))
        for k, member in enumerate(members):
            ws = member.weights
            averages = ws.attribute_averages()
            for j, attr in enumerate(self.attribute_names):
                iv = ws.attribute_weight_interval(attr)
                self.w_low[k, j] = iv.lower
                self.w_up[k, j] = iv.upper
                self.w_avg[k, j] = averages[attr]
            for j, node in enumerate(self.node_names):
                iv = ws.local_interval(node)
                self.node_low[k, j] = iv.lower
                self.node_up[k, j] = iv.upper

        self._aggregated: Dict[str, WeightSystem] = {}
        self._aggregated_vectors: Dict[
            str, Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}

    # ------------------------------------------------------------------
    @property
    def n_members(self) -> int:
        """Roster size ``M`` (the members tensor axis)."""
        return len(self.member_names)

    @property
    def n_attributes(self) -> int:
        """Leaf attributes per member weight vector."""
        return len(self.attribute_names)

    @property
    def disjoint_nodes(self) -> Tuple[str, ...]:
        """Objectives whose member intervals have an empty intersection.

        Hierarchy order — the first entry is the node the scalar
        ``aggregate_weights(..., "intersection")`` names in its error.
        """
        empty = self.node_low.max(axis=0) > self.node_up.min(axis=0)
        return tuple(
            name for name, bad in zip(self.node_names, empty) if bad
        )

    def disagreement(self) -> Dict[str, float]:
        """Per-objective disagreement in ``[0, 1]``, hierarchy order.

        One array program over the ``(M, n_nodes)`` local-interval
        tensors, bit-identical to the scalar
        :func:`repro.core.group.disagreement` loop: ``1 -
        |intersection| / |hull|`` per node, 0 for a degenerate hull, 1
        for a disjoint pair.
        """
        hull_w = self.node_up.max(axis=0) - self.node_low.min(axis=0)
        inter_lo = self.node_low.max(axis=0)
        inter_hi = self.node_up.min(axis=0)
        safe_hull = np.where(hull_w > _DISAGREEMENT_TOL, hull_w, 1.0)
        scores = np.where(
            hull_w <= _DISAGREEMENT_TOL,
            0.0,
            np.where(
                inter_lo > inter_hi,
                1.0,
                1.0 - (inter_hi - inter_lo) / safe_hull,
            ),
        )
        return {
            name: float(score)
            for name, score in zip(self.node_names, scores)
        }

    def aggregated(self, method: str = "intersection") -> WeightSystem:
        """The group weight system under one aggregation method.

        ``"intersection"`` keeps only weights every member accepts (a
        ``ValueError`` names the first objective with disjoint member
        intervals); ``"hull"`` covers every member's interval.  The
        per-node combination runs as array min/max over the members
        axis — exact, so the result is identical to the scalar
        sequential fold.
        """
        if method not in ("intersection", "hull"):
            raise ValueError(
                f"method must be 'intersection' or 'hull', got {method!r}"
            )
        cached = self._aggregated.get(method)
        if cached is not None:
            return cached
        if method == "hull":
            low = self.node_low.min(axis=0)
            up = self.node_up.max(axis=0)
        else:
            disjoint = self.disjoint_nodes
            if disjoint:
                raise ValueError(
                    f"members disagree irreconcilably on objective "
                    f"{disjoint[0]!r}: weight intervals are disjoint"
                )
            low = self.node_low.max(axis=0)
            up = self.node_up.min(axis=0)
        local = {
            name: Interval(float(lo), float(hi))
            for name, lo, hi in zip(self.node_names, low, up)
        }
        system = WeightSystem.from_raw_intervals(self.hierarchy, local)
        self._aggregated[method] = system
        return system

    def aggregated_vectors(
        self, method: str = "intersection"
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(w_low, w_avg, w_up)`` of the aggregated weight system.

        The same lowering :class:`CompiledProblem` applies to a
        problem's own weight system, so evaluating these vectors
        through a :meth:`CompiledProblem.reweighted` view is
        bit-identical to compiling ``problem.with_weights(aggregated)``.
        """
        cached = self._aggregated_vectors.get(method)
        if cached is not None:
            return cached
        ws = self.aggregated(method)
        averages = ws.attribute_averages()
        intervals = [
            ws.attribute_weight_interval(a) for a in self.attribute_names
        ]
        vectors = (
            np.array([iv.lower for iv in intervals]),
            np.array([averages[a] for a in self.attribute_names]),
            np.array([iv.upper for iv in intervals]),
        )
        self._aggregated_vectors[method] = vectors
        return vectors


def compile_roster(
    members: Sequence[object], hierarchy=None
) -> CompiledRoster:
    """Lower a member roster into the dense per-member weight tensors.

    ``members`` are objects with ``.name`` and ``.weights`` attributes
    (typically :class:`repro.core.group.GroupMember`).  ``hierarchy``
    optionally pins the decision problem's hierarchy the roster must
    match; by default the first member's hierarchy is used.
    """
    return CompiledRoster(members, hierarchy)


class StackedRoster:
    """Per-problem rosters stacked along the problem axis.

    The group analogue of :class:`StackedProblem`: one
    :class:`CompiledRoster` per stack member (every roster lists the
    same decision makers over the same attribute count) stacked into
    ``(n_problems, n_members, n_attributes)`` weight tensors, so
    :class:`StackedEvaluator` runs the whole registry's group
    evaluation as one array program.
    """

    def __init__(self, rosters: Sequence[CompiledRoster]) -> None:
        """Stack ``rosters`` (same member names, same attribute count)."""
        rosters = list(rosters)
        if not rosters:
            raise ValueError("a stacked roster needs at least one roster")
        names = rosters[0].member_names
        n_att = rosters[0].n_attributes
        for roster in rosters[1:]:
            if roster.member_names != names:
                raise ValueError(
                    "cannot stack rosters with different member names"
                )
            if roster.n_attributes != n_att:
                raise ValueError(
                    "cannot stack rosters with different attribute counts"
                )
        self.rosters: Tuple[CompiledRoster, ...] = tuple(rosters)
        self.member_names: Tuple[str, ...] = names
        self.w_low = np.stack([r.w_low for r in rosters])
        self.w_avg = np.stack([r.w_avg for r in rosters])
        self.w_up = np.stack([r.w_up for r in rosters])

    @property
    def n_problems(self) -> int:
        """Stack size ``P`` (the leading tensor axis)."""
        return len(self.rosters)

    @property
    def n_members(self) -> int:
        """Decision makers per roster (every roster shares this)."""
        return len(self.member_names)

    @property
    def n_attributes(self) -> int:
        """Leaf attributes per member weight vector."""
        return self.w_avg.shape[2]

    def __len__(self) -> int:
        """Stack size ``P`` — same as :attr:`n_problems`."""
        return len(self.rosters)


# ----------------------------------------------------------------------
# Weight generators (the three §V simulation classes)
# ----------------------------------------------------------------------

def sample_simplex(
    n_attributes: int, n_samples: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform samples from the weight simplex.

    The classic exponential-spacings construction: normalised i.i.d.
    exponentials are uniform on ``{w >= 0 : sum w = 1}``.  This is §V's
    first simulation class — "attribute weights completely at random
    (there is no knowledge whatsoever of the relative importance of the
    attributes)".
    """
    if n_attributes < 1:
        raise ValueError("need at least one attribute")
    if n_samples < 1:
        raise ValueError("need at least one sample")
    raw = rng.exponential(scale=1.0, size=(n_samples, n_attributes))
    return raw / raw.sum(axis=1, keepdims=True)


def sample_rank_order(
    groups: Sequence[Sequence[int]],
    n_attributes: int,
    n_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Simplex samples preserving a total or partial attribute rank order.

    ``groups`` lists attribute indices from most to least important;
    attributes inside one group are unordered relative to each other
    (the *partial* order case).  Singleton groups everywhere give a
    total order.  Sampling: draw uniformly on the simplex, sort each
    sample descending, hand the largest values to the first group
    (shuffled within the group), the next largest to the second, and so
    on — the standard construction for rank-order-constrained simplex
    sampling.
    """
    flat = [i for group in groups for i in group]
    if sorted(flat) != list(range(n_attributes)):
        raise ValueError(
            "groups must partition the attribute indices "
            f"0..{n_attributes - 1}; got {groups!r}"
        )
    base = sample_simplex(n_attributes, n_samples, rng)
    base.sort(axis=1)
    base = base[:, ::-1]  # descending: position 0 = largest weight
    result = np.empty_like(base)
    cursor = 0
    for group in groups:
        size = len(group)
        block = base[:, cursor:cursor + size]
        if size == 1:
            result[:, group[0]] = block[:, 0]
        else:
            # Shuffle the block's columns independently per sample so
            # within-group order is uniform.
            perm = np.argsort(rng.random((n_samples, size)), axis=1)
            shuffled = np.take_along_axis(block, perm, axis=1)
            for k, attr in enumerate(group):
                result[:, attr] = shuffled[:, k]
        cursor += size
    return result


def sample_in_intervals(
    lower: np.ndarray,
    upper: np.ndarray,
    n_samples: int,
    rng: np.random.Generator,
    reject_outside: bool = False,
    max_batches: int = 200,
) -> Tuple[np.ndarray, float]:
    """Weights drawn within elicited intervals, renormalised to sum 1.

    GMAA's third simulation class: "attribute weights can be randomly
    assigned values taking into account the elicited weight intervals"
    (Fig. 5).  Each attribute weight is drawn uniformly in its interval
    and the vector is divided by its sum.  With ``reject_outside`` the
    renormalised vector must also remain inside the intervals (the
    normalised-box polytope); samples violating that are redrawn.

    Returns ``(weights, acceptance_rate)``; the acceptance rate is 1.0
    when no rejection was requested.
    """
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    if lower.shape != upper.shape or lower.ndim != 1:
        raise ValueError("lower and upper must be 1-D arrays of equal length")
    if np.any(lower < 0) or np.any(lower > upper):
        raise ValueError("need 0 <= lower <= upper per attribute")
    if float(lower.sum()) > 1.0 + 1e-9 or float(upper.sum()) < 1.0 - 1e-9:
        raise ValueError(
            "weight intervals do not intersect the simplex: "
            f"sum of lowers {lower.sum():.4f}, sum of uppers {upper.sum():.4f}"
        )
    n = lower.shape[0]
    if not reject_outside:
        raw = rng.uniform(lower, upper, size=(n_samples, n))
        return raw / raw.sum(axis=1, keepdims=True), 1.0

    accepted: List[np.ndarray] = []
    drawn = kept = 0
    tol = 1e-12
    for _ in range(max_batches):
        raw = rng.uniform(lower, upper, size=(n_samples, n))
        w = raw / raw.sum(axis=1, keepdims=True)
        ok = np.all(w >= lower - tol, axis=1) & np.all(w <= upper + tol, axis=1)
        drawn += n_samples
        kept += int(ok.sum())
        if ok.any():
            accepted.append(w[ok])
        if kept >= n_samples:
            break
    if kept < n_samples:
        raise RuntimeError(
            f"interval rejection sampling accepted only {kept} of the "
            f"requested {n_samples} samples after {drawn} draws; relax the "
            "intervals or disable reject_outside"
        )
    stacked = np.vstack(accepted)[:n_samples]
    return stacked, kept / drawn


# ----------------------------------------------------------------------
# Ranking
# ----------------------------------------------------------------------

def rank_matrix(utilities: np.ndarray) -> np.ndarray:
    """Per-scenario 1-based ranks from a (n_scenarios, n_alt) utility array.

    Ties resolve in alternative (column) order, matching the stable
    tie-break the deterministic evaluation uses.
    """
    order = np.argsort(-utilities, axis=1, kind="stable")
    ranks = np.empty_like(order)
    n_scen, n_alt = utilities.shape
    rows = np.arange(n_scen)[:, None]
    ranks[rows, order] = np.arange(1, n_alt + 1)[None, :]
    return ranks


# ----------------------------------------------------------------------
# Dominance (vectorised pre-screen + LP residue)
# ----------------------------------------------------------------------

def weight_polytope(
    compiled: CompiledProblem,
) -> Tuple[np.ndarray, np.ndarray, List[Tuple[float, float]]]:
    """(A_eq, b_eq, bounds) of ``W``: elicited box intersect simplex."""
    n = compiled.n_attributes
    a_eq = np.ones((1, n))
    b_eq = np.array([1.0])
    bounds = [
        (float(compiled.w_low[j]), float(compiled.w_up[j])) for j in range(n)
    ]
    low_sum = float(compiled.w_low.sum())
    up_sum = float(compiled.w_up.sum())
    if low_sum > 1.0 + 1e-7 or up_sum < 1.0 - 1e-7:
        raise ValueError(
            "weight intervals do not intersect the simplex: "
            f"sum of lowers {low_sum:.4f}, sum of uppers {up_sum:.4f}"
        )
    return a_eq, b_eq, bounds


def box_simplex_argmin(
    c: np.ndarray, bounds: Sequence[Tuple[float, float]]
) -> np.ndarray:
    """The exact minimiser of ``c . w`` over ``{low <= w <= up, sum w = 1}``.

    The dominance polytope is always a coordinate box intersected with
    the weight simplex, so its linear programs have a closed-form
    greedy solution (fractional knapsack): start every weight at its
    lower bound and spend the residual ``1 - sum(low)`` on the
    cheapest coordinates first.  Used as the exact fallback when the
    external LP solver rejects a near-degenerate polytope — elicited
    intervals of width ~1e-9 leave a feasible set thinner than HiGHS's
    feasibility tolerance, which reports *infeasible* for a set that is
    mathematically non-empty.  Out-of-tolerance inputs (the box missing
    the simplex by more than :func:`weight_polytope` permits) degrade
    gracefully to the nearest box vertex instead of raising.
    """
    c = np.asarray(c, dtype=float)
    low = np.array([b[0] for b in bounds], dtype=float)
    up = np.array([b[1] for b in bounds], dtype=float)
    w = low.copy()
    residual = 1.0 - float(low.sum())
    if residual > 0.0:
        room = up - low
        for j in np.argsort(c, kind="stable"):
            take = min(float(room[j]), residual)
            if take > 0.0:
                w[j] += take
                residual -= take
            if residual <= 0.0:
                break
    return w


def box_simplex_minimum(
    c: np.ndarray, bounds: Sequence[Tuple[float, float]]
) -> float:
    """Exact minimum of ``c . w`` over the box-intersect-simplex polytope.

    See :func:`box_simplex_argmin` for the construction and when the
    engine reaches for it.
    """
    c = np.asarray(c, dtype=float)
    return float(c @ box_simplex_argmin(c, bounds))


def batch_dominance(
    source: Union[DecisionProblem, CompiledProblem, object],
    solve_lp: Callable,
) -> np.ndarray:
    """Boolean matrix D with ``D[i, j]`` iff alternative i dominates j.

    All pairwise envelope differences are materialised as one
    ``(n, n, n_attributes)`` tensor and every pair a cheap bound can
    decide is settled by array ops; the adversarial LP only runs for
    the residue.  ``solve_lp`` is
    ``(c, a_ub, b_ub, a_eq, b_eq, bounds) -> result`` — the caller
    picks the solver (scipy HiGHS or the pure-Python simplex).

    Decision rule per pair (identical to the scalar formulation):

    * worst case: ``min_{w in W} (u_low_i - u_up_j) . w >= 0``, decided
      without an LP when the componentwise min/max already settles it;
    * strictness: ``max_{w in W} (u_up_i - u_low_j) . w > 0``, decided
      without an LP when every component clears the tolerance (any
      simplex point then does) or none can reach it.
    """
    compiled = _as_compiled(source)
    n = compiled.n_alternatives
    a_eq, b_eq, bounds = weight_polytope(compiled)

    # (n, n, n_att) pairwise envelope differences.
    diff_low = compiled.u_low[:, None, :] - compiled.u_up[None, :, :]
    diff_up = compiled.u_up[:, None, :] - compiled.u_low[None, :, :]
    off_diagonal = ~np.eye(n, dtype=bool)

    # Worst-case screen: pairs whose componentwise max is already
    # negative can never dominate; pairs whose componentwise min is
    # non-negative dominate under every weight vector.
    candidate = off_diagonal & (diff_low.max(axis=2) >= -_FEAS_TOL)
    worst_ok = candidate & (diff_low.min(axis=2) >= -_FEAS_TOL)
    for i, j in np.argwhere(candidate & ~worst_ok):
        res = solve_lp(diff_low[i, j], None, None, a_eq, b_eq, bounds)
        value = (
            float(res.fun)
            if res.success
            else box_simplex_minimum(diff_low[i, j], bounds)
        )
        if value >= -_FEAS_TOL:
            worst_ok[i, j] = True

    # Strictness screen: u(a) must be able to exceed u(b) somewhere.
    du_min = diff_up.min(axis=2)
    du_max = diff_up.max(axis=2)
    strict = worst_ok & (du_min > _FEAS_TOL)  # every simplex w clears tol
    undecided = worst_ok & ~strict & (du_max > -_FEAS_TOL)
    for i, j in np.argwhere(undecided):
        res = solve_lp(-diff_up[i, j], None, None, a_eq, b_eq, bounds)
        value = (
            -float(res.fun)
            if res.success
            else -box_simplex_minimum(-diff_up[i, j], bounds)
        )
        if value > _FEAS_TOL:
            strict[i, j] = True
    return strict


def stacked_dominance(
    stacked: StackedProblem, solve_lp: Callable
) -> np.ndarray:
    """Dominance matrices for a whole stack: (P, n, n) boolean tensor.

    The envelope screens — the part that settles almost every pair —
    run over the full ``(P, n, n, n_att)`` difference tensors at once;
    only the LP residue falls back to per-pair calls, each using its
    own member's weight polytope.  Member ``p``'s slice is identical to
    :func:`batch_dominance` on that member alone.
    """
    p, n = stacked.n_problems, stacked.n_alternatives
    diff_low = stacked.u_low[:, :, None, :] - stacked.u_up[:, None, :, :]
    diff_up = stacked.u_up[:, :, None, :] - stacked.u_low[:, None, :, :]
    off_diagonal = ~np.eye(n, dtype=bool)[None, :, :]

    candidate = off_diagonal & (diff_low.max(axis=3) >= -_FEAS_TOL)
    worst_ok = candidate & (diff_low.min(axis=3) >= -_FEAS_TOL)
    polytopes: dict = {}

    def polytope(k: int):
        if k not in polytopes:
            polytopes[k] = weight_polytope(stacked.members[k])
        return polytopes[k]

    for k, i, j in np.argwhere(candidate & ~worst_ok):
        a_eq, b_eq, bounds = polytope(k)
        res = solve_lp(diff_low[k, i, j], None, None, a_eq, b_eq, bounds)
        value = (
            float(res.fun)
            if res.success
            else box_simplex_minimum(diff_low[k, i, j], bounds)
        )
        if value >= -_FEAS_TOL:
            worst_ok[k, i, j] = True

    du_min = diff_up.min(axis=3)
    du_max = diff_up.max(axis=3)
    strict = worst_ok & (du_min > _FEAS_TOL)
    undecided = worst_ok & ~strict & (du_max > -_FEAS_TOL)
    for k, i, j in np.argwhere(undecided):
        a_eq, b_eq, bounds = polytope(k)
        res = solve_lp(-diff_up[k, i, j], None, None, a_eq, b_eq, bounds)
        value = (
            -float(res.fun)
            if res.success
            else -box_simplex_minimum(-diff_up[k, i, j], bounds)
        )
        if value > _FEAS_TOL:
            strict[k, i, j] = True
    return strict


# ----------------------------------------------------------------------
# The batch evaluator
# ----------------------------------------------------------------------

class BatchEvaluator:
    """Array-program evaluation over a compiled decision problem.

    One instance answers every question the paper's workflow asks —
    utility intervals, the Fig. 6 ranking, weight-scenario sweeps,
    dominance/rank-interval screening and the §V Monte Carlo — without
    re-walking the problem's object graph and without Python loops over
    scenarios or alternatives.
    """

    def __init__(
        self, source: Union[DecisionProblem, CompiledProblem, object]
    ) -> None:
        """Wrap ``source`` (problem, compiled form or AdditiveModel)."""
        self.compiled = _as_compiled(source)

    # -- §IV: overall-utility intervals and the Fig. 6 ranking ---------
    def minimum_utilities(self) -> np.ndarray:
        """(n_alternatives,) lower overall utilities (table order)."""
        return self.compiled.u_low @ self.compiled.w_low

    def average_utilities(self) -> np.ndarray:
        """(n_alternatives,) average overall utilities (table order)."""
        return self.compiled.u_avg @ self.compiled.w_avg

    def maximum_utilities(self) -> np.ndarray:
        """(n_alternatives,) upper overall utilities (table order)."""
        return self.compiled.u_up @ self.compiled.w_up

    def utility_intervals(self) -> Tuple[Interval, ...]:
        """[min, max] overall utility per alternative (table order)."""
        mins = self.minimum_utilities()
        maxs = self.maximum_utilities()
        return tuple(
            Interval(float(lo), float(up)) for lo, up in zip(mins, maxs)
        )

    def ranking_order(self) -> np.ndarray:
        """Alternative indices by decreasing average utility.

        Ties break on the alternative name, exactly like the scalar
        ``AdditiveModel.evaluate``.
        """
        avgs = self.average_utilities()
        names = np.array(self.compiled.alternative_names)
        return np.lexsort((names, -avgs))

    def evaluate(self):
        """The Fig. 6 ranking as a :class:`repro.core.model.Evaluation`."""
        from .model import Evaluation, RankedAlternative

        mins = self.minimum_utilities()
        avgs = self.average_utilities()
        maxs = self.maximum_utilities()
        rows = tuple(
            RankedAlternative(
                name=self.compiled.alternative_names[i],
                minimum=float(mins[i]),
                average=float(avgs[i]),
                maximum=float(maxs[i]),
                rank=rank,
            )
            for rank, i in enumerate(self.ranking_order(), start=1)
        )
        return Evaluation(self.compiled.name, rows)

    # -- weight-scenario sweeps ----------------------------------------
    def utilities_for_weights(self, weights: np.ndarray) -> np.ndarray:
        """Overall utilities under explicit weight scenarios.

        ``weights`` is one vector ``(n_attributes,)`` or a scenario
        matrix ``(n_scenarios, n_attributes)``; component utilities sit
        at their class averages, as in §V.  Returns ``(n_alternatives,)``
        or ``(n_alternatives, n_scenarios)`` to match the historical
        ``AdditiveModel.utilities_for_weights`` contract.
        """
        w = np.asarray(weights, dtype=float)
        if w.ndim == 1:
            if w.shape[0] != self.compiled.n_attributes:
                raise ValueError(
                    f"expected {self.compiled.n_attributes} weights, "
                    f"got {w.shape[0]}"
                )
            return self.compiled.u_avg @ w
        if w.shape[1] != self.compiled.n_attributes:
            raise ValueError(
                f"expected weight rows of length {self.compiled.n_attributes}, "
                f"got {w.shape[1]}"
            )
        return self.compiled.u_avg @ w.T

    def scenario_ranks(self, weights: np.ndarray) -> np.ndarray:
        """1-based ranks per weight scenario, ``(n_scenarios, n_alt)``."""
        w = np.asarray(weights, dtype=float)
        if w.ndim == 1:
            w = w[None, :]
        return rank_matrix(self.utilities_for_weights(w).T)

    # -- §V: Monte Carlo -----------------------------------------------
    def sample_weights(
        self,
        method: str,
        n_simulations: int,
        rng: np.random.Generator,
        order_groups: Optional[Sequence[Sequence[int]]] = None,
        reject_outside: bool = False,
    ) -> Tuple[np.ndarray, float]:
        """(weights, acceptance_rate) for one §V simulation class."""
        n = self.compiled.n_attributes
        if method == "random":
            return sample_simplex(n, n_simulations, rng), 1.0
        if method == "rank_order":
            if order_groups is None:
                order = np.argsort(-self.compiled.w_avg, kind="stable")
                order_groups = [[int(i)] for i in order]
            return sample_rank_order(order_groups, n, n_simulations, rng), 1.0
        if method == "intervals":
            return sample_in_intervals(
                self.compiled.w_low,
                self.compiled.w_up,
                n_simulations,
                rng,
                reject_outside,
            )
        raise ValueError(
            f"unknown method {method!r}; expected 'random', 'rank_order' "
            "or 'intervals'"
        )

    def _sampled_utility_tensor(
        self, n_simulations: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Full utility sampling as one (S, n_alt, n_att) gather.

        Per attribute, one draw per utility class shared by every
        alternative on the same level — the coupling that makes a draw
        a utility *function* — then made monotone along the preference
        order with a cumulative max.  All attributes and simulations
        are drawn in a single uniform call over the padded key tensor.
        """
        c = self.compiled
        draws = rng.uniform(
            c.key_low[None, :, :],
            c.key_up[None, :, :],
            size=(n_simulations, c.n_attributes, c.key_low.shape[1]),
        )
        draws = np.maximum.accumulate(draws, axis=2)
        attr_index = np.arange(c.n_attributes)[None, :]
        # u[s, i, j] = draws[s, j, alt_key[j, i]]
        return draws[:, attr_index, c.alt_key.T]

    def monte_carlo_utilities(
        self,
        weights: np.ndarray,
        rng: np.random.Generator,
        sample_utilities: Union[bool, str] = False,
    ) -> np.ndarray:
        """(n_simulations, n_alternatives) overall utilities.

        The ``"missing"`` path reproduces the historical scalar
        implementation bit-for-bit: the same single uniform draw over
        the missing cells, and per-cell corrections accumulated in the
        same (row-major cell) order via an unbuffered scatter-add.
        """
        c = self.compiled
        n_simulations = weights.shape[0]
        if sample_utilities in (True, "all"):
            u = self._sampled_utility_tensor(n_simulations, rng)
            return np.einsum("saj,sj->sa", u, weights)
        if sample_utilities == "missing":
            utilities = weights @ c.u_avg.T
            if c.missing.any():
                cells = np.argwhere(c.missing)
                rows, cols = cells[:, 0], cells[:, 1]
                draws = rng.uniform(0.0, 1.0, size=(n_simulations, len(cells)))
                delta = draws - c.u_avg[rows, cols][None, :]
                np.add.at(
                    utilities, (slice(None), rows), weights[:, cols] * delta
                )
            return utilities
        if sample_utilities is not False:
            raise ValueError(
                f"sample_utilities must be False, True, 'all' or 'missing', "
                f"got {sample_utilities!r}"
            )
        return weights @ c.u_avg.T

    def monte_carlo_ranks(
        self,
        method: str = "intervals",
        n_simulations: int = 10_000,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        order_groups: Optional[Sequence[Sequence[int]]] = None,
        sample_utilities: Union[bool, str] = False,
        reject_outside: bool = False,
    ) -> Tuple[np.ndarray, float]:
        """One §V simulation class as raw arrays: (ranks, acceptance)."""
        if n_simulations < 1:
            raise ValueError("n_simulations must be positive")
        if rng is None:
            rng = np.random.default_rng(seed)
        weights, acceptance = self.sample_weights(
            method, n_simulations, rng, order_groups, reject_outside
        )
        utilities = self.monte_carlo_utilities(weights, rng, sample_utilities)
        return rank_matrix(utilities), acceptance

    def simulate(self, **kwargs):
        """Full §V Monte Carlo as a
        :class:`repro.core.montecarlo.MonteCarloResult`."""
        from .montecarlo import MonteCarloResult

        method = kwargs.get("method", "intervals")
        ranks, acceptance = self.monte_carlo_ranks(**kwargs)
        return MonteCarloResult(
            self.compiled.alternative_names, ranks, method, acceptance
        )

    # -- §V: screening --------------------------------------------------
    def dominance_matrix(self, solver: str = "scipy") -> np.ndarray:
        """(n_alt, n_alt) boolean strict-dominance matrix (§V LPs)."""
        from .dominance import dominance_matrix as _dominance_matrix

        with _stage(
            "eval.dominance", n_alternatives=self.compiled.n_alternatives
        ):
            return _dominance_matrix(self.compiled, solver=solver)

    def rank_intervals(self, solver: str = "scipy"):
        """Best/worst attainable rank per alternative, from dominance."""
        from .rankintervals import rank_intervals as _rank_intervals

        matrix = self.dominance_matrix(solver)
        with _stage(
            "eval.rankintervals",
            n_alternatives=self.compiled.n_alternatives,
        ):
            return _rank_intervals(self, matrix=matrix)

    # -- group decision support (the members axis) ----------------------
    def _check_roster(self, roster: CompiledRoster) -> None:
        if roster.n_attributes != self.compiled.n_attributes:
            raise ValueError(
                f"roster covers {roster.n_attributes} attributes but the "
                f"problem has {self.compiled.n_attributes}"
            )

    def member_average_utilities(self, roster: CompiledRoster) -> np.ndarray:
        """(n_members, n_alternatives) average overall utilities.

        One batched matrix-vector product over the members axis; member
        ``m``'s slice is bit-identical to evaluating
        ``problem.with_weights(members[m].weights)`` through the scalar
        path (same per-slice operand shapes, same kernel).
        """
        self._check_roster(roster)
        c = self.compiled
        return np.matmul(
            c.u_avg[None, :, :], roster.w_avg[:, :, None]
        )[..., 0]

    def member_ranking_orders(self, roster: CompiledRoster) -> np.ndarray:
        """(n_members, n_alt) alternative indices by decreasing utility.

        Per member, ties break on the alternative name — the same
        stable tie-break as :meth:`ranking_order` — via one lexsort
        over the whole members axis.
        """
        avgs = self.member_average_utilities(roster)
        names = np.broadcast_to(
            np.array(self.compiled.alternative_names), avgs.shape
        )
        return np.lexsort((names, -avgs), axis=-1)

    def member_rankings(
        self, roster: CompiledRoster
    ) -> Tuple[Tuple[str, ...], ...]:
        """Per-member name rankings, roster order."""
        names = self.compiled.alternative_names
        return tuple(
            tuple(names[i] for i in order)
            for order in self.member_ranking_orders(roster)
        )

    def borda_order(self, roster: CompiledRoster) -> Tuple[str, ...]:
        """Borda aggregation of the member rankings (ties by name).

        Integer Borda points computed from the member rank tensor in
        one reduction — identical to the scalar
        :func:`repro.core.group.borda_ranking` over the per-member
        rankings.
        """
        orders = self.member_ranking_orders(roster)
        m, n = orders.shape
        ranks = np.empty_like(orders)
        rows = np.arange(m)[:, None]
        ranks[rows, orders] = np.arange(1, n + 1)[None, :]
        points = m * n - ranks.sum(axis=0)
        names = np.array(self.compiled.alternative_names)
        return tuple(names[i] for i in np.lexsort((names, -points)))

    def group_evaluation(
        self, roster: CompiledRoster, method: str = "intersection"
    ):
        """The aggregated group ranking as a Fig. 6 ``Evaluation``.

        Evaluates the roster's aggregated (consensus or tolerant)
        weight vectors through a reweighted view of the compiled
        problem — bit-identical to compiling
        ``problem.with_weights(aggregate_weights(members, method))``.
        Raises ``ValueError`` for an intersection over disjoint member
        intervals, exactly like the scalar path.
        """
        self._check_roster(roster)
        w_low, w_avg, w_up = roster.aggregated_vectors(method)
        return BatchEvaluator(
            self.compiled.reweighted(w_low, w_avg, w_up)
        ).evaluate()

    def group_result(self, roster: CompiledRoster) -> GroupResult:
        """The full group outcome for this problem in one array program.

        Per-member rankings, Borda aggregation, the tolerant (hull)
        ranking, the consensus (intersection) ranking — ``None`` with
        the offending objectives listed in ``disjoint`` when member
        intervals are irreconcilable — and the per-objective
        disagreement profile.
        """
        disjoint = roster.disjoint_nodes
        consensus: Optional[Tuple[str, ...]] = None
        if not disjoint:
            try:
                consensus = self.group_evaluation(
                    roster, "intersection"
                ).names_by_rank
            except ValueError:
                # degenerate intersection (e.g. all-zero sibling
                # weights): no consensus system exists
                consensus = None
        return GroupResult(
            member_names=roster.member_names,
            member_rankings=self.member_rankings(roster),
            borda=self.borda_order(roster),
            tolerant=self.group_evaluation(roster, "hull").names_by_rank,
            consensus=consensus,
            disjoint=disjoint,
            disagreement=tuple(roster.disagreement().items()),
        )

    @property
    def alternative_names(self) -> Tuple[str, ...]:
        """Alternative names in performance-table order."""
        return self.compiled.alternative_names

    @property
    def n_attributes(self) -> int:
        """Leaf attributes of the underlying compiled problem."""
        return self.compiled.n_attributes

    @property
    def n_alternatives(self) -> int:
        """Alternatives of the underlying compiled problem."""
        return self.compiled.n_alternatives


# ----------------------------------------------------------------------
# The stacked evaluator — many problems per array program
# ----------------------------------------------------------------------

class StackedEvaluator:
    """Array-program evaluation over a whole stack of problems.

    Mirrors :class:`BatchEvaluator` with one extra leading
    ``n_problems`` axis on every tensor: rankings, utility intervals,
    dominance matrices and Monte Carlo sweeps evaluate the entire stack
    at once.  All linear algebra runs through batched ``np.matmul`` (or
    batched ``einsum`` exactly where the per-problem path uses einsum)
    with per-slice operand shapes identical to the per-problem path, so
    member ``p``'s outputs are bit-identical to
    ``BatchEvaluator(stack.members[p])``.

    Monte Carlo keeps one seeded RNG stream *per member* — the draws
    loop over members (that is the contract that makes stacked output
    equal per-problem output exactly) while utilities, corrections and
    ranks evaluate stacked.
    """

    def __init__(self, stacked: Union[StackedProblem, Sequence[CompiledProblem]]) -> None:
        """Wrap a stack (or stack a compiled-problem sequence)."""
        if not isinstance(stacked, StackedProblem):
            stacked = StackedProblem(list(stacked))
        self.stacked = stacked

    # -- deterministic readings ----------------------------------------
    def minimum_utilities(self) -> np.ndarray:
        """(P, n_alternatives) lower overall utilities."""
        s = self.stacked
        return np.matmul(s.u_low, s.w_low[:, :, None])[..., 0]

    def average_utilities(self) -> np.ndarray:
        """(P, n_alternatives) average overall utilities."""
        s = self.stacked
        return np.matmul(s.u_avg, s.w_avg[:, :, None])[..., 0]

    def maximum_utilities(self) -> np.ndarray:
        """(P, n_alternatives) upper overall utilities."""
        s = self.stacked
        return np.matmul(s.u_up, s.w_up[:, :, None])[..., 0]

    def ranking_orders(self) -> np.ndarray:
        """(P, n_alt) alternative indices by decreasing average utility.

        Per problem, ties break on the alternative name — the same
        stable tie-break as :meth:`BatchEvaluator.ranking_order` — via
        one lexsort over the whole stack.
        """
        avgs = self.average_utilities()
        names = np.array(
            [m.alternative_names for m in self.stacked.members]
        )
        return np.lexsort((names, -avgs), axis=-1)

    def evaluate_all(self) -> Tuple[object, ...]:
        """One Fig. 6 :class:`~repro.core.model.Evaluation` per member."""
        from .model import Evaluation, RankedAlternative

        mins = self.minimum_utilities()
        avgs = self.average_utilities()
        maxs = self.maximum_utilities()
        orders = self.ranking_orders()
        evaluations = []
        for p, member in enumerate(self.stacked.members):
            rows = tuple(
                RankedAlternative(
                    name=member.alternative_names[i],
                    minimum=float(mins[p, i]),
                    average=float(avgs[p, i]),
                    maximum=float(maxs[p, i]),
                    rank=rank,
                )
                for rank, i in enumerate(orders[p], start=1)
            )
            evaluations.append(Evaluation(member.name, rows))
        return tuple(evaluations)

    # -- weight-scenario sweeps ----------------------------------------
    def utilities_for_weights(self, weights: np.ndarray) -> np.ndarray:
        """Overall utilities under per-problem weight scenarios.

        ``weights`` is ``(n_problems, n_scenarios, n_attributes)``;
        component utilities sit at their class averages.  Returns
        ``(n_problems, n_scenarios, n_alternatives)``.
        """
        w = np.asarray(weights, dtype=float)
        s = self.stacked
        if w.ndim != 3 or w.shape[0] != s.n_problems or w.shape[2] != s.n_attributes:
            raise ValueError(
                f"expected weights of shape ({s.n_problems}, n_scenarios, "
                f"{s.n_attributes}), got {w.shape}"
            )
        return np.matmul(w, s.u_avg.transpose(0, 2, 1))

    def scenario_ranks(self, weights: np.ndarray) -> np.ndarray:
        """(P, n_scenarios, n_alt) 1-based ranks per weight scenario."""
        utilities = self.utilities_for_weights(weights)
        p, n_scen, n_alt = utilities.shape
        return rank_matrix(utilities.reshape(p * n_scen, n_alt)).reshape(
            p, n_scen, n_alt
        )

    # -- §V: Monte Carlo over the whole stack --------------------------
    def _member_rngs(
        self,
        seed: Union[None, int, Sequence[Optional[int]]],
    ) -> List[np.random.Generator]:
        """One independent generator per member (the exactness contract)."""
        p = self.stacked.n_problems
        if seed is None or isinstance(seed, (int, np.integer)):
            seeds: List[Optional[int]] = [seed] * p  # type: ignore[list-item]
        else:
            seeds = list(seed)
            if len(seeds) != p:
                raise ValueError(
                    f"need one seed per member: expected {p}, got {len(seeds)}"
                )
        return [np.random.default_rng(s) for s in seeds]

    def monte_carlo_ranks(
        self,
        method: str = "intervals",
        n_simulations: int = 10_000,
        seed: Union[None, int, Sequence[Optional[int]]] = None,
        order_groups: Optional[Sequence[Sequence[int]]] = None,
        sample_utilities: Union[bool, str] = False,
        reject_outside: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One §V simulation class for every member at once.

        Returns ``(ranks, acceptance_rates)`` with ``ranks`` of shape
        ``(n_problems, n_simulations, n_alternatives)``.  ``seed`` is a
        single seed applied to every member's own fresh RNG stream, or
        a per-member sequence; member ``p``'s rank slice equals
        ``BatchEvaluator(members[p]).monte_carlo_ranks(seed=seed_p)``
        exactly.
        """
        if n_simulations < 1:
            raise ValueError("n_simulations must be positive")
        s = self.stacked
        rngs = self._member_rngs(seed)

        # Per-member draws (the RNG streams), stacked evaluation below.
        weights = np.empty((s.n_problems, n_simulations, s.n_attributes))
        acceptance = np.ones(s.n_problems)
        for p, member in enumerate(s.members):
            w_p, acc = BatchEvaluator(member).sample_weights(
                method, n_simulations, rngs[p], order_groups, reject_outside
            )
            weights[p] = w_p
            acceptance[p] = acc

        utilities = self._monte_carlo_utilities(
            weights, rngs, sample_utilities
        )
        n_alt = s.n_alternatives
        ranks = rank_matrix(
            utilities.reshape(s.n_problems * n_simulations, n_alt)
        ).reshape(s.n_problems, n_simulations, n_alt)
        return ranks, acceptance

    def _monte_carlo_utilities(
        self,
        weights: np.ndarray,
        rngs: Sequence[np.random.Generator],
        sample_utilities: Union[bool, str],
    ) -> np.ndarray:
        """(P, S, n_alt) overall utilities for stacked weight scenarios."""
        s = self.stacked
        n_sims = weights.shape[1]
        if sample_utilities in (True, "all"):
            u = self._sampled_utility_tensor(n_sims, rngs)
            return np.einsum("psaj,psj->psa", u, weights)
        if sample_utilities == "missing":
            utilities = np.matmul(weights, s.u_avg.transpose(0, 2, 1))
            self._apply_missing_corrections(utilities, weights, rngs)
            return utilities
        if sample_utilities is not False:
            raise ValueError(
                f"sample_utilities must be False, True, 'all' or 'missing', "
                f"got {sample_utilities!r}"
            )
        return np.matmul(weights, s.u_avg.transpose(0, 2, 1))

    def _apply_missing_corrections(
        self,
        utilities: np.ndarray,
        weights: np.ndarray,
        rngs: Sequence[np.random.Generator],
    ) -> None:
        """The ref.-[18] missing-cell draws as one padded scatter-add.

        Each member's uniform draws come from its own RNG stream (bit
        compatibility with the per-problem path); the correction itself
        is a single unbuffered ``np.add.at`` over the whole stack,
        iterating cells in the same per-problem row-major order so
        repeated target rows accumulate identically.
        """
        s = self.stacked
        n_sims = weights.shape[1]
        cell_lists = [np.argwhere(m.missing) for m in s.members]
        max_cells = max((len(c) for c in cell_lists), default=0)
        if max_cells == 0:
            # Still no RNG to consume: the per-problem path draws only
            # when the member has missing cells.
            return
        p = s.n_problems
        rows = np.zeros((p, max_cells), dtype=np.intp)
        cols = np.zeros((p, max_cells), dtype=np.intp)
        delta = np.zeros((p, n_sims, max_cells))
        for k, cells in enumerate(cell_lists):
            if not len(cells):
                continue
            r, c = cells[:, 0], cells[:, 1]
            draws = rngs[k].uniform(0.0, 1.0, size=(n_sims, len(cells)))
            rows[k, : len(cells)] = r
            cols[k, : len(cells)] = c
            delta[k, :, : len(cells)] = draws - s.u_avg[k, r, c][None, :]
        vals = (
            np.take_along_axis(
                weights, np.broadcast_to(cols[:, None, :], delta.shape), axis=2
            )
            * delta
        )
        p_idx = np.broadcast_to(
            np.arange(p)[:, None, None], delta.shape
        )
        s_idx = np.broadcast_to(
            np.arange(n_sims)[None, :, None], delta.shape
        )
        r_idx = np.broadcast_to(rows[:, None, :], delta.shape)
        np.add.at(utilities, (p_idx, s_idx, r_idx), vals)

    def _sampled_utility_tensor(
        self, n_simulations: int, rngs: Sequence[np.random.Generator]
    ) -> np.ndarray:
        """Full utility sampling for the stack: (P, S, n_alt, n_att).

        Draws per member over the member's *own* padded key tensor (so
        the RNG stream matches the per-problem path draw for draw),
        then monotonises and gathers the whole stack at once.
        """
        s = self.stacked
        max_keys = s.key_low.shape[2]
        draws = np.zeros(
            (s.n_problems, n_simulations, s.n_attributes, max_keys)
        )
        for p, member in enumerate(s.members):
            k = member.key_low.shape[1]
            draws[p, :, :, :k] = rngs[p].uniform(
                member.key_low[None, :, :],
                member.key_up[None, :, :],
                size=(n_simulations, member.n_attributes, k),
            )
        draws = np.maximum.accumulate(draws, axis=3)
        # Advanced-index gather: u[p, s, i, j] = draws[p, s, j, key] with
        # key = alt_key[p, j, i].
        alt_key_t = s.alt_key.transpose(0, 2, 1)  # (P, n_alt, n_att)
        return draws[
            np.arange(s.n_problems)[:, None, None, None],
            np.arange(n_simulations)[None, :, None, None],
            np.arange(s.n_attributes)[None, None, None, :],
            alt_key_t[:, None, :, :],
        ]

    def simulate_all(self, **kwargs) -> Tuple[object, ...]:
        """Full §V Monte Carlo per member, as MonteCarloResult objects."""
        from .montecarlo import MonteCarloResult

        method = kwargs.get("method", "intervals")
        ranks, acceptance = self.monte_carlo_ranks(**kwargs)
        return tuple(
            MonteCarloResult(
                member.alternative_names,
                ranks[p],
                method,
                float(acceptance[p]),
            )
            for p, member in enumerate(self.stacked.members)
        )

    # -- §V: screening --------------------------------------------------
    def dominance_matrices(self, solver: str = "scipy") -> np.ndarray:
        """(P, n, n) stacked dominance tensor (envelope screen + LPs)."""
        from .dominance import _lp_solver

        return stacked_dominance(self.stacked, _lp_solver(solver))

    def rank_intervals_all(self, solver: str = "scipy") -> Tuple[dict, ...]:
        """Attainable-rank intervals per member, from one stacked screen."""
        from .rankintervals import rank_intervals as _rank_intervals

        matrices = self.dominance_matrices(solver)
        return tuple(
            _rank_intervals(member, matrix=matrices[p])
            for p, member in enumerate(self.stacked.members)
        )

    # -- group decision support over the whole stack --------------------
    def _check_stacked_roster(self, roster: StackedRoster) -> None:
        s = self.stacked
        if roster.n_problems != s.n_problems:
            raise ValueError(
                f"stacked roster covers {roster.n_problems} problems but "
                f"the stack holds {s.n_problems}"
            )
        if roster.n_attributes != s.n_attributes:
            raise ValueError(
                f"stacked roster covers {roster.n_attributes} attributes "
                f"but the stack has {s.n_attributes}"
            )

    def _stack_names(self) -> np.ndarray:
        return np.array([m.alternative_names for m in self.stacked.members])

    def group_member_utilities(self, roster: StackedRoster) -> np.ndarray:
        """(P, n_members, n_alt) per-member average overall utilities.

        One batched matmul over both the problem and the members axes;
        slice ``[p, m]`` is bit-identical to the scalar per-member
        evaluation of problem ``p`` under member ``m``'s weights.
        """
        self._check_stacked_roster(roster)
        s = self.stacked
        return np.matmul(
            s.u_avg[:, None, :, :], roster.w_avg[:, :, :, None]
        )[..., 0]

    def group_member_orders(self, roster: StackedRoster) -> np.ndarray:
        """(P, M, n_alt) ranking orders, name tie-break, one lexsort."""
        avgs = self.group_member_utilities(roster)
        names = np.broadcast_to(self._stack_names()[:, None, :], avgs.shape)
        return np.lexsort((names, -avgs), axis=-1)

    def group_results(self, roster: StackedRoster) -> Tuple[GroupResult, ...]:
        """One :class:`GroupResult` per stack member, evaluated stacked.

        Member utilities, ranking orders and Borda points run over the
        full ``(P, M, n_alt)`` tensors; the aggregated (consensus /
        tolerant) weight vectors are gathered per roster and evaluated
        as stacked matrix-vector products.  Member ``p``'s result is
        identical to ``BatchEvaluator(members[p]).group_result(...)``.
        """
        self._check_stacked_roster(roster)
        s = self.stacked
        p, m, n = s.n_problems, roster.n_members, s.n_alternatives
        orders = self.group_member_orders(roster)
        names_arr = self._stack_names()

        # Borda: scatter orders back to 1-based ranks, reduce members.
        ranks = np.empty_like(orders)
        p_idx = np.arange(p)[:, None, None]
        m_idx = np.arange(m)[None, :, None]
        ranks[p_idx, m_idx, orders] = np.arange(1, n + 1)[None, None, :]
        points = m * n - ranks.sum(axis=1)
        borda_orders = np.lexsort((names_arr, -points), axis=-1)

        # Aggregated weight vectors per problem (tiny, object-graph
        # level); the evaluation itself stays stacked.
        tol_w = np.stack(
            [r.aggregated_vectors("hull")[1] for r in roster.rosters]
        )
        cons_w = np.zeros((p, s.n_attributes))
        cons_ok = np.zeros(p, dtype=bool)
        for k, r in enumerate(roster.rosters):
            if r.disjoint_nodes:
                continue
            try:
                cons_w[k] = r.aggregated_vectors("intersection")[1]
            except ValueError:
                continue
            cons_ok[k] = True
        tol_avgs = np.matmul(s.u_avg, tol_w[:, :, None])[..., 0]
        cons_avgs = np.matmul(s.u_avg, cons_w[:, :, None])[..., 0]
        tol_orders = np.lexsort((names_arr, -tol_avgs), axis=-1)
        cons_orders = np.lexsort((names_arr, -cons_avgs), axis=-1)

        results = []
        for k, r in enumerate(roster.rosters):
            names = self.stacked.members[k].alternative_names
            consensus = (
                tuple(names[i] for i in cons_orders[k])
                if cons_ok[k]
                else None
            )
            results.append(
                GroupResult(
                    member_names=r.member_names,
                    member_rankings=tuple(
                        tuple(names[i] for i in order)
                        for order in orders[k]
                    ),
                    borda=tuple(names[i] for i in borda_orders[k]),
                    tolerant=tuple(names[i] for i in tol_orders[k]),
                    consensus=consensus,
                    disjoint=r.disjoint_nodes,
                    disagreement=tuple(r.disagreement().items()),
                )
            )
        return tuple(results)

    # ------------------------------------------------------------------
    @property
    def n_problems(self) -> int:
        """Stack size ``P`` (the leading axis of every result)."""
        return self.stacked.n_problems

    @property
    def n_alternatives(self) -> int:
        """Alternatives per member of the underlying stack."""
        return self.stacked.n_alternatives

    @property
    def n_attributes(self) -> int:
        """Leaf attributes per member of the underlying stack."""
        return self.stacked.n_attributes
