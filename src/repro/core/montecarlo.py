"""Monte Carlo sensitivity analysis (§V, Figs. 9-10).

"Using Monte Carlo simulation techniques simultaneous changes can be
made to the weights and generate results that can be easily analyzed
statistically to provide more insight into the multi-attribute model
recommendations."  The paper runs 10,000 simulations and inspects a
multiple boxplot of the rank distributions (Fig. 9) plus a statistics
table — mode, minimum, maximum, mean, standard deviation and the
25th/50th/75th percentiles (Fig. 10).

Three classes of simulation are supported, exactly as §V lists them:

* ``random`` — attribute weights completely at random (uniform on the
  weight simplex; no knowledge of relative importance),
* ``rank_order`` — random weights preserving a total or partial
  attribute rank order (the order of the elicited averages by default),
* ``intervals`` — weights drawn inside the elicited Fig. 5 intervals,
  renormalised onto the simplex.

Component utilities are taken at their class averages by default
("changes can be made to the weights").  Two sampling extensions are
available:

* ``sample_utilities="missing"`` — draw a fresh utility in [0, 1] for
  every *missing* performance (each unknown cell is an independent
  unknown fact; the paper's ref. [18] assigns it the whole [0, 1]
  interval), keeping elicited class utilities at their averages.  This
  is the setting that reproduces the Fig. 10 pattern where exactly the
  candidates with unknown performances have fluctuating ranks while
  fully-known candidates sit still.
* ``sample_utilities=True`` (or ``"all"``) — additionally draw every
  component utility inside its class envelope, shared across
  alternatives that sit on the same level, which preserves the
  coupling a utility *function* imposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .interval import Interval
from .model import AdditiveModel
from .performance import UncertainValue
from .problem import DecisionProblem
from .scales import MISSING

__all__ = [
    "sample_simplex",
    "sample_rank_order",
    "sample_in_intervals",
    "RankStatistics",
    "MonteCarloResult",
    "simulate",
]


# ----------------------------------------------------------------------
# Weight generators (the three §V simulation classes)
# ----------------------------------------------------------------------

def sample_simplex(
    n_attributes: int, n_samples: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform samples from the weight simplex.

    The classic exponential-spacings construction: normalised i.i.d.
    exponentials are uniform on ``{w >= 0 : sum w = 1}``.  This is §V's
    first simulation class — "attribute weights completely at random
    (there is no knowledge whatsoever of the relative importance of the
    attributes)".
    """
    if n_attributes < 1:
        raise ValueError("need at least one attribute")
    if n_samples < 1:
        raise ValueError("need at least one sample")
    raw = rng.exponential(scale=1.0, size=(n_samples, n_attributes))
    return raw / raw.sum(axis=1, keepdims=True)


def sample_rank_order(
    groups: Sequence[Sequence[int]],
    n_attributes: int,
    n_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Simplex samples preserving a total or partial attribute rank order.

    ``groups`` lists attribute indices from most to least important;
    attributes inside one group are unordered relative to each other
    (the *partial* order case).  Singleton groups everywhere give a
    total order.  Sampling: draw uniformly on the simplex, sort each
    sample descending, hand the largest values to the first group
    (shuffled within the group), the next largest to the second, and so
    on — the standard construction for rank-order-constrained simplex
    sampling.
    """
    flat = [i for group in groups for i in group]
    if sorted(flat) != list(range(n_attributes)):
        raise ValueError(
            "groups must partition the attribute indices "
            f"0..{n_attributes - 1}; got {groups!r}"
        )
    base = sample_simplex(n_attributes, n_samples, rng)
    base.sort(axis=1)
    base = base[:, ::-1]  # descending: position 0 = largest weight
    result = np.empty_like(base)
    cursor = 0
    for group in groups:
        size = len(group)
        block = base[:, cursor:cursor + size]
        if size == 1:
            result[:, group[0]] = block[:, 0]
        else:
            # Shuffle the block's columns independently per sample so
            # within-group order is uniform.
            perm = np.argsort(rng.random((n_samples, size)), axis=1)
            shuffled = np.take_along_axis(block, perm, axis=1)
            for k, attr in enumerate(group):
                result[:, attr] = shuffled[:, k]
        cursor += size
    return result


def sample_in_intervals(
    lower: np.ndarray,
    upper: np.ndarray,
    n_samples: int,
    rng: np.random.Generator,
    reject_outside: bool = False,
    max_batches: int = 200,
) -> Tuple[np.ndarray, float]:
    """Weights drawn within elicited intervals, renormalised to sum 1.

    GMAA's third simulation class: "attribute weights can be randomly
    assigned values taking into account the elicited weight intervals"
    (Fig. 5).  Each attribute weight is drawn uniformly in its interval
    and the vector is divided by its sum.  With ``reject_outside`` the
    renormalised vector must also remain inside the intervals (the
    normalised-box polytope); samples violating that are redrawn.

    Returns ``(weights, acceptance_rate)``; the acceptance rate is 1.0
    when no rejection was requested.
    """
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    if lower.shape != upper.shape or lower.ndim != 1:
        raise ValueError("lower and upper must be 1-D arrays of equal length")
    if np.any(lower < 0) or np.any(lower > upper):
        raise ValueError("need 0 <= lower <= upper per attribute")
    if float(lower.sum()) > 1.0 + 1e-9 or float(upper.sum()) < 1.0 - 1e-9:
        raise ValueError(
            "weight intervals do not intersect the simplex: "
            f"sum of lowers {lower.sum():.4f}, sum of uppers {upper.sum():.4f}"
        )
    n = lower.shape[0]
    if not reject_outside:
        raw = rng.uniform(lower, upper, size=(n_samples, n))
        return raw / raw.sum(axis=1, keepdims=True), 1.0

    accepted: List[np.ndarray] = []
    drawn = kept = 0
    tol = 1e-12
    for _ in range(max_batches):
        raw = rng.uniform(lower, upper, size=(n_samples, n))
        w = raw / raw.sum(axis=1, keepdims=True)
        ok = np.all(w >= lower - tol, axis=1) & np.all(w <= upper + tol, axis=1)
        drawn += n_samples
        kept += int(ok.sum())
        if ok.any():
            accepted.append(w[ok])
        if kept >= n_samples:
            break
    if kept < n_samples:
        raise RuntimeError(
            f"interval rejection sampling accepted only {kept} of the "
            f"requested {n_samples} samples after {drawn} draws; relax the "
            "intervals or disable reject_outside"
        )
    stacked = np.vstack(accepted)[:n_samples]
    return stacked, kept / drawn


# ----------------------------------------------------------------------
# Component-utility sampling (optional extension)
# ----------------------------------------------------------------------

class _UtilitySampler:
    """Draws component-utility matrices inside the class envelopes.

    For every attribute the distinct performance values define *keys*;
    a simulation draws one utility per key (uniform in its interval,
    then made monotone along the level order for discrete scales) and
    every alternative on the same key receives the same draw — the
    coupling that makes the draw a utility *function*, not independent
    noise per cell.
    """

    def __init__(self, problem: DecisionProblem, model: AdditiveModel) -> None:
        self._n_alt = model.n_alternatives
        self._n_att = model.n_attributes
        # Per attribute: list of interval bounds per key (ordered by
        # preference so monotonisation is meaningful), and the key index
        # of every alternative.
        self._key_lowers: List[np.ndarray] = []
        self._key_uppers: List[np.ndarray] = []
        self._alt_keys: List[np.ndarray] = []
        self._monotone: List[bool] = []
        for j, attr in enumerate(model.attribute_names):
            fn = problem.utility_function(attr)
            values = []
            for alt in problem.table.alternatives:
                perf = alt.performance(attr)
                if isinstance(perf, UncertainValue):
                    perf = perf.average
                values.append(perf)
            keys: List[object] = []
            for v in values:
                if v not in keys:
                    keys.append(v)
            # Order keys by their average utility so monotonisation
            # never flips preference.
            keys.sort(key=lambda v: fn.utility(v).midpoint)
            index = {id_key(v): k for k, v in enumerate(keys)}
            self._alt_keys.append(
                np.array([index[id_key(v)] for v in values], dtype=int)
            )
            intervals = [fn.utility(v) for v in keys]
            self._key_lowers.append(np.array([iv.lower for iv in intervals]))
            self._key_uppers.append(np.array([iv.upper for iv in intervals]))
            self._monotone.append(True)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """One (n_alternatives, n_attributes) utility matrix."""
        u = np.empty((self._n_alt, self._n_att))
        for j in range(self._n_att):
            draws = rng.uniform(self._key_lowers[j], self._key_uppers[j])
            if self._monotone[j]:
                draws = np.maximum.accumulate(draws)
            u[:, j] = draws[self._alt_keys[j]]
        return u


def id_key(value: object) -> object:
    """A hashable identity for a performance value (MISSING included)."""
    if value is MISSING:
        return "__missing__"
    return float(value)


def missing_mask(problem: DecisionProblem, model: AdditiveModel) -> np.ndarray:
    """Boolean (n_alternatives, n_attributes) mask of unknown cells."""
    mask = np.zeros((model.n_alternatives, model.n_attributes), dtype=bool)
    for i, alt in enumerate(problem.table.alternatives):
        for j, attr in enumerate(model.attribute_names):
            mask[i, j] = alt.performance(attr) is MISSING
    return mask


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RankStatistics:
    """One row of the Fig. 10 statistics table."""

    name: str
    mode: int
    minimum: int
    maximum: int
    mean: float
    std: float
    p25: float
    p50: float
    p75: float

    @property
    def fluctuation(self) -> int:
        """Total rank spread over the simulation (max - min)."""
        return self.maximum - self.minimum


@dataclass(frozen=True)
class BoxplotSummary:
    """Five-number summary of one alternative's rank distribution.

    Fig. 9 presents exactly this as a multiple boxplot: whiskers at the
    extremes, box from the 25th to the 75th percentile, the median
    inside.
    """

    name: str
    whisker_low: float
    q1: float
    median: float
    q3: float
    whisker_high: float


class MonteCarloResult:
    """Rank distributions from a Monte Carlo run.

    ``ranks[s, i]`` is the 1-based rank of alternative ``i`` in
    simulation ``s``.
    """

    def __init__(
        self,
        names: Sequence[str],
        ranks: np.ndarray,
        method: str,
        acceptance_rate: float = 1.0,
    ) -> None:
        ranks = np.asarray(ranks)
        if ranks.ndim != 2 or ranks.shape[1] != len(names):
            raise ValueError(
                f"ranks must be (n_simulations, {len(names)}), got {ranks.shape}"
            )
        self.names: Tuple[str, ...] = tuple(names)
        self.ranks = ranks
        self.method = method
        self.acceptance_rate = acceptance_rate
        self._index = {name: i for i, name in enumerate(self.names)}

    @property
    def n_simulations(self) -> int:
        return int(self.ranks.shape[0])

    def ranks_of(self, name: str) -> np.ndarray:
        try:
            return self.ranks[:, self._index[name]]
        except KeyError:
            raise KeyError(f"no alternative named {name!r}") from None

    # ------------------------------------------------------------------
    def statistics_for(self, name: str) -> RankStatistics:
        r = self.ranks_of(name)
        counts = np.bincount(r, minlength=len(self.names) + 1)
        return RankStatistics(
            name=name,
            mode=int(counts.argmax()),
            minimum=int(r.min()),
            maximum=int(r.max()),
            mean=float(r.mean()),
            std=float(r.std(ddof=0)),
            p25=float(np.percentile(r, 25)),
            p50=float(np.percentile(r, 50)),
            p75=float(np.percentile(r, 75)),
        )

    def statistics(self) -> Tuple[RankStatistics, ...]:
        """The Fig. 10 table, one row per alternative (input order)."""
        return tuple(self.statistics_for(name) for name in self.names)

    def boxplot_summary(self) -> Tuple[BoxplotSummary, ...]:
        """The Fig. 9 multiple boxplot, one entry per alternative."""
        result = []
        for name in self.names:
            r = self.ranks_of(name)
            result.append(
                BoxplotSummary(
                    name=name,
                    whisker_low=float(r.min()),
                    q1=float(np.percentile(r, 25)),
                    median=float(np.percentile(r, 50)),
                    q3=float(np.percentile(r, 75)),
                    whisker_high=float(r.max()),
                )
            )
        return tuple(result)

    # ------------------------------------------------------------------
    def ever_best(self) -> Tuple[str, ...]:
        """Alternatives that attain rank 1 in at least one simulation.

        §V: "Only two MM ontologies — Media Ontology and Boemie VDO —
        were ranked best across all 10,000 simulations."
        """
        hits = (self.ranks == 1).any(axis=0)
        return tuple(name for i, name in enumerate(self.names) if hits[i])

    def names_by_mean_rank(self) -> Tuple[str, ...]:
        order = np.argsort(self.ranks.mean(axis=0), kind="stable")
        return tuple(self.names[i] for i in order)

    def top_k_by_mean(self, k: int) -> Tuple[str, ...]:
        return self.names_by_mean_rank()[:k]

    def max_fluctuation(self, names: Optional[Sequence[str]] = None) -> int:
        """Largest rank spread among ``names`` (default: all).

        §V: "the rankings for the best five MM ontologies fluctuate by
        at most two positions throughout the simulation".
        """
        targets = self.names if names is None else tuple(names)
        return max(self.statistics_for(n).fluctuation for n in targets)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def _rank_matrix(utilities: np.ndarray) -> np.ndarray:
    """Per-simulation 1-based ranks from a (n_sims, n_alt) utility array.

    Ties resolve in alternative (column) order, matching the stable
    tie-break the deterministic evaluation uses.
    """
    order = np.argsort(-utilities, axis=1, kind="stable")
    ranks = np.empty_like(order)
    n_sims, n_alt = utilities.shape
    rows = np.arange(n_sims)[:, None]
    ranks[rows, order] = np.arange(1, n_alt + 1)[None, :]
    return ranks


def simulate(
    problem_or_model: Union[DecisionProblem, AdditiveModel],
    method: str = "intervals",
    n_simulations: int = 10_000,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    order_groups: Optional[Sequence[Sequence[int]]] = None,
    sample_utilities: Union[bool, str] = False,
    reject_outside: bool = False,
) -> MonteCarloResult:
    """Run one of §V's three Monte Carlo simulation classes.

    ``method`` is ``"random"``, ``"rank_order"`` or ``"intervals"``.
    ``order_groups`` (rank_order only) lists attribute-index groups from
    most to least important; by default each attribute forms its own
    group, ordered by the elicited average weights — a total order.
    ``sample_utilities``: ``False`` keeps component utilities at their
    class averages; ``"missing"`` draws each unknown performance's
    utility uniformly in [0, 1] per simulation (the ref.-[18] model);
    ``True``/``"all"`` additionally samples every component utility
    inside its class envelope (shared per level across alternatives).
    """
    if isinstance(problem_or_model, AdditiveModel):
        model = problem_or_model
    else:
        model = AdditiveModel(problem_or_model)
    if n_simulations < 1:
        raise ValueError("n_simulations must be positive")
    if rng is None:
        rng = np.random.default_rng(seed)

    n = model.n_attributes
    acceptance = 1.0
    if method == "random":
        weights = sample_simplex(n, n_simulations, rng)
    elif method == "rank_order":
        if order_groups is None:
            order = np.argsort(-model.w_avg, kind="stable")
            order_groups = [[int(i)] for i in order]
        weights = sample_rank_order(order_groups, n, n_simulations, rng)
    elif method == "intervals":
        weights, acceptance = sample_in_intervals(
            model.w_low, model.w_up, n_simulations, rng, reject_outside
        )
    else:
        raise ValueError(
            f"unknown method {method!r}; expected 'random', 'rank_order' "
            "or 'intervals'"
        )

    if sample_utilities in (True, "all"):
        sampler = _UtilitySampler(model.problem, model)
        utilities = np.empty((n_simulations, model.n_alternatives))
        for s in range(n_simulations):
            u = sampler.sample(rng)
            utilities[s] = u @ weights[s]
    elif sample_utilities == "missing":
        mask = missing_mask(model.problem, model)
        utilities = weights @ model.u_avg.T
        if mask.any():
            cells = np.argwhere(mask)
            draws = rng.uniform(0.0, 1.0, size=(n_simulations, len(cells)))
            for k, (i, j) in enumerate(cells):
                delta = draws[:, k] - model.u_avg[i, j]
                utilities[:, i] += weights[:, j] * delta
    elif sample_utilities is not False:
        raise ValueError(
            f"sample_utilities must be False, True, 'all' or 'missing', "
            f"got {sample_utilities!r}"
        )
    else:
        utilities = weights @ model.u_avg.T

    ranks = _rank_matrix(utilities)
    return MonteCarloResult(model.alternative_names, ranks, method, acceptance)
