"""Monte Carlo sensitivity analysis (§V, Figs. 9-10).

"Using Monte Carlo simulation techniques simultaneous changes can be
made to the weights and generate results that can be easily analyzed
statistically to provide more insight into the multi-attribute model
recommendations."  The paper runs 10,000 simulations and inspects a
multiple boxplot of the rank distributions (Fig. 9) plus a statistics
table — mode, minimum, maximum, mean, standard deviation and the
25th/50th/75th percentiles (Fig. 10).

Three classes of simulation are supported, exactly as §V lists them:

* ``random`` — attribute weights completely at random (uniform on the
  weight simplex; no knowledge of relative importance),
* ``rank_order`` — random weights preserving a total or partial
  attribute rank order (the order of the elicited averages by default),
* ``intervals`` — weights drawn inside the elicited Fig. 5 intervals,
  renormalised onto the simplex.

Component utilities are taken at their class averages by default
("changes can be made to the weights").  Two sampling extensions are
available:

* ``sample_utilities="missing"`` — draw a fresh utility in [0, 1] for
  every *missing* performance (each unknown cell is an independent
  unknown fact; the paper's ref. [18] assigns it the whole [0, 1]
  interval), keeping elicited class utilities at their averages.  This
  is the setting that reproduces the Fig. 10 pattern where exactly the
  candidates with unknown performances have fluctuating ranks while
  fully-known candidates sit still.
* ``sample_utilities=True`` (or ``"all"``) — additionally draw every
  component utility inside its class envelope, shared across
  alternatives that sit on the same level, which preserves the
  coupling a utility *function* imposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .engine import (
    BatchEvaluator,
    CompiledProblem,
    compile_problem,
    sample_in_intervals,
    sample_rank_order,
    sample_simplex,
)
from .engine import _performance_key as id_key  # noqa: F401 (re-export)
from .model import AdditiveModel
from .problem import DecisionProblem

__all__ = [
    "sample_simplex",
    "sample_rank_order",
    "sample_in_intervals",
    "RankStatistics",
    "MonteCarloResult",
    "simulate",
]


def missing_mask(problem: DecisionProblem, model: AdditiveModel) -> np.ndarray:
    """Boolean (n_alternatives, n_attributes) mask of unknown cells."""
    if problem is model.problem:
        return model.compiled.missing.copy()
    from .scales import MISSING

    mask = np.zeros((model.n_alternatives, model.n_attributes), dtype=bool)
    for i, alt in enumerate(problem.table.alternatives):
        for j, attr in enumerate(model.attribute_names):
            mask[i, j] = alt.performance(attr) is MISSING
    return mask


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RankStatistics:
    """One row of the Fig. 10 statistics table."""

    name: str
    mode: int
    minimum: int
    maximum: int
    mean: float
    std: float
    p25: float
    p50: float
    p75: float

    @property
    def fluctuation(self) -> int:
        """Total rank spread over the simulation (max - min)."""
        return self.maximum - self.minimum


@dataclass(frozen=True)
class BoxplotSummary:
    """Five-number summary of one alternative's rank distribution.

    Fig. 9 presents exactly this as a multiple boxplot: whiskers at the
    extremes, box from the 25th to the 75th percentile, the median
    inside.
    """

    name: str
    whisker_low: float
    q1: float
    median: float
    q3: float
    whisker_high: float


class MonteCarloResult:
    """Rank distributions from a Monte Carlo run.

    ``ranks[s, i]`` is the 1-based rank of alternative ``i`` in
    simulation ``s``.
    """

    def __init__(
        self,
        names: Sequence[str],
        ranks: np.ndarray,
        method: str,
        acceptance_rate: float = 1.0,
    ) -> None:
        ranks = np.asarray(ranks)
        if ranks.ndim != 2 or ranks.shape[1] != len(names):
            raise ValueError(
                f"ranks must be (n_simulations, {len(names)}), got {ranks.shape}"
            )
        self.names: Tuple[str, ...] = tuple(names)
        self.ranks = ranks
        self.method = method
        self.acceptance_rate = acceptance_rate
        self._index = {name: i for i, name in enumerate(self.names)}

    @property
    def n_simulations(self) -> int:
        return int(self.ranks.shape[0])

    def ranks_of(self, name: str) -> np.ndarray:
        try:
            return self.ranks[:, self._index[name]]
        except KeyError:
            raise KeyError(f"no alternative named {name!r}") from None

    # ------------------------------------------------------------------
    def statistics_for(self, name: str) -> RankStatistics:
        r = self.ranks_of(name)
        counts = np.bincount(r, minlength=len(self.names) + 1)
        return RankStatistics(
            name=name,
            mode=int(counts.argmax()),
            minimum=int(r.min()),
            maximum=int(r.max()),
            mean=float(r.mean()),
            std=float(r.std(ddof=0)),
            p25=float(np.percentile(r, 25)),
            p50=float(np.percentile(r, 50)),
            p75=float(np.percentile(r, 75)),
        )

    def statistics(self) -> Tuple[RankStatistics, ...]:
        """The Fig. 10 table, one row per alternative (input order)."""
        return tuple(self.statistics_for(name) for name in self.names)

    def boxplot_summary(self) -> Tuple[BoxplotSummary, ...]:
        """The Fig. 9 multiple boxplot, one entry per alternative."""
        result = []
        for name in self.names:
            r = self.ranks_of(name)
            result.append(
                BoxplotSummary(
                    name=name,
                    whisker_low=float(r.min()),
                    q1=float(np.percentile(r, 25)),
                    median=float(np.percentile(r, 50)),
                    q3=float(np.percentile(r, 75)),
                    whisker_high=float(r.max()),
                )
            )
        return tuple(result)

    # ------------------------------------------------------------------
    def ever_best(self) -> Tuple[str, ...]:
        """Alternatives that attain rank 1 in at least one simulation.

        §V: "Only two MM ontologies — Media Ontology and Boemie VDO —
        were ranked best across all 10,000 simulations."
        """
        hits = (self.ranks == 1).any(axis=0)
        return tuple(name for i, name in enumerate(self.names) if hits[i])

    def names_by_mean_rank(self) -> Tuple[str, ...]:
        order = np.argsort(self.ranks.mean(axis=0), kind="stable")
        return tuple(self.names[i] for i in order)

    def top_k_by_mean(self, k: int) -> Tuple[str, ...]:
        return self.names_by_mean_rank()[:k]

    def max_fluctuation(self, names: Optional[Sequence[str]] = None) -> int:
        """Largest rank spread among ``names`` (default: all).

        §V: "the rankings for the best five MM ontologies fluctuate by
        at most two positions throughout the simulation".
        """
        targets = self.names if names is None else tuple(names)
        return max(self.statistics_for(n).fluctuation for n in targets)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def simulate(
    problem_or_model: Union[DecisionProblem, AdditiveModel, CompiledProblem],
    method: str = "intervals",
    n_simulations: int = 10_000,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    order_groups: Optional[Sequence[Sequence[int]]] = None,
    sample_utilities: Union[bool, str] = False,
    reject_outside: bool = False,
) -> MonteCarloResult:
    """Run one of §V's three Monte Carlo simulation classes.

    ``method`` is ``"random"``, ``"rank_order"`` or ``"intervals"``.
    ``order_groups`` (rank_order only) lists attribute-index groups from
    most to least important; by default each attribute forms its own
    group, ordered by the elicited average weights — a total order.
    ``sample_utilities``: ``False`` keeps component utilities at their
    class averages; ``"missing"`` draws each unknown performance's
    utility uniformly in [0, 1] per simulation (the ref.-[18] model);
    ``True``/``"all"`` additionally samples every component utility
    inside its class envelope (shared per level across alternatives).

    The whole run is a single array program over the problem's
    compiled form (:mod:`repro.core.engine`): weight scenarios,
    component-utility draws, overall utilities and ranks are tensors of
    leading dimension ``n_simulations`` — there is no Python loop over
    simulations or alternatives.
    """
    if isinstance(problem_or_model, DecisionProblem):
        compiled = compile_problem(problem_or_model)
    else:
        compiled = problem_or_model  # AdditiveModel or CompiledProblem
    evaluator = BatchEvaluator(compiled)
    ranks, acceptance = evaluator.monte_carlo_ranks(
        method=method,
        n_simulations=n_simulations,
        seed=seed,
        rng=rng,
        order_groups=order_groups,
        sample_utilities=sample_utilities,
        reject_outside=reject_outside,
    )
    return MonteCarloResult(
        evaluator.alternative_names, ranks, method, acceptance
    )
