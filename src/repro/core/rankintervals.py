"""Attainable-rank intervals under partial information.

§V frames the screening as "decision making with partial information"
(the paper's refs. [21]-[25]).  Beyond the non-dominated /
potentially-optimal dichotomy, the same machinery bounds every
alternative's *attainable rank* across the whole feasible
weight/utility polytope:

* alternative ``a``'s **best attainable rank** is ``1 + (number of
  alternatives that necessarily outrank a)`` — those whose overall
  utility exceeds ``a``'s for every admissible parameter combination;
* its **worst attainable rank** is ``n - (number of alternatives a
  necessarily outranks)``.

"Necessarily outranks" is exactly the pairwise dominance LP, so the
bounds come straight from the dominance matrix.  They bracket every
rank the Monte Carlo simulation can produce — a useful consistency
check (asserted in the tests) and a cheaper, assumption-free companion
to Fig. 10's empirical rank ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .dominance import dominance_matrix

__all__ = ["RankInterval", "rank_intervals"]


@dataclass(frozen=True)
class RankInterval:
    """The ranks one alternative can attain over the feasible polytope."""

    name: str
    best: int
    worst: int

    def __post_init__(self) -> None:
        if not 1 <= self.best <= self.worst:
            raise ValueError(
                f"invalid rank interval [{self.best}, {self.worst}] for "
                f"{self.name!r}"
            )

    @property
    def width(self) -> int:
        return self.worst - self.best

    def contains(self, rank: int) -> bool:
        return self.best <= rank <= self.worst


def rank_intervals(
    model,
    matrix: Optional[np.ndarray] = None,
    solver: str = "scipy",
) -> Dict[str, RankInterval]:
    """Best/worst attainable rank per alternative.

    ``model`` is anything carrying ``alternative_names`` and the
    compiled envelopes — an :class:`~repro.core.model.AdditiveModel`, a
    :class:`~repro.core.engine.BatchEvaluator` or a
    :class:`~repro.core.engine.CompiledProblem`; the dominance LPs run
    through the batch engine's vectorised pre-screen.  ``matrix`` may
    pass a precomputed dominance matrix (``D[i, j]`` true iff
    alternative ``i`` dominates ``j``) to avoid re-solving the LPs.
    """
    if matrix is None:
        matrix = dominance_matrix(model, solver=solver)
    matrix = np.asarray(matrix, dtype=bool)
    names = model.alternative_names
    n = len(names)
    if matrix.shape != (n, n):
        raise ValueError(
            f"dominance matrix shape {matrix.shape} does not match "
            f"{n} alternatives"
        )
    dominated_by = matrix.sum(axis=0)  # how many outrank each column
    dominates = matrix.sum(axis=1)     # how many each row outranks
    return {
        name: RankInterval(
            name=name,
            best=int(1 + dominated_by[i]),
            worst=int(n - dominates[i]),
        )
        for i, name in enumerate(names)
    }
