"""The objective hierarchy (§II, Fig. 1).

The DA cycle starts by building "an objective hierarchy, including all
the relevant problem-related aspects", with attributes established for
the lowest-level objectives.  The paper's hierarchy has an overall
objective, four mid-level objectives (Reuse Cost, Understandability,
Integration, Reliability) and 14 leaves, each carrying an attribute.

The tree here is deliberately simple: named nodes, each either an
internal *objective* (children, no attribute) or a *leaf* (attribute
name).  Weight information lives outside the tree (in
:mod:`repro.core.weights`) so the same hierarchy can be evaluated under
many preference models — which is exactly what the sensitivity analyses
do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["ObjectiveNode", "Hierarchy"]


@dataclass
class ObjectiveNode:
    """A node of the objective hierarchy.

    Leaves reference the attribute measuring them via ``attribute``;
    internal nodes have ``children``.  A node cannot have both.
    """

    name: str
    children: List["ObjectiveNode"] = field(default_factory=list)
    attribute: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.children and self.attribute is not None:
            raise ValueError(
                f"objective {self.name!r} cannot both have children and an "
                "attribute"
            )

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def iter_nodes(self) -> Iterator["ObjectiveNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def iter_leaves(self) -> Iterator["ObjectiveNode"]:
        for node in self.iter_nodes():
            if node.is_leaf:
                yield node


class Hierarchy:
    """A validated objective hierarchy with name-based lookup.

    Validation enforces the invariants the additive model relies on:
    unique node names, every leaf carries an attribute, attribute names
    unique across leaves.
    """

    def __init__(self, root: ObjectiveNode) -> None:
        self._root = root
        self._nodes: Dict[str, ObjectiveNode] = {}
        self._parents: Dict[str, Optional[str]] = {root.name: None}
        self._validate()

    def _validate(self) -> None:
        attributes_seen: Dict[str, str] = {}
        for node in self._root.iter_nodes():
            if node.name in self._nodes:
                raise ValueError(f"duplicate objective name {node.name!r}")
            self._nodes[node.name] = node
            for child in node.children:
                self._parents[child.name] = node.name
            if node.is_leaf:
                if node.attribute is None:
                    raise ValueError(
                        f"leaf objective {node.name!r} has no attribute; every "
                        "lowest-level objective must be measured by one"
                    )
                if node.attribute in attributes_seen:
                    raise ValueError(
                        f"attribute {node.attribute!r} is used by both "
                        f"{attributes_seen[node.attribute]!r} and {node.name!r}"
                    )
                attributes_seen[node.attribute] = node.name

    # ------------------------------------------------------------------
    @property
    def root(self) -> ObjectiveNode:
        return self._root

    def node(self, name: str) -> ObjectiveNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(f"no objective named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def parent_of(self, name: str) -> Optional[ObjectiveNode]:
        self.node(name)  # raise on unknown
        parent = self._parents[name]
        return None if parent is None else self._nodes[parent]

    def path_to(self, name: str) -> Tuple[ObjectiveNode, ...]:
        """Nodes from the root down to (and including) ``name``."""
        chain: List[ObjectiveNode] = []
        cursor: Optional[str] = name
        while cursor is not None:
            node = self.node(cursor)
            chain.append(node)
            parent = self._parents[cursor]
            cursor = parent
        return tuple(reversed(chain))

    def depth_of(self, name: str) -> int:
        """Root has depth 0."""
        return len(self.path_to(name)) - 1

    # ------------------------------------------------------------------
    def nodes(self) -> Tuple[ObjectiveNode, ...]:
        return tuple(self._root.iter_nodes())

    def leaves(self) -> Tuple[ObjectiveNode, ...]:
        return tuple(self._root.iter_leaves())

    def leaves_under(self, name: str) -> Tuple[ObjectiveNode, ...]:
        """Leaves of the subtree rooted at ``name``.

        Fig. 7 ranks the ontologies *for Understandability*: "only the
        documentation quality, availability of external knowledge and
        code clarity attributes are evaluated" — i.e. the leaves under
        that node.
        """
        return tuple(self.node(name).iter_leaves())

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(leaf.attribute for leaf in self._root.iter_leaves())

    def attributes_under(self, name: str) -> Tuple[str, ...]:
        return tuple(leaf.attribute for leaf in self.leaves_under(name))

    def leaf_for_attribute(self, attribute: str) -> ObjectiveNode:
        for leaf in self._root.iter_leaves():
            if leaf.attribute == attribute:
                return leaf
        raise KeyError(f"no leaf measures attribute {attribute!r}")

    def subtree(self, name: str) -> "Hierarchy":
        """A new hierarchy rooted at ``name`` (shares node objects)."""
        return Hierarchy(self.node(name))

    # ------------------------------------------------------------------
    def render(self, annotate: Callable[[ObjectiveNode], str] = lambda n: "") -> str:
        """ASCII rendering of the tree (Fig. 1 style).

        ``annotate`` may append per-node text, e.g. weight intervals.
        """
        lines: List[str] = []

        def walk(node: ObjectiveNode, prefix: str, is_last: bool, is_root: bool) -> None:
            note = annotate(node)
            suffix = f"  {note}" if note else ""
            if is_root:
                lines.append(f"{node.name}{suffix}")
                child_prefix = ""
            else:
                connector = "`-- " if is_last else "|-- "
                lines.append(f"{prefix}{connector}{node.name}{suffix}")
                child_prefix = prefix + ("    " if is_last else "|   ")
            for i, child in enumerate(node.children):
                walk(child, child_prefix, i == len(node.children) - 1, False)

        walk(self._root, "", True, True)
        return "\n".join(lines)
