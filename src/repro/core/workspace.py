"""GMAA-style workspace persistence.

GMAA keeps the whole analysis in a *workspace* (the title bar of Fig. 1
reads "Current Workspace: Multimedia").  This module serialises a
complete :class:`~repro.core.problem.DecisionProblem` — hierarchy,
scales, performances, component-utility classes and weight system — to
a single JSON document and restores it losslessly, so an analysis can
be saved, shared and re-opened exactly like a ``.gmaa`` file.

The format is versioned (``"format": "repro-workspace/1"``); loaders
reject unknown versions instead of guessing.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Mapping, Union

from .engine import CompiledProblem, compile_problem
from .hierarchy import Hierarchy, ObjectiveNode
from .interval import Interval
from .performance import Alternative, PerformanceTable, UncertainValue
from .problem import DecisionProblem
from .scales import MISSING, ContinuousScale, DiscreteScale
from .utility import DiscreteUtility, PiecewiseLinearUtility
from .weights import WeightSystem

__all__ = [
    "to_dict",
    "from_dict",
    "save",
    "load",
    "FORMAT",
    "canonical_key",
    "compile_cached",
    "load_compiled",
    "compile_cache_info",
    "clear_compile_cache",
]

FORMAT = "repro-workspace/1"


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------

def _encode_interval(interval: Interval) -> List[float]:
    return [interval.lower, interval.upper]


def _encode_node(node: ObjectiveNode) -> Dict[str, Any]:
    encoded: Dict[str, Any] = {"name": node.name}
    if node.description:
        encoded["description"] = node.description
    if node.is_leaf:
        encoded["attribute"] = node.attribute
    else:
        encoded["children"] = [_encode_node(child) for child in node.children]
    return encoded


def _encode_scale(scale: object) -> Dict[str, Any]:
    if isinstance(scale, DiscreteScale):
        return {"kind": "discrete", "name": scale.name, "levels": list(scale.levels)}
    if isinstance(scale, ContinuousScale):
        return {
            "kind": "continuous",
            "name": scale.name,
            "minimum": scale.minimum,
            "maximum": scale.maximum,
            "ascending": scale.ascending,
            "unit": scale.unit,
        }
    raise TypeError(f"cannot encode scale of type {type(scale).__name__}")


def _encode_performance(value: object) -> Any:
    if value is MISSING:
        return {"kind": "missing"}
    if isinstance(value, UncertainValue):
        return {
            "kind": "uncertain",
            "minimum": value.minimum,
            "average": value.average,
            "maximum": value.maximum,
        }
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"cannot encode performance {value!r}")
    return float(value)


def _encode_utility(fn: object) -> Dict[str, Any]:
    if isinstance(fn, DiscreteUtility):
        return {
            "kind": "discrete",
            "scale": fn.scale.name,
            "by_level": [_encode_interval(iv) for iv in fn.by_level],
            "missing": _encode_interval(fn.missing_utility),
        }
    if isinstance(fn, PiecewiseLinearUtility):
        return {
            "kind": "piecewise_linear",
            "scale": fn.scale.name,
            "knots": [[x, _encode_interval(iv)] for x, iv in fn.knots],
            "missing": _encode_interval(fn.missing_utility),
        }
    raise TypeError(f"cannot encode utility of type {type(fn).__name__}")


def to_dict(problem: DecisionProblem) -> Dict[str, Any]:
    """The JSON-ready representation of a whole decision problem."""
    scales = {
        attr: _encode_scale(problem.table.scale_of(attr))
        for attr in problem.table.attribute_names
    }
    alternatives = [
        {
            "name": alt.name,
            "description": alt.description,
            "performances": {
                attr: _encode_performance(alt.performance(attr))
                for attr in problem.table.attribute_names
            },
        }
        for alt in problem.table.alternatives
    ]
    weights = {
        node.name: _encode_interval(problem.weights.local_interval(node.name))
        for node in problem.hierarchy.nodes()
        if node.name != problem.hierarchy.root.name
    }
    return {
        "format": FORMAT,
        "name": problem.name,
        "hierarchy": _encode_node(problem.hierarchy.root),
        "scales": scales,
        "alternatives": alternatives,
        "utilities": {
            attr: _encode_utility(problem.utility_function(attr))
            for attr in problem.attribute_names
        },
        "weights": weights,
    }


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------

def _decode_interval(data: Any) -> Interval:
    if not isinstance(data, (list, tuple)) or len(data) != 2:
        raise ValueError(f"expected [lower, upper], got {data!r}")
    return Interval(float(data[0]), float(data[1]))


def _decode_node(data: Mapping[str, Any]) -> ObjectiveNode:
    children = [_decode_node(child) for child in data.get("children", [])]
    return ObjectiveNode(
        name=data["name"],
        children=children,
        attribute=data.get("attribute"),
        description=data.get("description", ""),
    )


def _decode_scale(data: Mapping[str, Any]) -> object:
    kind = data.get("kind")
    if kind == "discrete":
        return DiscreteScale(data["name"], tuple(data["levels"]))
    if kind == "continuous":
        return ContinuousScale(
            data["name"],
            float(data["minimum"]),
            float(data["maximum"]),
            bool(data.get("ascending", True)),
            data.get("unit", ""),
        )
    raise ValueError(f"unknown scale kind {kind!r}")


def _decode_performance(data: Any) -> object:
    if isinstance(data, Mapping):
        kind = data.get("kind")
        if kind == "missing":
            return MISSING
        if kind == "uncertain":
            return UncertainValue(
                float(data["minimum"]), float(data["average"]), float(data["maximum"])
            )
        raise ValueError(f"unknown performance kind {kind!r}")
    return float(data)


def _decode_utility(data: Mapping[str, Any], scale: object) -> object:
    kind = data.get("kind")
    missing = _decode_interval(data.get("missing", [0.0, 1.0]))
    if kind == "discrete":
        if not isinstance(scale, DiscreteScale):
            raise ValueError(
                f"discrete utility declared over non-discrete scale {data['scale']!r}"
            )
        return DiscreteUtility(
            scale,
            tuple(_decode_interval(iv) for iv in data["by_level"]),
            missing,
        )
    if kind == "piecewise_linear":
        if not isinstance(scale, ContinuousScale):
            raise ValueError(
                "piecewise-linear utility declared over non-continuous scale "
                f"{data['scale']!r}"
            )
        return PiecewiseLinearUtility(
            scale,
            tuple((float(x), _decode_interval(iv)) for x, iv in data["knots"]),
            missing,
        )
    raise ValueError(f"unknown utility kind {kind!r}")


def from_dict(data: Mapping[str, Any]) -> DecisionProblem:
    """Rebuild a decision problem from :func:`to_dict` output."""
    if data.get("format") != FORMAT:
        raise ValueError(
            f"unsupported workspace format {data.get('format')!r}; "
            f"expected {FORMAT!r}"
        )
    hierarchy = Hierarchy(_decode_node(data["hierarchy"]))
    scales = {attr: _decode_scale(s) for attr, s in data["scales"].items()}
    alternatives = [
        Alternative(
            alt["name"],
            {a: _decode_performance(v) for a, v in alt["performances"].items()},
            alt.get("description", ""),
        )
        for alt in data["alternatives"]
    ]
    table = PerformanceTable(scales, alternatives)
    utilities = {
        attr: _decode_utility(u, scales[attr])
        for attr, u in data["utilities"].items()
    }
    weights = WeightSystem(
        hierarchy,
        {name: _decode_interval(iv) for name, iv in data["weights"].items()},
    )
    return DecisionProblem(
        hierarchy, table, utilities, weights, name=data.get("name", "workspace")
    )


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------

def save(problem: DecisionProblem, path: Union[str, Path]) -> None:
    """Write the workspace JSON for ``problem`` to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(to_dict(problem), indent=2, sort_keys=True))


def load(path: Union[str, Path]) -> DecisionProblem:
    """Read a workspace JSON written by :func:`save`."""
    return from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Compile cache
# ----------------------------------------------------------------------
#
# Lowering a problem into the batch engine's dense arrays walks the
# whole object graph once per problem; a repository-scale batch run
# (``repro batch``) evaluates the same workspaces again and again, so
# the compiled forms are memoised here.  The cache key is *semantic* —
# the canonical workspace JSON — so two problems with identical content
# share one compiled form regardless of which file or constructor they
# came from.

_COMPILE_CACHE_CAPACITY = 128
_compile_cache: "OrderedDict[str, CompiledProblem]" = OrderedDict()
_compile_hits = 0
_compile_misses = 0


def canonical_key(problem: DecisionProblem) -> str:
    """The content-addressed cache key: canonical workspace JSON."""
    return json.dumps(to_dict(problem), sort_keys=True, separators=(",", ":"))


def compile_cached(problem: DecisionProblem) -> CompiledProblem:
    """The LRU-cached compiled form of ``problem``.

    Returns the same :class:`~repro.core.engine.CompiledProblem` for
    every problem whose workspace serialisation matches; least
    recently used entries are evicted past the cache capacity.
    """
    global _compile_hits, _compile_misses
    key = canonical_key(problem)
    cached = _compile_cache.get(key)
    if cached is not None:
        _compile_cache.move_to_end(key)
        _compile_hits += 1
        return cached
    _compile_misses += 1
    compiled = compile_problem(problem)
    _compile_cache[key] = compiled
    while len(_compile_cache) > _COMPILE_CACHE_CAPACITY:
        _compile_cache.popitem(last=False)
    return compiled


def load_compiled(path: Union[str, Path]) -> CompiledProblem:
    """Load a workspace file straight into its compiled form (cached)."""
    return compile_cached(load(path))


def compile_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters, in the spirit of ``lru_cache.cache_info``."""
    return {
        "hits": _compile_hits,
        "misses": _compile_misses,
        "size": len(_compile_cache),
        "capacity": _COMPILE_CACHE_CAPACITY,
    }


def clear_compile_cache() -> None:
    """Drop every cached compiled form and reset the counters."""
    global _compile_hits, _compile_misses
    _compile_cache.clear()
    _compile_hits = 0
    _compile_misses = 0
