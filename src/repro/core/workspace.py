"""GMAA-style workspace persistence.

GMAA keeps the whole analysis in a *workspace* (the title bar of Fig. 1
reads "Current Workspace: Multimedia").  This module serialises a
complete :class:`~repro.core.problem.DecisionProblem` — hierarchy,
scales, performances, component-utility classes and weight system — to
a single JSON document and restores it losslessly, so an analysis can
be saved, shared and re-opened exactly like a ``.gmaa`` file.

The format is versioned (``"format": "repro-workspace/1"``); loaders
reject unknown versions instead of guessing.

Two compile-cache layers also live here (see ``docs/caching.md``): an
in-process LRU keyed by the canonical workspace JSON
(:func:`compile_cached`) and persisted ``.npz`` compiled-artifact
siblings keyed by raw-byte and semantic sha256
(:func:`load_compiled_fast`).  The cross-run *result* cache — the
registry index — builds on the same ``content_hash`` and lives in
:mod:`repro.core.index`.
"""

from __future__ import annotations

import ast
import hashlib
import json
import mmap
import os
import struct
import zipfile
from collections import OrderedDict
from dataclasses import dataclass
from io import BytesIO
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..obs import stage as _stage
from . import faults
from .engine import CompiledProblem, compile_problem, delta_compile
from .hierarchy import Hierarchy, ObjectiveNode
from .interval import Interval
from .performance import Alternative, PerformanceTable, UncertainValue
from .problem import DecisionProblem
from .scales import MISSING, ContinuousScale, DiscreteScale
from .utility import DiscreteUtility, PiecewiseLinearUtility
from .weights import WeightSystem

__all__ = [
    "to_dict",
    "from_dict",
    "save",
    "load",
    "FORMAT",
    "COMPILED_FORMAT",
    "canonical_key",
    "content_hash",
    "compile_cached",
    "load_compiled",
    "compile_cache_info",
    "clear_compile_cache",
    "compiled_array_path",
    "payload_checksum",
    "save_compiled_arrays",
    "load_compiled_arrays",
    "load_compiled_fast",
    "warm_compiled_cache",
    "component_hashes",
    "component_json",
    "DeltaLoad",
    "load_compiled_delta",
    "sweep_temp_artifacts",
]

FORMAT = "repro-workspace/1"
COMPILED_FORMAT = "repro-compiled/2"


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------

def _encode_interval(interval: Interval) -> List[float]:
    return [interval.lower, interval.upper]


def _encode_node(node: ObjectiveNode) -> Dict[str, Any]:
    encoded: Dict[str, Any] = {"name": node.name}
    if node.description:
        encoded["description"] = node.description
    if node.is_leaf:
        encoded["attribute"] = node.attribute
    else:
        encoded["children"] = [_encode_node(child) for child in node.children]
    return encoded


def _encode_scale(scale: object) -> Dict[str, Any]:
    if isinstance(scale, DiscreteScale):
        return {"kind": "discrete", "name": scale.name, "levels": list(scale.levels)}
    if isinstance(scale, ContinuousScale):
        return {
            "kind": "continuous",
            "name": scale.name,
            "minimum": scale.minimum,
            "maximum": scale.maximum,
            "ascending": scale.ascending,
            "unit": scale.unit,
        }
    raise TypeError(f"cannot encode scale of type {type(scale).__name__}")


def _encode_performance(value: object) -> Any:
    if value is MISSING:
        return {"kind": "missing"}
    if isinstance(value, UncertainValue):
        return {
            "kind": "uncertain",
            "minimum": value.minimum,
            "average": value.average,
            "maximum": value.maximum,
        }
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"cannot encode performance {value!r}")
    return float(value)


def _encode_utility(fn: object) -> Dict[str, Any]:
    if isinstance(fn, DiscreteUtility):
        return {
            "kind": "discrete",
            "scale": fn.scale.name,
            "by_level": [_encode_interval(iv) for iv in fn.by_level],
            "missing": _encode_interval(fn.missing_utility),
        }
    if isinstance(fn, PiecewiseLinearUtility):
        return {
            "kind": "piecewise_linear",
            "scale": fn.scale.name,
            "knots": [[x, _encode_interval(iv)] for x, iv in fn.knots],
            "missing": _encode_interval(fn.missing_utility),
        }
    raise TypeError(f"cannot encode utility of type {type(fn).__name__}")


def to_dict(problem: DecisionProblem) -> Dict[str, Any]:
    """The JSON-ready representation of a whole decision problem."""
    scales = {
        attr: _encode_scale(problem.table.scale_of(attr))
        for attr in problem.table.attribute_names
    }
    alternatives = [
        {
            "name": alt.name,
            "description": alt.description,
            "performances": {
                attr: _encode_performance(alt.performance(attr))
                for attr in problem.table.attribute_names
            },
        }
        for alt in problem.table.alternatives
    ]
    weights = {
        node.name: _encode_interval(problem.weights.local_interval(node.name))
        for node in problem.hierarchy.nodes()
        if node.name != problem.hierarchy.root.name
    }
    return {
        "format": FORMAT,
        "name": problem.name,
        "hierarchy": _encode_node(problem.hierarchy.root),
        "scales": scales,
        "alternatives": alternatives,
        "utilities": {
            attr: _encode_utility(problem.utility_function(attr))
            for attr in problem.attribute_names
        },
        "weights": weights,
    }


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------

def _decode_interval(data: Any) -> Interval:
    if not isinstance(data, (list, tuple)) or len(data) != 2:
        raise ValueError(f"expected [lower, upper], got {data!r}")
    return Interval(float(data[0]), float(data[1]))


def _decode_node(data: Mapping[str, Any]) -> ObjectiveNode:
    children = [_decode_node(child) for child in data.get("children", [])]
    return ObjectiveNode(
        name=data["name"],
        children=children,
        attribute=data.get("attribute"),
        description=data.get("description", ""),
    )


def _decode_scale(data: Mapping[str, Any]) -> object:
    kind = data.get("kind")
    if kind == "discrete":
        return DiscreteScale(data["name"], tuple(data["levels"]))
    if kind == "continuous":
        return ContinuousScale(
            data["name"],
            float(data["minimum"]),
            float(data["maximum"]),
            bool(data.get("ascending", True)),
            data.get("unit", ""),
        )
    raise ValueError(f"unknown scale kind {kind!r}")


def _decode_performance(data: Any) -> object:
    if isinstance(data, Mapping):
        kind = data.get("kind")
        if kind == "missing":
            return MISSING
        if kind == "uncertain":
            return UncertainValue(
                float(data["minimum"]), float(data["average"]), float(data["maximum"])
            )
        raise ValueError(f"unknown performance kind {kind!r}")
    return float(data)


def _decode_utility(data: Mapping[str, Any], scale: object) -> object:
    kind = data.get("kind")
    missing = _decode_interval(data.get("missing", [0.0, 1.0]))
    if kind == "discrete":
        if not isinstance(scale, DiscreteScale):
            raise ValueError(
                f"discrete utility declared over non-discrete scale {data['scale']!r}"
            )
        return DiscreteUtility(
            scale,
            tuple(_decode_interval(iv) for iv in data["by_level"]),
            missing,
        )
    if kind == "piecewise_linear":
        if not isinstance(scale, ContinuousScale):
            raise ValueError(
                "piecewise-linear utility declared over non-continuous scale "
                f"{data['scale']!r}"
            )
        return PiecewiseLinearUtility(
            scale,
            tuple((float(x), _decode_interval(iv)) for x, iv in data["knots"]),
            missing,
        )
    raise ValueError(f"unknown utility kind {kind!r}")


def from_dict(data: Mapping[str, Any]) -> DecisionProblem:
    """Rebuild a decision problem from :func:`to_dict` output."""
    if data.get("format") != FORMAT:
        raise ValueError(
            f"unsupported workspace format {data.get('format')!r}; "
            f"expected {FORMAT!r}"
        )
    hierarchy = Hierarchy(_decode_node(data["hierarchy"]))
    scales = {attr: _decode_scale(s) for attr, s in data["scales"].items()}
    alternatives = [
        Alternative(
            alt["name"],
            {a: _decode_performance(v) for a, v in alt["performances"].items()},
            alt.get("description", ""),
        )
        for alt in data["alternatives"]
    ]
    table = PerformanceTable(scales, alternatives)
    utilities = {
        attr: _decode_utility(u, scales[attr])
        for attr, u in data["utilities"].items()
    }
    weights = WeightSystem(
        hierarchy,
        {name: _decode_interval(iv) for name, iv in data["weights"].items()},
    )
    return DecisionProblem(
        hierarchy, table, utilities, weights, name=data.get("name", "workspace")
    )


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------

def save(problem: DecisionProblem, path: Union[str, Path]) -> None:
    """Write the workspace JSON for ``problem`` to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(to_dict(problem), indent=2, sort_keys=True))


def load(path: Union[str, Path]) -> DecisionProblem:
    """Read a workspace JSON written by :func:`save`."""
    return from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Compile cache
# ----------------------------------------------------------------------
#
# Lowering a problem into the batch engine's dense arrays walks the
# whole object graph once per problem; a repository-scale batch run
# (``repro batch``) evaluates the same workspaces again and again, so
# the compiled forms are memoised here.  The cache key is *semantic* —
# the canonical workspace JSON — so two problems with identical content
# share one compiled form regardless of which file or constructor they
# came from.

_COMPILE_CACHE_CAPACITY = 128
_compile_cache: "OrderedDict[str, CompiledProblem]" = OrderedDict()
_compile_hits = 0
_compile_misses = 0


def canonical_key(problem: DecisionProblem) -> str:
    """The content-addressed cache key: canonical workspace JSON."""
    return json.dumps(to_dict(problem), sort_keys=True, separators=(",", ":"))


def compile_cached(problem: DecisionProblem) -> CompiledProblem:
    """The LRU-cached compiled form of ``problem``.

    Returns the same :class:`~repro.core.engine.CompiledProblem` for
    every problem whose workspace serialisation matches; least
    recently used entries are evicted past the cache capacity.
    """
    global _compile_hits, _compile_misses
    key = canonical_key(problem)
    cached = _compile_cache.get(key)
    if cached is not None:
        _compile_cache.move_to_end(key)
        _compile_hits += 1
        return cached
    _compile_misses += 1
    compiled = compile_problem(problem)
    _compile_cache[key] = compiled
    while len(_compile_cache) > _COMPILE_CACHE_CAPACITY:
        _compile_cache.popitem(last=False)
    return compiled


def load_compiled(path: Union[str, Path]) -> CompiledProblem:
    """Load a workspace file straight into its compiled form (cached)."""
    return compile_cached(load(path))


def compile_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters, in the spirit of ``lru_cache.cache_info``."""
    return {
        "hits": _compile_hits,
        "misses": _compile_misses,
        "size": len(_compile_cache),
        "capacity": _COMPILE_CACHE_CAPACITY,
    }


def clear_compile_cache() -> None:
    """Drop every cached compiled form and reset the counters."""
    global _compile_hits, _compile_misses
    _compile_cache.clear()
    _compile_hits = 0
    _compile_misses = 0


# ----------------------------------------------------------------------
# Persisted compiled artifacts (.npz next to the workspace JSON)
# ----------------------------------------------------------------------
#
# The in-memory LRU above only helps within one process.  A sharded
# batch run (:mod:`repro.core.runtime`) cold-starts many worker
# processes, each of which would otherwise re-parse and re-compile
# every workspace JSON.  Persisting the compiled dense arrays as an
# ``.npz`` sibling of the workspace file turns that cold start into an
# ``mmap`` of ready-to-use tensors:
#
# * the artifact is **keyed by content**: it stores the semantic
#   content hash (sha256 of the canonical workspace JSON) plus the
#   sha256 of the raw source file bytes.  A byte-level match of the
#   source file proves freshness without parsing any JSON; any
#   mismatch falls back to compile-from-JSON and rewrites the artifact;
# * writes are **atomic** (temp file + ``os.replace``), so concurrent
#   writers — e.g. several shard workers warming the same registry —
#   can race freely: readers only ever see a complete artifact and
#   every writer produces identical bytes-for-equal-content arrays;
# * loads **mmap** the big float tensors straight out of the
#   uncompressed zip members (``np.savez`` stores members with
#   ``ZIP_STORED``), so fork-based worker pools share pages instead of
#   materialising per-process copies.

_ARRAY_FIELDS = (
    "u_low",
    "u_avg",
    "u_up",
    "missing",
    "w_low",
    "w_avg",
    "w_up",
    "key_low",
    "key_up",
    "key_count",
    "alt_key",
)
def content_hash(problem: DecisionProblem) -> str:
    """sha256 of the canonical workspace JSON — the semantic cache key."""
    return hashlib.sha256(canonical_key(problem).encode("utf-8")).hexdigest()


def _component_digest(payload: Any) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
    ).hexdigest()


def component_hashes(problem: DecisionProblem) -> Dict[str, str]:
    """Per-component sha256 fingerprints of a decision problem.

    The sub-problem counterpart of :func:`content_hash`: instead of one
    hash over the whole workspace, every independently editable piece
    gets its own digest so an edit can be localised —

    ``"structure"``
        format, objective hierarchy, scales, component utilities and
        the ordered alternative-name list.  If this changes, the dense
        array shapes or utility-class tensors may change and delta
        compilation is off the table.
    ``"name"``
        the workspace's display name.
    ``"alt:<name>"``
        one alternative's full entry (description included).
    ``"row:<name>"``
        one alternative's performance row only — the component that
        drives which :func:`~repro.core.engine.delta_compile` rows are
        re-lowered.
    ``"weight:<node>"``
        one objective node's local weight interval.
    """
    data = to_dict(problem)
    hashes = {
        "structure": _component_digest(
            {
                "format": data["format"],
                "hierarchy": data["hierarchy"],
                "scales": data["scales"],
                "utilities": data["utilities"],
                "alternative_names": [
                    alt["name"] for alt in data["alternatives"]
                ],
            }
        ),
        "name": _component_digest(data["name"]),
    }
    for alt in data["alternatives"]:
        hashes[f"alt:{alt['name']}"] = _component_digest(alt)
        hashes[f"row:{alt['name']}"] = _component_digest(alt["performances"])
    for node, interval in data["weights"].items():
        hashes[f"weight:{node}"] = _component_digest(interval)
    return hashes


def component_json(problem: DecisionProblem) -> str:
    """Canonical JSON text of :func:`component_hashes`.

    This is what the registry index stores per workspace row (schema
    v3) and what compiled ``.npz`` artifacts carry, so a later run can
    diff components without re-hashing the old problem.
    """
    return json.dumps(
        component_hashes(problem), sort_keys=True, separators=(",", ":")
    )


def compiled_array_path(path: Union[str, Path]) -> Path:
    """The ``.npz`` compiled-artifact sibling of a workspace JSON file."""
    return Path(path).with_suffix(".npz")


def _file_sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


#: Metadata members folded into the artifact payload checksum (the
#: dense arrays in :data:`_ARRAY_FIELDS` are always included).
_CHECKSUM_METADATA = (
    "problem_name",
    "attribute_names",
    "alternative_names",
    "source_sha",
    "content_hash",
)


def payload_checksum(arrays: Mapping[str, np.ndarray]) -> str:
    """SHA-256 over an artifact's array bytes and identity metadata.

    Stored in the artifact as ``payload_sha`` and re-derived on every
    load, so corruption *inside* a member's data region — which the
    zero-copy mmap path's skipped zip CRC would otherwise let through —
    turns the load into an ordinary cache miss.  Compiled arrays are
    small (a shortlist times a criteria tree), so this costs microseconds
    against the artifact's I/O.
    """
    digest = hashlib.sha256()
    for field in (*_ARRAY_FIELDS, *_CHECKSUM_METADATA):
        arr = np.ascontiguousarray(arrays[field])
        digest.update(field.encode())
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def save_compiled_arrays(
    compiled: CompiledProblem,
    npz_path: Union[str, Path],
    source_sha: str,
    semantic_hash: str,
    component_json: Optional[str] = None,
) -> Path:
    """Atomically persist a compiled form's dense arrays as ``.npz``.

    The write goes to a unique temp file in the target directory and is
    published with ``os.replace``, so a reader can never observe a
    partially-written artifact and the last concurrent writer wins with
    a complete file.  The temp file is unlinked on *every* failure path
    (including a failed replace); residue from a killed process is
    swept by :func:`sweep_temp_artifacts` / ``repro index vacuum``.

    ``component_json`` optionally embeds the per-component fingerprint
    table (:func:`component_json`) so index probes that trust the
    artifact can pick up sub-problem hashes without parsing the source
    JSON.
    """
    npz_path = Path(npz_path)
    payload: Dict[str, np.ndarray] = {
        field: np.ascontiguousarray(getattr(compiled, field))
        for field in _ARRAY_FIELDS
    }
    payload["alt_key"] = payload["alt_key"].astype(np.int64)
    payload["key_count"] = payload["key_count"].astype(np.int64)
    payload["problem_name"] = np.array(compiled.name)
    payload["attribute_names"] = np.array(compiled.attribute_names)
    payload["alternative_names"] = np.array(compiled.alternative_names)
    payload["format"] = np.array(COMPILED_FORMAT)
    payload["source_sha"] = np.array(source_sha)
    payload["content_hash"] = np.array(semantic_hash)
    if component_json is not None:
        payload["component_json"] = np.array(component_json)
    payload["payload_sha"] = np.array(payload_checksum(payload))

    buffer = BytesIO()
    np.savez(buffer, **payload)
    tmp_path = npz_path.with_name(
        f".{npz_path.name}.tmp.{os.getpid()}.{id(buffer):x}"
    )
    try:
        with open(tmp_path, "wb") as fh:
            fh.write(buffer.getvalue())
        os.replace(tmp_path, npz_path)
    finally:
        try:
            tmp_path.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - directory-level failures
            pass
    return npz_path


#: Glob matching the temp names :func:`save_compiled_arrays` writes
#: (``.{name}.npz.tmp.{pid}.{token}``) — what a crashed writer leaves
#: behind and :func:`sweep_temp_artifacts` removes.
_TEMP_ARTIFACT_GLOB = ".*.npz.tmp.*"


def sweep_temp_artifacts(directory: Union[str, Path]) -> int:
    """Remove stray compiled-artifact temp files under ``directory``.

    An ``os.replace`` publish can never leave a partial ``.npz``, but a
    writer killed between temp creation and replace leaves its
    dot-prefixed temp file behind forever.  This sweeps every such
    sibling (recursively) and returns the number removed.  Run it from
    ``repro index vacuum``; it assumes no artifact writer is active
    concurrently.
    """
    removed = 0
    for tmp in sorted(Path(directory).rglob(_TEMP_ARTIFACT_GLOB)):
        if not tmp.is_file():
            continue
        try:
            tmp.unlink()
        except OSError:  # pragma: no cover - raced or permission-denied
            continue
        removed += 1
    return removed


# npy headers repeat across a registry (same shapes, same dtypes), so
# the ast parse of each distinct header happens once per process.
_NPY_HEADER_CACHE: Dict[bytes, Tuple[Tuple[int, ...], bool, np.dtype]] = {}


def _parse_npy_header(
    buf, start: int
) -> "Optional[Tuple[Tuple[int, ...], bool, np.dtype, int]]":
    """(shape, fortran, dtype, data_offset) of an npy blob at ``start``."""
    if bytes(buf[start:start + 6]) != b"\x93NUMPY":
        return None
    major = buf[start + 6]
    if major == 1:
        (header_len,) = struct.unpack_from("<H", buf, start + 8)
        header_start = start + 10
    elif major == 2:
        (header_len,) = struct.unpack_from("<I", buf, start + 8)
        header_start = start + 12
    else:  # pragma: no cover - future npy versions
        return None
    header = bytes(buf[header_start:header_start + header_len])
    parsed = _NPY_HEADER_CACHE.get(header)
    if parsed is None:
        try:
            fields = ast.literal_eval(header.decode("latin1"))
            parsed = (
                tuple(fields["shape"]),
                bool(fields["fortran_order"]),
                np.dtype(fields["descr"]),
            )
        except (ValueError, KeyError, TypeError, SyntaxError):
            return None  # pragma: no cover - corrupt member
        _NPY_HEADER_CACHE[header] = parsed
    shape, fortran, dtype = parsed
    return shape, fortran, dtype, header_start + header_len


def _read_npz_mmapped(npz_path: Path) -> Optional[Dict[str, np.ndarray]]:
    """One-pass zero-copy read of an uncompressed ``.npz``.

    The whole archive is mapped read-only once; every member becomes an
    ``np.frombuffer`` view straight into the mapping — no decompression,
    no per-member file opens, no data copies.  Forked worker pools
    therefore share one page-cache copy of every registry artifact.
    Returns ``None`` whenever the archive needs the slow path.

    Trade-off: like ``np.load(..., mmap_mode="r")`` on a bare ``.npy``,
    this path skips the zip CRC check — a truncated or out-of-bounds
    member still fails safely (``np.frombuffer`` bounds-checks against
    the mapping and the caller treats the error as a cache miss), but
    silent bit-rot *inside* a member's data region is not detected.
    Artifacts are disposable derived data keyed by the source hash;
    delete the ``.npz`` (or load with ``mmap_arrays=False``) to force a
    fully-checked read.
    """
    with open(npz_path, "rb") as fh:
        buf = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        arrays: Dict[str, np.ndarray] = {}
        with zipfile.ZipFile(fh) as zf:
            for info in zf.infolist():
                if (
                    info.compress_type != zipfile.ZIP_STORED
                    or not info.filename.endswith(".npy")
                ):
                    return None
                offset = info.header_offset
                name_len, extra_len = struct.unpack_from(
                    "<HH", buf, offset + 26
                )
                parsed = _parse_npy_header(
                    buf, offset + 30 + name_len + extra_len
                )
                if parsed is None:
                    return None
                shape, fortran, dtype, data_offset = parsed
                if dtype.hasobject:  # pragma: no cover - never written
                    return None
                count = 1
                for dim in shape:
                    count *= dim
                member = np.frombuffer(
                    buf, dtype=dtype, count=count, offset=data_offset
                )
                arrays[info.filename[:-4]] = member.reshape(
                    shape, order="F" if fortran else "C"
                )
    return arrays


def load_compiled_arrays(
    npz_path: Union[str, Path], mmap_arrays: bool = True
) -> Optional[Dict[str, np.ndarray]]:
    """Read a compiled artifact; arrays are mmap-backed views by default.

    Returns ``None`` for a missing, unreadable, wrong-format or
    corrupt file — the caller treats that exactly like a cache miss
    and recompiles from the workspace JSON.  Every member named by the
    format must be present and the recorded ``payload_sha`` must match
    the re-derived :func:`payload_checksum`, so a truncated, torn or
    bit-rotted artifact can never reach evaluation.
    """
    npz_path = Path(npz_path)
    if not npz_path.is_file():
        return None
    try:
        plan = faults.active()
        if plan is not None:
            plan.strike("artifact_read", str(npz_path))
        arrays = _read_npz_mmapped(npz_path) if mmap_arrays else None
        if arrays is None:
            with np.load(npz_path, allow_pickle=False) as npz:
                arrays = {key: npz[key] for key in npz.files}
        if str(arrays.get("format")) != COMPILED_FORMAT:
            return None
        for field in (*_ARRAY_FIELDS, *_CHECKSUM_METADATA, "payload_sha"):
            if field not in arrays:
                return None
        if str(arrays["payload_sha"]) != payload_checksum(arrays):
            return None
        return arrays
    except (
        OSError,
        ValueError,
        KeyError,
        IndexError,
        struct.error,
        zipfile.BadZipFile,
    ):
        return None


def _compiled_from_arrays(arrays: Mapping[str, np.ndarray]) -> CompiledProblem:
    return CompiledProblem.from_arrays(
        name=str(arrays["problem_name"]),
        attribute_names=[str(a) for a in arrays["attribute_names"]],
        alternative_names=[str(a) for a in arrays["alternative_names"]],
        u_low=arrays["u_low"],
        u_avg=arrays["u_avg"],
        u_up=arrays["u_up"],
        missing=arrays["missing"],
        w_low=arrays["w_low"],
        w_avg=arrays["w_avg"],
        w_up=arrays["w_up"],
        key_low=arrays["key_low"],
        key_up=arrays["key_up"],
        key_count=arrays["key_count"],
        alt_key=arrays["alt_key"],
    )


def _fresh_artifact(
    path: Path, mmap_arrays: bool
) -> Tuple[Optional[Dict[str, np.ndarray]], Path, str]:
    """(arrays-if-fresh, npz_path, source_sha) for one workspace file.

    The single definition of artifact freshness: the artifact is usable
    iff it loads and its recorded ``source_sha`` matches the current
    raw bytes of the workspace JSON.
    """
    npz_path = compiled_array_path(path)
    source_sha = _file_sha256(path)
    arrays = load_compiled_arrays(npz_path, mmap_arrays=mmap_arrays)
    if arrays is not None and str(arrays.get("source_sha")) == source_sha:
        return arrays, npz_path, source_sha
    return None, npz_path, source_sha


def _compile_and_persist(
    path: Path, npz_path: Path, source_sha: str
) -> CompiledProblem:
    """Compile a workspace from JSON and atomically (re)write its artifact."""
    with _stage("workspace.compile", path=str(path)):
        problem = load(path)
        compiled = compile_problem(problem)
        save_compiled_arrays(
            compiled,
            npz_path,
            source_sha,
            content_hash(problem),
            component_json=component_json(problem),
        )
        return compiled


def load_compiled_fast(
    path: Union[str, Path],
    refresh: bool = True,
    mmap_arrays: bool = True,
) -> CompiledProblem:
    """Load a workspace's compiled form, via the ``.npz`` artifact.

    Fast path: when the sibling artifact exists and its recorded source
    hash matches the current JSON bytes, the compiled arrays come
    straight off disk (mmapped) — no JSON parse, no object graph, no
    utility evaluation.  Otherwise the workspace is compiled from JSON
    and, with ``refresh``, the artifact is (re)written atomically.
    The returned compiled form carries ``problem=None`` on the fast
    path; callers needing the object graph parse the JSON explicitly.
    """
    path = Path(path)
    arrays, npz_path, source_sha = _fresh_artifact(
        path, mmap_arrays=mmap_arrays
    )
    if arrays is not None:
        return _compiled_from_arrays(arrays)
    if refresh:
        return _compile_and_persist(path, npz_path, source_sha)
    return compile_problem(load(path))


@dataclass(frozen=True)
class DeltaLoad:
    """One successful delta (re)compilation of an edited workspace.

    Everything the incremental runtime needs in one bundle: the patched
    compiled form (with the freshly parsed problem attached), the new
    semantic fingerprints to index, and which components actually
    changed — ``changed_rows`` are positions into the alternative list,
    ``changed_components`` the raw :func:`component_hashes` keys.
    """

    compiled: CompiledProblem
    problem: DecisionProblem
    content_hash: str
    component_json: str
    source_sha: str
    npz_path: Path
    changed_rows: Tuple[int, ...]
    changed_components: Tuple[str, ...]


def load_compiled_delta(
    path: Union[str, Path],
    old_content_hash: str,
    old_component_json: Optional[str],
    mmap_arrays: bool = True,
    persist: bool = True,
) -> Optional[DeltaLoad]:
    """Delta-compile an edited workspace against its cached artifact.

    The incremental fast path for a workspace whose content hash
    changed: load the (now stale) ``.npz`` artifact, verify it still
    matches the *old* indexed state, diff the per-component hashes and
    patch only the changed rows via
    :func:`~repro.core.engine.delta_compile`.  The rewritten artifact
    is published atomically so subsequent runs take the plain fast
    path.

    Returns ``None`` whenever delta compilation is not safe or not
    possible — missing/stale artifact, missing or unparsable component
    fingerprints, or a structural edit (hierarchy, scales, utilities,
    alternative set/order) — in which case the caller falls back to a
    full recompile exactly as before this path existed.
    """
    path = Path(path)
    try:
        old_components = json.loads(old_component_json or "")
    except ValueError:
        return None
    if (
        not isinstance(old_components, dict)
        or "structure" not in old_components
    ):
        return None
    npz_path = compiled_array_path(path)
    arrays = load_compiled_arrays(npz_path, mmap_arrays=mmap_arrays)
    if arrays is None or str(arrays.get("content_hash")) != old_content_hash:
        return None
    try:
        source_sha = _file_sha256(path)
        problem = load(path)
    except (OSError, ValueError, KeyError, TypeError):
        return None
    new_components = component_hashes(problem)
    if new_components["structure"] != old_components.get("structure"):
        return None
    changed = tuple(
        key
        for key, digest in sorted(new_components.items())
        if old_components.get(key) != digest
    )
    names = list(problem.table.alternative_names)
    changed_rows = tuple(
        names.index(key[len("row:"):])
        for key in changed
        if key.startswith("row:")
    )
    try:
        with _stage(
            "delta.patch", path=str(path), rows=len(changed_rows)
        ):
            compiled = delta_compile(
                _compiled_from_arrays(arrays), problem, changed_rows
            )
    except (ValueError, KeyError):  # pragma: no cover - structure gate
        return None
    new_hash = content_hash(problem)
    new_component_json = json.dumps(
        new_components, sort_keys=True, separators=(",", ":")
    )
    if persist:
        save_compiled_arrays(
            compiled,
            npz_path,
            source_sha,
            new_hash,
            component_json=new_component_json,
        )
    return DeltaLoad(
        compiled=compiled,
        problem=problem,
        content_hash=new_hash,
        component_json=new_component_json,
        source_sha=source_sha,
        npz_path=npz_path,
        changed_rows=changed_rows,
        changed_components=changed,
    )


def warm_compiled_cache(paths) -> int:
    """Ensure every workspace in ``paths`` has a fresh artifact.

    Returns the number of artifacts (re)written.  Safe to run from
    several processes at once — writes are atomic and idempotent.
    """
    written = 0
    for path in paths:
        path = Path(path)
        # mmap keeps the freshness probe lazy: only the two metadata
        # strings are touched, no tensor is decompressed or copied.
        arrays, npz_path, source_sha = _fresh_artifact(
            path, mmap_arrays=True
        )
        if arrays is None:
            _compile_and_persist(path, npz_path, source_sha)
            written += 1
    return written
