"""Attribute scales — how the paper measures the 14 reuse criteria.

Section II of the paper establishes an attribute for every lowest-level
objective.  Two kinds occur:

* **Discrete linguistic scales** — most criteria are "assessed on a
  discrete scale"; e.g. *Purpose reliability* takes ``0-unknown``,
  ``1-low``, ``2-medium``, ``3-high`` (Fig. 4) and *Adequacy of the
  implementation language* takes ``low``/``medium``/``high``.
* **Continuous scales** — *Number of functional requirements covered*
  is continuous on ``[0, MNVLT]`` via the ``ValueT`` formula (Fig. 3).

Both kinds also admit a distinguished *missing* marker: §III explains
that when the performance of at least one alternative is unknown for a
criterion, an additional attribute value is considered whose utility is
the whole interval ``[0, 1]`` (following ref. [18] of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "MISSING",
    "MissingType",
    "DiscreteScale",
    "ContinuousScale",
    "Scale",
    "linguistic_0_3",
]


class MissingType:
    """Singleton marker for an unknown alternative performance."""

    _instance: "MissingType | None" = None

    def __new__(cls) -> "MissingType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "MISSING"

    def __reduce__(self):
        return (MissingType, ())


#: The module-level missing marker.  ``performance is MISSING`` reads
#: exactly like the paper's "the performance ... was unknown".
MISSING = MissingType()


@dataclass(frozen=True)
class DiscreteScale:
    """An ordered linguistic scale, worst level first.

    ``levels`` maps positions to labels; the numeric code of a level is
    its index (matching the paper's ``0-unknown, 1-low, 2-medium,
    3-high`` coding in Fig. 4).
    """

    name: str
    levels: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.levels) < 2:
            raise ValueError(f"scale {self.name!r} needs at least two levels")
        if len(set(self.levels)) != len(self.levels):
            raise ValueError(f"scale {self.name!r} has duplicate level labels")

    @property
    def is_discrete(self) -> bool:
        return True

    @property
    def worst(self) -> int:
        return 0

    @property
    def best(self) -> int:
        return len(self.levels) - 1

    def code_of(self, label: str) -> int:
        """Numeric code for a level label (raises ``KeyError`` if absent)."""
        try:
            return self.levels.index(label)
        except ValueError:
            raise KeyError(
                f"{label!r} is not a level of scale {self.name!r}; "
                f"expected one of {self.levels}"
            ) from None

    def label_of(self, code: int) -> str:
        if not self.is_valid(code):
            raise KeyError(f"{code!r} is not a level code of scale {self.name!r}")
        return self.levels[int(code)]

    def is_valid(self, value: object) -> bool:
        """True when ``value`` is a level code of this scale."""
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return False
        return float(value).is_integer() and 0 <= int(value) < len(self.levels)

    def __len__(self) -> int:
        return len(self.levels)


@dataclass(frozen=True)
class ContinuousScale:
    """A bounded continuous attribute range.

    ``ascending`` states the preference direction: ``True`` means more
    is better (the paper's ``ValueT``), ``False`` means less is better
    (e.g. a raw cost in currency units, before utility conversion).
    The direction is consumed by utility-function constructors; the
    additive model itself only ever sees utilities.
    """

    name: str
    minimum: float
    maximum: float
    ascending: bool = True
    unit: str = ""

    def __post_init__(self) -> None:
        if not self.minimum < self.maximum:
            raise ValueError(
                f"scale {self.name!r}: minimum {self.minimum!r} must be below "
                f"maximum {self.maximum!r}"
            )

    @property
    def is_discrete(self) -> bool:
        return False

    @property
    def worst(self) -> float:
        return self.minimum if self.ascending else self.maximum

    @property
    def best(self) -> float:
        return self.maximum if self.ascending else self.minimum

    def is_valid(self, value: object) -> bool:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return False
        return self.minimum - 1e-12 <= float(value) <= self.maximum + 1e-12

    def normalise(self, value: float) -> float:
        """Map ``value`` to ``[0, 1]`` with 1 at the *best* end."""
        frac = (float(value) - self.minimum) / (self.maximum - self.minimum)
        return frac if self.ascending else 1.0 - frac


Scale = "DiscreteScale | ContinuousScale"


def linguistic_0_3(name: str, unknown_label: str = "unknown") -> DiscreteScale:
    """The paper's standard four-level scale: unknown/low/medium/high.

    Fig. 4 codes *Purpose reliability* this way; the other discrete
    criteria of §II use the same 0-3 coding in Fig. 2.
    """
    return DiscreteScale(name, (unknown_label, "low", "medium", "high"))
