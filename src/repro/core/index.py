"""Persistent registry index with cross-run result caching.

The sharded runtime (:mod:`repro.core.runtime`) made one *run* over a
registry fast; this module makes the *next* run fast.  A
:class:`RegistryIndex` is a sqlite database that acts as the system of
record for a registry of workspace JSON files:

* a ``workspaces`` table holds one row per workspace — path, stat
  fingerprint (``mtime_ns`` + ``size``), raw-byte sha256
  (``source_sha``), semantic content hash (sha256 of the canonical
  workspace JSON, the same key the ``.npz`` compile cache records), the
  source sha the compiled ``.npz`` artifact carried when last
  inspected, and the ``(n_alternatives, n_attributes)`` shape signature
  used for stacking;
* a ``results`` table caches evaluated outcomes keyed by
  ``(content_hash, config_hash)`` — the workspace *content* and the
  evaluation *configuration* (:func:`eval_config_hash`), never the
  path.  Renaming, copying or touching a file therefore keeps its
  cached results; only a semantic edit invalidates them.

Freshness is a three-step ladder, cheapest first: a matching stat
fingerprint (``mtime_ns`` + ``size`` + ``ctime_ns``) trusts the stored
hashes without reading the file; a matching ``source_sha`` (file
re-read, e.g. after ``touch``) keeps the stored content hash;
otherwise the workspace JSON is parsed and re-hashed.  Results are
valid per content hash, so every one of those steps ends at the same
cache key.

Two hardenings close the classic stat-cache staleness hole (an edit
that preserves ``mtime`` and ``size``, e.g. ``cp -p``, ``git
checkout`` or two writes within the filesystem's timestamp
resolution): the fingerprint includes ``ctime_ns`` — bumped by every
rename/replace/metadata change and not forgeable from userspace — and
each row remembers *when* it was recorded (``recorded_ns``), so a file
whose ``mtime`` falls inside the recording window (it was modified
about when the row was written, where a same-tick second write could
hide) is byte-verified against ``source_sha`` before the stored hashes
are trusted.  Since schema v3 each row also carries the per-component
fingerprint table (``component_json``, see
:func:`repro.core.workspace.component_hashes`) that powers delta
compilation in :mod:`repro.core.runtime`.

Caching per-problem results is sound because the engine guarantees
each problem's numbers depend only on its own compiled arrays and its
own seeded RNG stream — never on which problems share a stack, chunk
or process (the PR 2 determinism contract).  A cached row is therefore
byte-for-byte the number a fresh evaluation would produce (floats
round-trip exactly through sqlite ``REAL``, which is IEEE-754 binary64).

Concurrency: the database runs in WAL mode and every mutation happens
in a single ``BEGIN IMMEDIATE`` transaction issued by one writer (the
merge step after the process-pool fan-in); worker processes never touch
the index.  Readers see either the previous or the new state, never a
partial run.  One :class:`RegistryIndex` instance may be shared across
threads — each thread lazily gets its own sqlite connection to the same
database file, so WAL readers (e.g. the query service's request
threads, :mod:`repro.service`) proceed concurrently while a writer
commits.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..obs import metrics as _metrics
from ..obs import span as _span
from . import workspace as _workspace
from .engine import compile_problem

__all__ = [
    "DEFAULT_INDEX_FILENAME",
    "SCHEMA_VERSION",
    "RECORDING_WINDOW_NS",
    "eval_config_hash",
    "default_index_path",
    "IndexedWorkspace",
    "CachedResult",
    "QuarantinedWorkspace",
    "RegistryIndex",
]

DEFAULT_INDEX_FILENAME = ".repro-index.sqlite"
SCHEMA_VERSION = 5

#: How close (in nanoseconds) a file's ``mtime`` may sit to the moment
#: its row was recorded before the stat fast path stops being trusted
#: and the raw bytes are re-verified.  Two seconds comfortably covers
#: coarse filesystem timestamp resolution (FAT: 2 s) plus clock skew
#: between the stat clock and :func:`time.time_ns`.
RECORDING_WINDOW_NS = 2_000_000_000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS index_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS workspaces (
    path            TEXT PRIMARY KEY,
    mtime_ns        INTEGER NOT NULL,
    size            INTEGER NOT NULL,
    source_sha      TEXT NOT NULL,
    content_hash    TEXT NOT NULL,
    npz_source_sha  TEXT,
    n_alternatives  INTEGER NOT NULL,
    n_attributes    INTEGER NOT NULL,
    ctime_ns        INTEGER,
    recorded_ns     INTEGER,
    component_json  TEXT
);
CREATE INDEX IF NOT EXISTS workspaces_by_content
    ON workspaces (content_hash);
CREATE TABLE IF NOT EXISTS results (
    content_hash     TEXT NOT NULL,
    config_hash      TEXT NOT NULL,
    sub_index        INTEGER NOT NULL,
    name             TEXT NOT NULL,
    n_alternatives   INTEGER NOT NULL,
    n_attributes     INTEGER NOT NULL,
    best_name        TEXT NOT NULL,
    best_minimum     REAL NOT NULL,
    best_average     REAL NOT NULL,
    best_maximum     REAL NOT NULL,
    ever_best        INTEGER,
    top5_fluctuation INTEGER,
    group_json       TEXT,
    PRIMARY KEY (content_hash, config_hash, sub_index)
);
CREATE TABLE IF NOT EXISTS quarantine (
    path           TEXT PRIMARY KEY,
    failures       INTEGER NOT NULL,
    last_error     TEXT NOT NULL,
    source_sha     TEXT NOT NULL,
    quarantined_ns INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS workspace_versions (
    path          TEXT NOT NULL,
    content_hash  TEXT NOT NULL,
    first_seen_ns INTEGER NOT NULL,
    tag           TEXT,
    PRIMARY KEY (path, content_hash)
);
CREATE INDEX IF NOT EXISTS workspace_versions_by_path
    ON workspace_versions (path, first_seen_ns);
"""

#: Nullable tail columns a legacy ``results`` table may predate; the
#: in-place migration adds whichever are missing via ``ALTER TABLE``.
_RESULT_TAIL_COLUMNS = (
    ("ever_best", "INTEGER"),
    ("top5_fluctuation", "INTEGER"),
    ("group_json", "TEXT"),
)

#: Nullable tail columns a pre-v3 ``workspaces`` table predates (ctime
#: fingerprint, recording timestamp, per-component hashes); migrated in
#: place the same way.
_WORKSPACE_TAIL_COLUMNS = (
    ("ctime_ns", "INTEGER"),
    ("recorded_ns", "INTEGER"),
    ("component_json", "TEXT"),
)


def eval_config_hash(options) -> str:
    """The cache key for an evaluation configuration.

    Hashes exactly the :class:`~repro.core.runtime.BatchOptions` fields
    that determine a run's *numbers* — ``objectives``, ``simulations``,
    (only when simulating) ``method`` and ``seed``, and (only for group
    runs) the member-roster digest.  Transport
    knobs (``use_disk_cache``, ``refresh_cache``, ``mmap``) and the
    worker/chunk layout never influence results (the PR 2 determinism
    contract), so they are deliberately excluded: the same registry
    evaluated with any worker count shares one cache entry.

    Parameters
    ----------
    options : object
        Anything with ``objectives`` / ``simulations`` / ``method`` /
        ``seed`` attributes, typically a
        :class:`~repro.core.runtime.BatchOptions`.

    Returns
    -------
    str
        Hex sha256 of the canonical configuration JSON.
    """
    simulations = int(getattr(options, "simulations", 0) or 0)
    payload = {
        "objectives": bool(getattr(options, "objectives", False)),
        "simulations": simulations,
        "method": getattr(options, "method", None) if simulations else None,
        "seed": getattr(options, "seed", None) if simulations else None,
        # pinned by the batch paths; recorded so a future knob cannot
        # silently alias old cache entries
        "sample_utilities": "missing" if simulations else None,
    }
    group = getattr(options, "group", None)
    if group:
        # The member-set digest: group runs are keyed by workspace
        # content AND the exact roster.  The key is only added when a
        # roster is present so every pre-group configuration keeps its
        # historical hash (old cache rows stay valid).
        from .group import members_digest

        payload["group"] = members_digest(group)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def default_index_path(paths: Sequence[Union[str, Path]]) -> Path:
    """Where a registry's index database lives by default.

    The deepest directory common to every workspace path, plus
    :data:`DEFAULT_INDEX_FILENAME` — so a flat registry directory keeps
    its index as a hidden sibling of the workspace files.

    Parameters
    ----------
    paths : sequence of str or Path
        The registry's workspace files (must be non-empty).

    Returns
    -------
    Path
        ``<common directory>/.repro-index.sqlite``.
    """
    if not paths:
        raise ValueError("default_index_path needs at least one path")
    dirs = {os.path.dirname(os.path.abspath(str(p))) for p in paths}
    return Path(os.path.commonpath(sorted(dirs))) / DEFAULT_INDEX_FILENAME


@dataclass(frozen=True)
class IndexedWorkspace:
    """One ``workspaces`` row: a workspace file's identity fingerprint.

    Attributes
    ----------
    path : str
        Absolute path of the workspace JSON (the row key).
    mtime_ns, size : int
        Stat fingerprint at index time; a match lets the next probe
        trust the stored hashes without reading the file.
    source_sha : str
        sha256 of the raw file bytes.
    content_hash : str
        sha256 of the canonical workspace JSON — the semantic key the
        ``results`` table and the ``.npz`` compile cache share.
    npz_source_sha : str or None
        The ``source_sha`` recorded inside the sibling ``.npz``
        compiled artifact when this row was derived (``None`` when the
        artifact was absent or stale at that moment).  Informational:
        freshness decisions always re-check the artifact itself.
    n_alternatives, n_attributes : int
        The stacking shape signature of the compiled problem.
    ctime_ns : int or None
        ``st_ctime_ns`` at index time — the third leg of the stat
        fingerprint (``None`` on rows recorded before schema v3).
    recorded_ns : int or None
        :func:`time.time_ns` when the row was (re)written, stamped by
        the upsert itself.  Drives the recording-window byte check;
        excluded from equality because it is bookkeeping, not identity.
    component_json : str or None
        Canonical per-component hash table
        (:func:`repro.core.workspace.component_json`) enabling delta
        compilation; ``None`` on legacy rows or when unknown.
    """

    path: str
    mtime_ns: int
    size: int
    source_sha: str
    content_hash: str
    npz_source_sha: Optional[str]
    n_alternatives: int
    n_attributes: int
    ctime_ns: Optional[int] = None
    recorded_ns: Optional[int] = field(default=None, compare=False)
    component_json: Optional[str] = None


@dataclass(frozen=True)
class CachedResult:
    """One cached evaluation row (path- and registry-order-free).

    The persisted complement of
    :class:`~repro.core.runtime.WorkspaceResult`: everything except the
    registry ``index`` and the ``path``, which belong to a particular
    run and are re-applied at lookup time.  ``sub_index`` 0 is the
    whole workspace; higher values are its per-objective restrictions
    (``objectives`` runs).  ``ever_best`` / ``top5_fluctuation`` are
    ``None`` unless the configuration included a Monte Carlo;
    ``group_json`` is ``None`` unless it included a member roster (the
    canonical JSON of a
    :meth:`~repro.core.engine.GroupResult.to_payload`, stored as text
    so rankings and disagreement floats round-trip exactly).
    """

    sub_index: int
    name: str
    n_alternatives: int
    n_attributes: int
    best_name: str
    best_minimum: float
    best_average: float
    best_maximum: float
    ever_best: Optional[int] = None
    top5_fluctuation: Optional[int] = None
    group_json: Optional[str] = None


@dataclass(frozen=True)
class QuarantinedWorkspace:
    """One ``quarantine`` row: a workspace held out of evaluation.

    Attributes
    ----------
    path : str
        Absolute path of the quarantined workspace JSON.
    failures : int
        Dispatch failures accumulated before quarantine.
    last_error : str
        The failure that tipped the workspace over the threshold.
    source_sha : str
        sha256 of the file bytes at quarantine time (best effort,
        ``""`` when unreadable); a run whose current bytes hash
        differently releases the entry automatically — the operator
        presumably fixed the file.
    quarantined_ns : int
        :func:`time.time_ns` when the row was written.
    """

    path: str
    failures: int
    last_error: str
    source_sha: str
    quarantined_ns: int


_LOAD_ERRORS = (OSError, ValueError, KeyError, TypeError)


class RegistryIndex:
    """The sqlite system of record for one workspace registry.

    Opens (creating if needed) the database at ``db_path`` in WAL mode.
    Use as a context manager, or call :meth:`close` explicitly::

        with RegistryIndex(registry_dir / ".repro-index.sqlite") as index:
            report = ShardedRunner(workers=4).run(paths, index=index)

    All reads (:meth:`probe`, :meth:`lookup_results`, :meth:`status`)
    are side-effect free; all writes go through single-transaction
    methods (:meth:`record_run`, :meth:`build`, :meth:`vacuum`), so a
    crash can never leave a partially-recorded run.

    The instance is thread-safe for file-backed databases: every thread
    transparently uses its own connection to ``db_path`` (created on
    first use, all closed by :meth:`close`), so concurrent WAL readers
    never share a cursor with the single writer.  ``":memory:"`` paths
    are rejected — each per-thread connection would open a distinct
    empty database.
    """

    def __init__(
        self, db_path: Union[str, Path], recover: bool = True
    ) -> None:
        """Open or create the index database at ``db_path``.

        A physically corrupt database (torn page, zeroed header) is not
        fatal: with ``recover`` (the default) the damaged file is moved
        aside to a ``.corrupt`` sibling, a fresh database is created in
        its place, and the rebuild is stamped into ``index_meta``
        (``last_rebuild_ns`` / ``rebuild_reason``, surfaced by
        :meth:`status` and ``repro index doctor``).  The index is
        derived data — losing it costs one warm-up run, never
        correctness.  ``recover=False`` re-raises instead, for callers
        that want to inspect the damage.
        """
        if str(db_path) == ":memory:":
            raise ValueError(
                "RegistryIndex needs a file-backed database; ':memory:' "
                "would give every thread its own empty index"
            )
        self.db_path = Path(db_path)
        self._local = threading.local()
        # thread ident -> (owning thread, its connection); dead owners
        # are reaped on the next connect so a thread-per-request server
        # cannot accumulate file descriptors
        self._connections: Dict[
            int, Tuple[threading.Thread, sqlite3.Connection]
        ] = {}
        self._connections_lock = threading.Lock()
        self._closed = False
        try:
            self._initialise_schema()
        except sqlite3.DatabaseError as exc:
            if not recover or isinstance(exc, sqlite3.OperationalError):
                # OperationalError is environmental (locked, read-only,
                # bad path) — rebuilding would destroy a healthy index.
                self.close()
                raise
            detail = self._integrity_report()
            self._recover(f"open failed: {exc} (integrity: {detail})")
        except BaseException:
            self.close()
            raise

    def _initialise_schema(self) -> None:
        """Create/verify the schema on this thread's connection."""
        conn = self._conn
        with conn:
            conn.executescript(_SCHEMA)
            self._migrate_schema()

    def _integrity_report(self) -> str:
        """Best-effort ``PRAGMA integrity_check`` summary of the db file."""
        try:
            conn = sqlite3.connect(self.db_path)
            try:
                rows = conn.execute("PRAGMA integrity_check").fetchall()
                return "; ".join(str(row[0]) for row in rows[:4])
            finally:
                conn.close()
        except sqlite3.Error as exc:
            return f"integrity_check failed: {exc}"

    def _recover(self, reason: str) -> Path:
        """Move the corrupt database aside and recreate it empty.

        The damaged file becomes a ``.corrupt`` sibling (kept for
        forensics; overwritten by the next recovery), WAL/SHM sidecars
        are dropped, and the fresh database records when and why it was
        rebuilt.  Returns the quarantined file's path.
        """
        with self._connections_lock:
            connections, self._connections = self._connections, {}
        for _, conn in connections.values():
            conn.close()
        self._local.conn = None
        target = self.db_path.with_name(self.db_path.name + ".corrupt")
        os.replace(self.db_path, target)
        for suffix in ("-wal", "-shm"):
            sidecar = Path(str(self.db_path) + suffix)
            try:
                sidecar.unlink()
            except OSError:
                pass
        self._initialise_schema()
        with self._conn:
            self._conn.execute("BEGIN IMMEDIATE")
            self._set_meta("last_rebuild_ns", str(time.time_ns()))
            self._set_meta("rebuild_reason", reason)
            self._set_meta("corrupt_copy", str(target))
        _metrics.registry().counter(
            "repro_index_rebuilds_total",
            "Corrupt-index move-aside-and-rebuild recoveries.",
        ).inc()
        return target

    def _connect(self) -> sqlite3.Connection:
        """Open this thread's connection (pragmas applied) and cache it.

        ``check_same_thread=False`` only so :meth:`close` (and the
        dead-owner reap below) may close connections owned by other
        threads; each connection is used for queries exclusively by the
        thread that created it.
        """
        conn = sqlite3.connect(self.db_path, check_same_thread=False)
        conn.row_factory = sqlite3.Row
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
        except BaseException:
            conn.close()
            raise
        reaped: List[sqlite3.Connection] = []
        with self._connections_lock:
            if self._closed:
                conn.close()
                raise ValueError(f"registry index {self.db_path} is closed")
            for ident in [
                ident
                for ident, (owner, _) in self._connections.items()
                if not owner.is_alive()
            ]:
                reaped.append(self._connections.pop(ident)[1])
            self._connections[threading.get_ident()] = (
                threading.current_thread(),
                conn,
            )
        for dead in reaped:
            dead.close()
        self._local.conn = conn
        return conn

    @property
    def _conn(self) -> sqlite3.Connection:
        """The calling thread's connection, opened lazily."""
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = self._connect()
        return conn

    def _migrate_schema(self) -> None:
        """Bring a legacy database up to the current schema in place.

        Newer schema versions only *add* nullable columns/tables, so
        migration is a sequence of ``ALTER TABLE ... ADD COLUMN``
        statements: an index written before the group axis (schema 1),
        or before the v3 workspace fingerprints (``ctime_ns`` /
        ``recorded_ns`` / ``component_json``), opens cleanly —
        ``repro index status`` and every cache lookup keep working,
        existing rows untouched (their new columns read as ``NULL``,
        which every consumer treats as "unknown, verify the long way").
        Only a *newer* (or unparseable) recorded version is refused,
        since this code cannot know what it means.
        """
        row = self._conn.execute(
            "SELECT value FROM index_meta WHERE key = 'schema_version'"
        ).fetchone()
        stored: Optional[int] = None
        if row is not None:
            try:
                stored = int(row["value"])
            except ValueError:
                stored = -1
        if stored is not None and (stored > SCHEMA_VERSION or stored < 1):
            raise ValueError(
                f"unsupported registry index schema {row['value']!r} at "
                f"{self.db_path}; expected <= {SCHEMA_VERSION!r}"
            )
        for table, columns in (
            ("results", _RESULT_TAIL_COLUMNS),
            ("workspaces", _WORKSPACE_TAIL_COLUMNS),
        ):
            present = {
                info["name"]
                for info in self._conn.execute(
                    f"PRAGMA table_info({table})"
                )
            }
            for column, sql_type in columns:
                if column not in present:
                    self._conn.execute(
                        f"ALTER TABLE {table} ADD COLUMN {column} {sql_type}"
                    )
        if stored is not None and stored < 5:
            # v5 adds the version-lineage table (created by the schema
            # script above); seed it with each workspace's current
            # content hash so histories start at the migration point.
            self._conn.execute(
                "INSERT OR IGNORE INTO workspace_versions"
                " (path, content_hash, first_seen_ns)"
                " SELECT path, content_hash, COALESCE(recorded_ns, 0)"
                " FROM workspaces"
            )
        if row is None:
            self._conn.execute(
                "INSERT INTO index_meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )
        elif stored != SCHEMA_VERSION:
            self._conn.execute(
                "UPDATE index_meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION),),
            )

    def _get_meta(self, key: str) -> Optional[str]:
        """One ``index_meta`` value, or ``None`` when unset."""
        row = self._conn.execute(
            "SELECT value FROM index_meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row["value"]

    def _set_meta(self, key: str, value: str) -> None:
        """Upsert one ``index_meta`` value (caller owns the transaction)."""
        self._conn.execute(
            "INSERT OR REPLACE INTO index_meta (key, value) VALUES (?, ?)",
            (key, value),
        )

    def ping(self) -> bool:
        """Cheap liveness probe: can the database answer a query at all?

        Raises ``sqlite3.Error`` when it cannot — the service's
        ``/healthz`` maps that to a degraded report.
        """
        self._conn.execute("SELECT 1").fetchone()
        return True

    def check(self) -> Dict[str, object]:
        """Run ``PRAGMA integrity_check`` on the open database.

        Returns ``{"ok": bool, "findings": [...]}``; damage that the
        open itself did not trip (a zeroed interior page, say) shows up
        here.  ``repro index doctor`` rebuilds when this reports
        damage.
        """
        try:
            rows = self._conn.execute(
                "PRAGMA integrity_check"
            ).fetchall()
            findings = [str(row[0]) for row in rows]
        except sqlite3.DatabaseError as exc:
            findings = [f"{type(exc).__name__}: {exc}"]
        return {"ok": findings == ["ok"], "findings": findings}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close every per-thread sqlite connection."""
        with self._connections_lock:
            self._closed = True
            connections, self._connections = self._connections, {}
        for _, conn in connections.values():
            conn.close()
        self._local.conn = None

    def __enter__(self) -> "RegistryIndex":
        """Enter a ``with`` block; returns the open index."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the index on ``with`` block exit."""
        self.close()

    # ------------------------------------------------------------------
    # Probing (read-only freshness ladder)
    # ------------------------------------------------------------------

    @staticmethod
    def _key(path: Union[str, Path]) -> str:
        return os.path.abspath(str(path))

    def _stored(self, key: str) -> Optional[IndexedWorkspace]:
        row = self._conn.execute(
            "SELECT * FROM workspaces WHERE path = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        return IndexedWorkspace(
            path=row["path"],
            mtime_ns=row["mtime_ns"],
            size=row["size"],
            source_sha=row["source_sha"],
            content_hash=row["content_hash"],
            npz_source_sha=row["npz_source_sha"],
            n_alternatives=row["n_alternatives"],
            n_attributes=row["n_attributes"],
            ctime_ns=row["ctime_ns"],
            recorded_ns=row["recorded_ns"],
            component_json=row["component_json"],
        )

    def lookup_workspace(
        self, path: Union[str, Path]
    ) -> Optional[IndexedWorkspace]:
        """The stored row for one workspace path, exactly as indexed.

        Unlike :meth:`probe` this never touches the filesystem — it is
        the *previous* recorded identity (or ``None``), which is what
        the delta-compilation path diffs a changed file against.
        """
        return self._stored(self._key(path))

    def _derive(
        self,
        key: str,
        st: os.stat_result,
        arrays,
        npz_path: Path,
        source_sha: str,
        warm_artifact: bool,
    ) -> Optional[IndexedWorkspace]:
        """Fingerprint a new/changed workspace from the probe's evidence.

        ``arrays`` is the fresh-artifact payload from
        :func:`repro.core.workspace._fresh_artifact` (the single
        definition of ``.npz`` freshness) — when present, the content
        hash and shape signature come straight out of the artifact
        metadata with no JSON parse.  Otherwise the workspace JSON is
        parsed; with ``warm_artifact`` the compiled arrays are also
        (re)persisted so the next batch run's workers mmap them.
        """
        if arrays is not None:
            n_alternatives, n_attributes = arrays["u_avg"].shape
            content = str(arrays.get("content_hash"))
            npz_sha = source_sha
            raw_components = arrays.get("component_json")
            components = (
                str(raw_components) if raw_components is not None else None
            )
        else:
            try:
                problem = _workspace.load(Path(key))
            except _LOAD_ERRORS:
                return None
            content = _workspace.content_hash(problem)
            components = _workspace.component_json(problem)
            if warm_artifact:
                compiled = compile_problem(problem)
                _workspace.save_compiled_arrays(
                    compiled,
                    npz_path,
                    source_sha,
                    content,
                    component_json=components,
                )
                n_alternatives = compiled.n_alternatives
                n_attributes = compiled.n_attributes
                npz_sha = source_sha
            else:
                n_alternatives = len(problem.alternative_names)
                n_attributes = len(problem.attribute_names)
                npz_sha = None
        return IndexedWorkspace(
            path=key,
            mtime_ns=st.st_mtime_ns,
            size=st.st_size,
            source_sha=source_sha,
            content_hash=content,
            npz_source_sha=npz_sha,
            n_alternatives=int(n_alternatives),
            n_attributes=int(n_attributes),
            ctime_ns=st.st_ctime_ns,
            component_json=components,
        )

    def _probe(
        self, path: Union[str, Path], warm_artifact: bool = False
    ) -> Tuple[Optional[IndexedWorkspace], str]:
        """(record, status) for one workspace file; never writes.

        ``status`` is ``"fresh"`` (stat fingerprint matched),
        ``"touched"`` (bytes unchanged, stat updated), ``"changed"``
        (content re-hashed), ``"new"`` (no stored row) or ``"error"``
        (unreadable/unparseable — record is ``None``).
        """
        key = self._key(path)
        try:
            st = os.stat(key)
        except OSError:
            return None, "error"
        stored = self._stored(key)
        stat_match = (
            stored is not None
            and stored.mtime_ns == st.st_mtime_ns
            and stored.size == st.st_size
            and stored.ctime_ns == st.st_ctime_ns
        )
        if stat_match:
            if not self._needs_byte_check(stored, st):
                return stored, "fresh"
            # Recording-window byte check: only the raw-byte sha is in
            # question (the stat pair is current), so skip the artifact
            # probe entirely on the happy path.
            try:
                if _workspace._file_sha256(Path(key)) == stored.source_sha:
                    return stored, "fresh"
            except OSError:
                return None, "error"
        try:
            # One call supplies the raw-byte sha *and* the fresh-or-None
            # artifact payload, under workspace.py's single freshness
            # definition.
            arrays, npz_path, source_sha = _workspace._fresh_artifact(
                Path(key), mmap_arrays=True
            )
        except OSError:
            return None, "error"
        if stored is not None and stored.source_sha == source_sha:
            if stat_match:
                # recording-window byte check passed: the stat pair was
                # already current, nothing to persist
                return stored, "fresh"
            return (
                replace(
                    stored,
                    mtime_ns=st.st_mtime_ns,
                    size=st.st_size,
                    ctime_ns=st.st_ctime_ns,
                ),
                "touched",
            )
        record = self._derive(
            key, st, arrays, npz_path, source_sha, warm_artifact
        )
        if record is None:
            return None, "error"
        return record, ("changed" if stored is not None else "new")

    @staticmethod
    def needs_restamp(stored: "IndexedWorkspace") -> bool:
        """Whether re-persisting this unchanged row would still help.

        A ``"fresh"`` probe of a row whose ``mtime`` falls inside the
        recording window was byte-verified (see :meth:`_needs_byte_check`);
        re-stamping it moves the row out of the window so future probes
        take the pure stat fast path.  A row already outside the window
        gains nothing from another write — steady-state runs over an
        unchanged registry can skip persisting it entirely.  Pure
        record inspection; no filesystem or database access.
        """
        return (
            stored.recorded_ns is None
            or stored.mtime_ns >= stored.recorded_ns - RECORDING_WINDOW_NS
        )

    @staticmethod
    def _needs_byte_check(
        stored: IndexedWorkspace, st: os.stat_result
    ) -> bool:
        """Whether a stat-matching row must still verify raw bytes.

        The guard against mtime-preserving edits that even ``ctime``
        cannot see: when the file's ``mtime`` falls inside the window
        around the moment the row was recorded
        (:data:`RECORDING_WINDOW_NS`), a second write in the same
        filesystem timestamp tick could hide behind an identical stat
        triple — so the ``source_sha`` is re-verified.  Rows are
        re-stamped on every upsert, so a quiet file leaves the window
        after the next recorded run and returns to the pure stat fast
        path.  Legacy (pre-v3) rows have no recording time and are
        always verified.
        """
        return (
            stored.recorded_ns is None
            or st.st_mtime_ns >= stored.recorded_ns - RECORDING_WINDOW_NS
        )

    def probe(
        self, path: Union[str, Path], warm_artifact: bool = False
    ) -> Optional[IndexedWorkspace]:
        """The current identity fingerprint of one workspace file.

        Read-only: walks the freshness ladder (stat fingerprint →
        raw-byte sha → parse-and-hash) and returns the up-to-date
        :class:`IndexedWorkspace`, or ``None`` when the file is missing
        or unparseable.  Nothing is written to the database — pass the
        record to :meth:`record_run` (or use :meth:`build`) to persist
        it.

        Parameters
        ----------
        path : str or Path
            Workspace JSON file.
        warm_artifact : bool, optional
            When the content had to be re-hashed from JSON, also
            compile and persist the ``.npz`` artifact (what
            ``repro index build`` does).
        """
        record, _ = self._probe(path, warm_artifact=warm_artifact)
        return record

    def probe_with_status(
        self, path: Union[str, Path], warm_artifact: bool = False
    ) -> Tuple[Optional[IndexedWorkspace], str]:
        """:meth:`probe` plus how the record relates to the stored row.

        Returns ``(record, status)`` where ``status`` is ``"fresh"``
        (stat fingerprint matched the stored row — nothing to persist),
        ``"touched"`` / ``"changed"`` / ``"new"`` (the record is newer
        than the database; pass it to :meth:`record_probes` or
        :meth:`record_run` to persist) or ``"error"`` (record is
        ``None``).  Read-only, like :meth:`probe`.
        """
        return self._probe(path, warm_artifact=warm_artifact)

    def record_probes(self, records: Iterable[IndexedWorkspace]) -> None:
        """Persist probe fingerprints alone, in one transaction.

        For read paths that probe many workspaces without evaluating
        (e.g. the query service's registry listing): upserting the
        fingerprints lets every later probe take the stat-fingerprint
        fast path instead of re-hashing unchanged files.
        """
        records = list(records)
        if not records:
            return
        with self._conn:
            self._conn.execute("BEGIN IMMEDIATE")
            for record in records:
                self._upsert_workspace(record)

    # ------------------------------------------------------------------
    # Result cache
    # ------------------------------------------------------------------

    def lookup_results(
        self, content_hash: str, config_hash: str
    ) -> Optional[Tuple[CachedResult, ...]]:
        """The cached rows for one (content, configuration) pair.

        Returns the complete row set ordered by ``sub_index`` — one row
        for a plain run, ``1 + n_top_level_objectives`` rows for an
        ``objectives`` run — or ``None`` on a cache miss.  Row sets are
        written atomically, so a non-``None`` return is always complete.
        """
        rows = self._conn.execute(
            "SELECT * FROM results WHERE content_hash = ? AND config_hash = ?"
            " ORDER BY sub_index",
            (content_hash, config_hash),
        ).fetchall()
        if not rows:
            return None
        return tuple(
            CachedResult(
                sub_index=row["sub_index"],
                name=row["name"],
                n_alternatives=row["n_alternatives"],
                n_attributes=row["n_attributes"],
                best_name=row["best_name"],
                best_minimum=row["best_minimum"],
                best_average=row["best_average"],
                best_maximum=row["best_maximum"],
                ever_best=row["ever_best"],
                top5_fluctuation=row["top5_fluctuation"],
                group_json=row["group_json"],
            )
            for row in rows
        )

    def _upsert_workspace(self, record: IndexedWorkspace) -> None:
        # recorded_ns is stamped here, at write time, regardless of what
        # the record carries: every probed row was either byte-verified,
        # derived fresh, or already outside the recording window (where
        # the file's mtime tick lies in the past and cannot be reused by
        # a later write) — so "observed now" is safe, and the stamp is
        # what ages a row out of the window's byte check.
        self._conn.execute(
            "INSERT OR REPLACE INTO workspaces"
            " (path, mtime_ns, size, source_sha, content_hash,"
            "  npz_source_sha, n_alternatives, n_attributes,"
            "  ctime_ns, recorded_ns, component_json)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                record.path,
                record.mtime_ns,
                record.size,
                record.source_sha,
                record.content_hash,
                record.npz_source_sha,
                record.n_alternatives,
                record.n_attributes,
                record.ctime_ns,
                time.time_ns(),
                record.component_json,
            ),
        )
        # Version lineage: the first sighting of each (path, content)
        # pair is appended once and never rewritten, so the history
        # records every distinct content this path has carried.
        self._conn.execute(
            "INSERT OR IGNORE INTO workspace_versions"
            " (path, content_hash, first_seen_ns) VALUES (?, ?, ?)",
            (record.path, record.content_hash, time.time_ns()),
        )

    def record_run(
        self,
        records: Iterable[IndexedWorkspace],
        results: Mapping[str, Sequence[CachedResult]],
        config_hash: str,
    ) -> None:
        """Persist one run's fingerprints and fresh results atomically.

        The single-writer merge step: everything lands in one
        ``BEGIN IMMEDIATE`` transaction — every probed workspace row is
        upserted and, for each ``content_hash`` in ``results``, the old
        row set under ``config_hash`` is replaced by the new one.  A
        reader (or a crash) sees the index before or after the run,
        never in between.

        Parameters
        ----------
        records : iterable of IndexedWorkspace
            Fingerprints from :meth:`probe` for this run's registry.
        results : mapping of str to sequence of CachedResult
            Freshly evaluated row sets keyed by content hash.  Cached
            hits need not (and should not) be re-stored.
        config_hash : str
            :func:`eval_config_hash` of the run's options.
        """
        with _span("index.record_run", entries=len(results)), self._conn:
            self._conn.execute("BEGIN IMMEDIATE")
            for record in records:
                self._upsert_workspace(record)
            for content_hash, rows in results.items():
                self._conn.execute(
                    "DELETE FROM results"
                    " WHERE content_hash = ? AND config_hash = ?",
                    (content_hash, config_hash),
                )
                self._conn.executemany(
                    "INSERT INTO results"
                    " (content_hash, config_hash, sub_index, name,"
                    "  n_alternatives, n_attributes, best_name,"
                    "  best_minimum, best_average, best_maximum,"
                    "  ever_best, top5_fluctuation, group_json)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    [
                        (
                            content_hash,
                            config_hash,
                            row.sub_index,
                            row.name,
                            row.n_alternatives,
                            row.n_attributes,
                            row.best_name,
                            row.best_minimum,
                            row.best_average,
                            row.best_maximum,
                            row.ever_best,
                            row.top5_fluctuation,
                            row.group_json,
                        )
                        for row in rows
                    ],
                )

    # ------------------------------------------------------------------
    # Version lineage (schema v5)
    # ------------------------------------------------------------------

    def version_history(self, path: Union[str, Path]) -> List[Dict[str, object]]:
        """The content-hash lineage of one workspace path, oldest first.

        Each entry is ``{"content_hash", "first_seen_ns", "tag",
        "current", "n_result_sets"}`` — ``current`` marks the hash the
        ``workspaces`` row carries now, and ``n_result_sets`` counts
        the distinct evaluation configurations with cached rows for
        that content (the versions a ``?at=`` pinned read can serve).
        """
        key = self._key(path)
        current_row = self._conn.execute(
            "SELECT content_hash FROM workspaces WHERE path = ?", (key,)
        ).fetchone()
        current = None if current_row is None else current_row["content_hash"]
        return [
            {
                "content_hash": row["content_hash"],
                "first_seen_ns": row["first_seen_ns"],
                "tag": row["tag"],
                "current": row["content_hash"] == current,
                "n_result_sets": row["n_result_sets"],
            }
            for row in self._conn.execute(
                "SELECT v.content_hash, v.first_seen_ns, v.tag,"
                " (SELECT COUNT(DISTINCT config_hash) FROM results r"
                "   WHERE r.content_hash = v.content_hash) AS n_result_sets"
                " FROM workspace_versions v WHERE v.path = ?"
                " ORDER BY v.first_seen_ns, v.content_hash",
                (key,),
            )
        ]

    def tag_version(
        self, path: Union[str, Path], content_hash: str, tag: Optional[str]
    ) -> bool:
        """Attach (or clear, with ``None``) a tag on one lineage entry.

        Returns ``False`` when the ``(path, content_hash)`` pair has
        never been seen — the caller maps that to a 404.
        """
        with self._conn:
            self._conn.execute("BEGIN IMMEDIATE")
            updated = self._conn.execute(
                "UPDATE workspace_versions SET tag = ?"
                " WHERE path = ? AND content_hash = ?",
                (tag, self._key(path), content_hash),
            ).rowcount
        return updated > 0

    def version_rows(
        self, path: Union[str, Path]
    ) -> List[Tuple[str, int, Optional[str]]]:
        """Raw ``(content_hash, first_seen_ns, tag)`` lineage rows.

        The export half of registry-to-registry sync; import them into
        another index with :meth:`import_versions`.
        """
        return [
            (row["content_hash"], row["first_seen_ns"], row["tag"])
            for row in self._conn.execute(
                "SELECT content_hash, first_seen_ns, tag"
                " FROM workspace_versions WHERE path = ?"
                " ORDER BY first_seen_ns, content_hash",
                (self._key(path),),
            )
        ]

    def import_versions(
        self,
        path: Union[str, Path],
        rows: Iterable[Tuple[str, int, Optional[str]]],
    ) -> int:
        """Merge exported lineage rows under ``path`` (skip existing).

        Existing ``(path, content_hash)`` entries keep their recorded
        first-seen time and tag.  Returns the number of rows added.
        """
        key = self._key(path)
        rows = list(rows)
        if not rows:
            return 0
        with self._conn:
            self._conn.execute("BEGIN IMMEDIATE")
            added = 0
            for content_hash, first_seen_ns, tag in rows:
                added += self._conn.execute(
                    "INSERT OR IGNORE INTO workspace_versions"
                    " (path, content_hash, first_seen_ns, tag)"
                    " VALUES (?, ?, ?, ?)",
                    (key, content_hash, first_seen_ns, tag),
                ).rowcount
        return added

    # ------------------------------------------------------------------
    # Result-set export/import (registry-to-registry sync)
    # ------------------------------------------------------------------

    def result_sets(
        self, content_hash: str
    ) -> Dict[str, Tuple[CachedResult, ...]]:
        """Every cached row set for one content hash, by config hash.

        The export half of ``repro registry pull``: the returned
        mapping feeds :meth:`import_result_sets` on the destination
        index unchanged (floats round-trip exactly through sqlite
        ``REAL``, so the copy serves byte-identical bodies).
        """
        config_hashes = [
            row["config_hash"]
            for row in self._conn.execute(
                "SELECT DISTINCT config_hash FROM results"
                " WHERE content_hash = ? ORDER BY config_hash",
                (content_hash,),
            )
        ]
        return {
            config_hash: self.lookup_results(content_hash, config_hash)
            for config_hash in config_hashes
        }

    def import_result_sets(
        self,
        content_hash: str,
        sets: Mapping[str, Sequence[CachedResult]],
    ) -> Dict[str, int]:
        """Copy exported row sets in, skipping configs already cached.

        Skip-if-present by ``(content_hash, config_hash)``: an existing
        row set is never overwritten (both sides evaluated the same
        content deterministically, so the rows are interchangeable).
        One transaction; returns ``{"copied": ..., "skipped": ...}``.
        """
        copied = skipped = 0
        with self._conn:
            self._conn.execute("BEGIN IMMEDIATE")
            for config_hash, rows in sorted(sets.items()):
                existing = self._conn.execute(
                    "SELECT 1 FROM results"
                    " WHERE content_hash = ? AND config_hash = ? LIMIT 1",
                    (content_hash, config_hash),
                ).fetchone()
                if existing is not None:
                    skipped += 1
                    continue
                self._conn.executemany(
                    "INSERT INTO results"
                    " (content_hash, config_hash, sub_index, name,"
                    "  n_alternatives, n_attributes, best_name,"
                    "  best_minimum, best_average, best_maximum,"
                    "  ever_best, top5_fluctuation, group_json)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    [
                        (
                            content_hash,
                            config_hash,
                            row.sub_index,
                            row.name,
                            row.n_alternatives,
                            row.n_attributes,
                            row.best_name,
                            row.best_minimum,
                            row.best_average,
                            row.best_maximum,
                            row.ever_best,
                            row.top5_fluctuation,
                            row.group_json,
                        )
                        for row in rows
                    ],
                )
                copied += 1
        return {"copied": copied, "skipped": skipped}

    # ------------------------------------------------------------------
    # Quarantine (crash-looping workspaces held out of evaluation)
    # ------------------------------------------------------------------

    def quarantine_map(self) -> Dict[str, QuarantinedWorkspace]:
        """Every quarantined workspace, keyed by absolute path."""
        return {
            row["path"]: QuarantinedWorkspace(
                path=row["path"],
                failures=row["failures"],
                last_error=row["last_error"],
                source_sha=row["source_sha"],
                quarantined_ns=row["quarantined_ns"],
            )
            for row in self._conn.execute(
                "SELECT path, failures, last_error, source_sha,"
                " quarantined_ns FROM quarantine"
            )
        }

    def record_quarantine(
        self, entries: Iterable[Tuple[str, int, str]]
    ) -> None:
        """Quarantine ``(path, failures, error)`` entries in one write.

        Stamps each entry with the file's current content hash (best
        effort) so a later edit releases it automatically, and with the
        quarantine time for operators.
        """
        rows = []
        now = time.time_ns()
        for path, failures, error in entries:
            key = self._key(path)
            try:
                sha = _workspace._file_sha256(Path(key))
            except OSError:
                sha = ""
            rows.append((key, int(failures), error, sha, now))
        if not rows:
            return
        with self._conn:
            self._conn.execute("BEGIN IMMEDIATE")
            self._conn.executemany(
                "INSERT OR REPLACE INTO quarantine"
                " (path, failures, last_error, source_sha, quarantined_ns)"
                " VALUES (?, ?, ?, ?, ?)",
                rows,
            )

    def release_quarantine(
        self, paths: Optional[Iterable[Union[str, Path]]] = None
    ) -> int:
        """Release quarantined workspaces (all of them when unspecified).

        Returns the number of entries removed.
        """
        with self._conn:
            self._conn.execute("BEGIN IMMEDIATE")
            if paths is None:
                removed = self._conn.execute(
                    "DELETE FROM quarantine"
                ).rowcount
            else:
                removed = 0
                for path in paths:
                    removed += self._conn.execute(
                        "DELETE FROM quarantine WHERE path = ?",
                        (self._key(path),),
                    ).rowcount
        return int(removed)

    # ------------------------------------------------------------------
    # Maintenance verbs (repro index build|status|vacuum|doctor)
    # ------------------------------------------------------------------

    def build(
        self,
        paths: Iterable[Union[str, Path]],
        warm_artifacts: bool = True,
    ) -> Dict[str, int]:
        """Index every workspace in ``paths``; returns probe-status counts.

        Probes each file (compiling and persisting missing/stale
        ``.npz`` artifacts when ``warm_artifacts``) and upserts all
        fingerprints in one transaction.  Unreadable files are counted
        under ``"error"`` and left out of the index.

        Returns
        -------
        dict
            ``{"fresh": ..., "touched": ..., "changed": ..., "new": ...,
            "error": ...}`` file counts.
        """
        counts = {"fresh": 0, "touched": 0, "changed": 0, "new": 0, "error": 0}
        records: List[IndexedWorkspace] = []
        for path in paths:
            record, status = self._probe(path, warm_artifact=warm_artifacts)
            counts[status] += 1
            if record is not None and status != "fresh":
                records.append(record)
        with self._conn:
            self._conn.execute("BEGIN IMMEDIATE")
            for record in records:
                self._upsert_workspace(record)
        return counts

    def status(self) -> Dict[str, object]:
        """A snapshot of the index: row counts, disk freshness, size.

        Re-stats every indexed path (no hashing, no parsing) to report
        how much of the index is still current.

        Returns
        -------
        dict
            ``n_workspaces``, ``n_result_rows``, ``n_result_sets``
            (distinct ``(content_hash, config_hash)`` pairs),
            ``n_configs`` (distinct configurations),
            ``n_group_rows`` (rows carrying a cached group payload),
            ``result_bytes`` (total cached-result payload bytes: text
            columns at their stored length, numeric columns at 8 bytes
            each), ``fresh`` / ``stale`` / ``missing`` path counts,
            ``db_bytes``, plus the degraded-state view:
            ``n_quarantined`` (workspaces held out of evaluation),
            ``last_rebuild_ns`` / ``rebuild_reason`` (most recent
            corruption recovery, ``None`` when the database has never
            been rebuilt).
        """
        n_workspaces = self._conn.execute(
            "SELECT COUNT(*) FROM workspaces"
        ).fetchone()[0]
        n_rows = self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        result_bytes = self._conn.execute(
            "SELECT COALESCE(SUM("
            " LENGTH(content_hash) + LENGTH(config_hash)"
            " + LENGTH(name) + LENGTH(best_name) + 8 * 8"
            " + COALESCE(LENGTH(group_json), 0)), 0)"
            " FROM results"
        ).fetchone()[0]
        n_group_rows = self._conn.execute(
            "SELECT COUNT(*) FROM results WHERE group_json IS NOT NULL"
        ).fetchone()[0]
        n_sets = self._conn.execute(
            "SELECT COUNT(*) FROM"
            " (SELECT DISTINCT content_hash, config_hash FROM results)"
        ).fetchone()[0]
        n_configs = self._conn.execute(
            "SELECT COUNT(DISTINCT config_hash) FROM results"
        ).fetchone()[0]
        fresh = stale = missing = 0
        for row in self._conn.execute(
            "SELECT path, mtime_ns, size FROM workspaces"
        ):
            try:
                st = os.stat(row["path"])
            except OSError:
                missing += 1
                continue
            if st.st_mtime_ns == row["mtime_ns"] and st.st_size == row["size"]:
                fresh += 1
            else:
                stale += 1
        try:
            db_bytes = os.path.getsize(self.db_path)
        except OSError:  # pragma: no cover - e.g. in-memory databases
            db_bytes = 0
        n_quarantined = self._conn.execute(
            "SELECT COUNT(*) FROM quarantine"
        ).fetchone()[0]
        last_rebuild = self._get_meta("last_rebuild_ns")
        return {
            "db_path": str(self.db_path),
            "n_workspaces": n_workspaces,
            "n_result_rows": n_rows,
            "n_result_sets": n_sets,
            "n_configs": n_configs,
            "n_group_rows": int(n_group_rows),
            "result_bytes": int(result_bytes),
            "fresh": fresh,
            "stale": stale,
            "missing": missing,
            "db_bytes": db_bytes,
            "n_quarantined": int(n_quarantined),
            "last_rebuild_ns": (
                int(last_rebuild) if last_rebuild is not None else None
            ),
            "rebuild_reason": self._get_meta("rebuild_reason"),
        }

    def vacuum(self) -> Dict[str, int]:
        """Drop dead rows and crash residue, then compact the database.

        Removes workspace rows whose file no longer exists, result row
        sets whose content hash is no longer referenced by any
        workspace row (results for *stale* content: the edited file now
        hashes differently), and stray ``.npz`` temp files a killed
        artifact writer left next to indexed workspaces
        (:func:`repro.core.workspace.sweep_temp_artifacts`).  Ends with
        sqlite ``VACUUM``.

        Returns
        -------
        dict
            ``{"workspaces_removed": ..., "result_rows_removed": ...,
            "temp_artifacts_removed": ...}``.
        """
        paths = [
            row["path"]
            for row in self._conn.execute("SELECT path FROM workspaces")
        ]
        gone = [path for path in paths if not os.path.isfile(path)]
        registry_dirs = {os.path.dirname(path) for path in paths}
        registry_dirs.add(str(self.db_path.parent))
        temp_removed = sum(
            _workspace.sweep_temp_artifacts(directory)
            for directory in sorted(registry_dirs)
            if os.path.isdir(directory)
        )
        with self._conn:
            self._conn.execute("BEGIN IMMEDIATE")
            self._conn.executemany(
                "DELETE FROM workspaces WHERE path = ?",
                [(path,) for path in gone],
            )
            self._conn.executemany(
                "DELETE FROM workspace_versions WHERE path = ?",
                [(path,) for path in gone],
            )
            removed = self._conn.execute(
                "DELETE FROM results WHERE content_hash NOT IN"
                " (SELECT content_hash FROM workspaces)"
            ).rowcount
        self._conn.execute("VACUUM")
        return {
            "workspaces_removed": len(gone),
            "result_rows_removed": int(removed),
            "temp_artifacts_removed": int(temp_removed),
        }

    def doctor(
        self, paths: Sequence[Union[str, Path]]
    ) -> Dict[str, object]:
        """Diagnose and repair the index against its registry.

        Runs the full repair ladder:

        1. ``PRAGMA integrity_check`` — a damaged database is moved
           aside and rebuilt from scratch (same recovery the
           constructor applies when the damage blocks the open);
        2. re-index every registry path (:meth:`build`, compiling
           missing/stale ``.npz`` artifacts on the way, so corrupt
           artifacts are rewritten);
        3. re-probe quarantined workspaces and release the ones that
           load again (transient crashes heal; persistent poison
           stays held);
        4. sweep crashed writers' temp artifacts.

        Returns a report dict: ``integrity_ok``, ``rebuilt``,
        ``build_counts``, ``released`` / ``held`` (quarantine paths),
        ``temp_artifacts_removed``, ``last_rebuild_ns`` and
        ``rebuild_reason``.
        """
        integrity = self.check()
        rebuilt = False
        if not integrity["ok"]:
            findings = "; ".join(integrity["findings"][:4])
            self._recover(f"doctor integrity_check: {findings}")
            rebuilt = True
        build_counts = self.build(paths, warm_artifacts=True)
        released: List[str] = []
        held: List[str] = []
        for path, row in sorted(self.quarantine_map().items()):
            record, status = self._probe(path, warm_artifact=True)
            if record is not None and status != "error":
                released.append(path)
            else:
                held.append(path)
        if released:
            self.release_quarantine(released)
        registry_dirs = {
            os.path.dirname(self._key(path)) for path in paths
        }
        registry_dirs.add(str(self.db_path.parent))
        temp_removed = sum(
            _workspace.sweep_temp_artifacts(directory)
            for directory in sorted(registry_dirs)
            if os.path.isdir(directory)
        )
        last_rebuild = self._get_meta("last_rebuild_ns")
        return {
            "integrity_ok": bool(integrity["ok"]),
            "rebuilt": rebuilt,
            "build_counts": build_counts,
            "released": released,
            "held": held,
            "temp_artifacts_removed": int(temp_removed),
            "last_rebuild_ns": (
                int(last_rebuild) if last_rebuild is not None else None
            ),
            "rebuild_reason": self._get_meta("rebuild_reason"),
        }
