"""Sharded multi-problem batch runtime.

The PR 1 engine made one decision problem fast; a repository-scale
registry (thousands of candidate shortlists, one workspace each — the
OntoMaven / reuse-landscape setting) needs the *outer* loop fast too.
This module runs a registry of workspace files through three layers:

1. **compiled artifacts** — every workspace loads through the ``.npz``
   compile cache (:func:`repro.core.workspace.load_compiled_fast`), so
   warm runs mmap dense arrays instead of re-parsing JSON;
2. **stacking** — same-shape compiled problems are grouped into
   :class:`~repro.core.engine.StackedProblem` tensor sets and evaluated
   by :class:`~repro.core.engine.StackedEvaluator` array programs, no
   Python loop over problems;
3. **sharding** — the registry is partitioned into chunks executed
   across a ``ProcessPoolExecutor``; chunks are deliberately smaller
   than ``n / workers`` (work stealing) so a shard of skewed, slow
   workspaces cannot serialise the run.

Results merge deterministically: every record carries its registry
index, the merge sorts by it, and each problem's numbers depend only on
its own compiled arrays and its own seeded RNG stream — so the merged
report is byte-identical for any worker count, chunk size or completion
order.  Unreadable registry entries are reported and skipped, never
fatal.

A fourth layer sits above the three: passing a
:class:`~repro.core.index.RegistryIndex` to :meth:`ShardedRunner.run`
adds **cross-run result caching** — workspaces whose content hash and
evaluation configuration already have rows in the index skip
compilation *and* evaluation entirely, and the merged report (still
byte-identical) marks how many entries were served from cache
(:attr:`RegistryReport.n_cached`).  Only the main process touches the
index: probing happens before the fan-out, and fresh results are
persisted in one single-writer transaction after the fan-in.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs import metrics as _metrics
from ..obs import span as _span
from ..obs import stage as _stage
from ..obs import trace as _trace
from . import faults as _faults
from .engine import (
    StackedEvaluator,
    StackedRoster,
    compile_problem,
    stack_problems,
)
from .faults import FaultPlan

__all__ = [
    "BatchOptions",
    "RetryPolicy",
    "WorkspaceResult",
    "SkippedWorkspace",
    "RegistryReport",
    "WatchCycle",
    "ShardedRunner",
    "shard_registry",
    "evaluate_registry_chunk",
    "expand_registry_source",
]


# ----------------------------------------------------------------------
# Options and result records (all picklable, all deterministic)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BatchOptions:
    """What one batch run computes per workspace.

    ``objectives`` additionally ranks every top-level objective
    restriction (the Fig. 7 view); it needs the workspace object graph,
    so those runs parse JSON instead of using the ``.npz`` fast path.
    ``simulations > 0`` adds a per-problem §V Monte Carlo
    (``sample_utilities="missing"``, one fresh seeded stream per
    problem — identical to evaluating each problem alone).

    ``group`` attaches a member roster: a tuple of
    :data:`~repro.core.group.MemberSpec` entries (see
    :func:`~repro.core.group.load_members`) resolved against every
    workspace's own hierarchy, adding a
    :class:`~repro.core.engine.GroupResult` per workspace evaluated
    through the stacked members axis.  Group runs need the object
    graph (like ``objectives``, which they conflict with) and fold the
    roster digest into the evaluation configuration hash.
    """

    objectives: bool = False
    simulations: int = 0
    method: str = "intervals"
    seed: Optional[int] = None
    use_disk_cache: bool = True
    refresh_cache: bool = True
    mmap: bool = True
    group: Optional[Tuple[Tuple[str, Tuple[Tuple[str, float, float], ...]], ...]] = None
    #: A :class:`~repro.core.faults.FaultPlan` to run under (chaos
    #: testing only).  Travels to the workers with the options, is
    #: excluded from the evaluation-configuration hash — injected
    #: faults never change what the numbers *are*, only which recovery
    #: path computes them — and costs nothing when ``None``.
    faults: Optional[FaultPlan] = None
    #: Collect spans inside chunk evaluation even when no tracer is
    #: installed in the evaluating process — how ``ShardedRunner``
    #: ships worker-side spans home.  Like ``faults``, excluded from
    #: the evaluation-configuration hash: tracing observes the run, it
    #: never changes the numbers.
    trace: bool = False


@dataclass(frozen=True)
class RetryPolicy:
    """How :class:`ShardedRunner` survives dead and hung workers.

    Attributes
    ----------
    chunk_timeout : float or None
        The *no-progress* window, in seconds: if no chunk at all
        completes for this long, the remaining in-flight chunks are
        declared hung, the pool is abandoned without waiting, and the
        chunks re-dispatch to a fresh pool.  ``None`` disables the
        timeout.
    quarantine_after : int
        A workspace whose chunk dispatch fails this many times is
        quarantined: reported in
        :attr:`RegistryReport.n_quarantined` (and ``skipped``),
        recorded in the index when one is attached, and excluded from
        later runs until released (``repro index doctor``, or the file
        content changing).  Pool-level failures charge every workspace
        in the affected chunks, so this is deliberately generous.
    split_after : int
        Once a chunk has failed this many times it re-dispatches as
        single-workspace chunks, isolating a poison workspace from its
        innocent neighbours.
    backoff_base, backoff_cap : float
        Exponential backoff between retry rounds:
        ``min(cap, base * 2**attempt)`` seconds, scaled by a
        deterministic jitter factor in ``[0.5, 1.5)``.
    """

    chunk_timeout: Optional[float] = 300.0
    quarantine_after: int = 5
    split_after: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 1.0

    def __post_init__(self):
        """Validate the retry shape."""
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ValueError("chunk_timeout must be positive (or None)")
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        if self.split_after < 1:
            raise ValueError("split_after must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")


def _iso_now() -> str:
    """The current local time as an ISO-8601 string with UTC offset."""
    return datetime.now(timezone.utc).astimezone().isoformat(
        timespec="seconds"
    )


def _backoff_delay(policy: RetryPolicy, round_no: int, attempt: int) -> float:
    """Seconds to sleep before retry round ``round_no``.

    Exponential in the highest failed ``attempt``, capped, and spread
    by a jitter factor in ``[0.5, 1.5)`` derived from the round number
    — deterministic for a given schedule (reproducible runs) while
    still decorrelating concurrent runners.
    """
    base = min(policy.backoff_cap, policy.backoff_base * (2.0 ** min(attempt, 6)))
    digest = hashlib.sha256(f"backoff:{round_no}".encode()).digest()
    jitter = 0.5 + int.from_bytes(digest[:4], "big") / 2.0**32
    return base * jitter


@dataclass(frozen=True)
class WorkspaceResult:
    """One evaluated problem (a workspace, or one of its objectives).

    ``group_json`` carries the canonical JSON of a
    :meth:`~repro.core.engine.GroupResult.to_payload` when the run had
    a member roster; it is ``None`` otherwise.
    """

    index: int
    sub_index: int
    path: str
    name: str
    n_alternatives: int
    n_attributes: int
    best_name: str
    best_minimum: float
    best_average: float
    best_maximum: float
    ever_best: Optional[int] = None
    top5_fluctuation: Optional[int] = None
    group_json: Optional[str] = None

    @property
    def order_key(self) -> Tuple[int, int]:
        """``(index, sub_index)`` — the deterministic merge sort key."""
        return (self.index, self.sub_index)


@dataclass(frozen=True)
class SkippedWorkspace:
    """A registry entry that could not be read or compiled."""

    index: int
    path: str
    error: str


@dataclass(frozen=True)
class RegistryReport:
    """The deterministic merged outcome of one registry run.

    Attributes
    ----------
    results : tuple of WorkspaceResult
        Every evaluated problem, sorted by ``(index, sub_index)`` —
        identical for any worker count, chunk size or cache state.
    skipped : tuple of SkippedWorkspace
        Unreadable registry entries, sorted by registry index.
    n_workspaces : int
        Registry entries submitted (evaluated + cached + skipped).
    n_stacks, n_chunks, workers : int
        Execution-shape metadata; never affects ``results``.
    n_cached : int
        Registry entries served from the persistent index without
        compiling or evaluating (0 when no index was passed).
    n_delta : int
        Registry entries whose edit was absorbed by delta compilation:
        the stale compiled artifact was patched in place
        (:func:`repro.core.workspace.load_compiled_delta`) and only
        that workspace was re-evaluated — numbers still byte-identical
        to a full recompute (0 when no index was passed or the
        configuration rules delta out).
    n_retried : int
        Chunk dispatches that failed (dead pool, hung worker) and were
        re-dispatched to a fresh pool.  Purely informational: the
        merged ``results`` are byte-identical however many retries it
        took.
    n_quarantined : int
        Registry entries excluded from evaluation by the quarantine:
        entries that exhausted :attr:`RetryPolicy.quarantine_after`
        dispatch failures this run, plus entries already held in the
        attached index's quarantine.  They also appear in ``skipped``.
    stage_seconds : tuple of (str, float)
        Per-stage wall-time breakdown — total seconds per span name,
        worker-side spans included, sorted by name.  Populated only
        when a tracer was installed for the run
        (:func:`repro.obs.trace.tracing`); empty otherwise.  Surfaced
        by ``repro batch --stats``.  Execution-shape metadata like
        ``n_chunks``: never affects ``results``.
    """

    results: Tuple[WorkspaceResult, ...]
    skipped: Tuple[SkippedWorkspace, ...]
    n_workspaces: int
    n_stacks: int
    n_chunks: int
    workers: int
    n_cached: int = 0
    n_delta: int = 0
    n_retried: int = 0
    n_quarantined: int = 0
    stage_seconds: Tuple[Tuple[str, float], ...] = ()

    @property
    def n_evaluated(self) -> int:
        """Result rows in the merged report (cached rows included)."""
        return len(self.results)


@dataclass(frozen=True)
class WatchCycle:
    """One polling cycle of :meth:`ShardedRunner.watch`.

    Attributes
    ----------
    cycle : int
        1-based cycle number.
    n_paths : int
        Workspace files the registry expanded to this cycle.
    n_evaluated : int
        Entries freshly evaluated (full compile or delta).
    n_delta : int
        Of those, how many were absorbed by delta compilation.
    n_cached, n_skipped : int
        Entries served from the index / reported unreadable.
    report : RegistryReport
        The cycle's full merged report.
    """

    cycle: int
    n_paths: int
    n_evaluated: int
    n_delta: int
    n_cached: int
    n_skipped: int
    report: RegistryReport


def expand_registry_source(source) -> List[str]:
    """Resolve a watch source to this instant's registry paths.

    ``source`` is a directory, a workspace file, or a sequence of
    either; directories expand recursively to their sorted ``*.json``
    files (hidden files — e.g. the index database's WAL siblings —
    excluded).  Called once per watch cycle, so files created, renamed
    or deleted between cycles are picked up.
    """
    entries = (
        [source] if isinstance(source, (str, Path)) else list(source)
    )
    paths: List[str] = []
    for entry in entries:
        root = Path(entry)
        if root.is_dir():
            paths.extend(
                sorted(
                    str(p)
                    for p in root.rglob("*.json")
                    if not p.name.startswith(".")
                )
            )
        else:
            paths.append(str(root))
    return paths


# ----------------------------------------------------------------------
# Chunking (work stealing for skewed shard sizes)
# ----------------------------------------------------------------------

def shard_registry(
    n_items: int, workers: int, chunk_size: Optional[int] = None
) -> List[range]:
    """Partition ``range(n_items)`` into contiguous work-stealing chunks.

    Chunks default to a quarter of an even split, so ~4 chunks per
    worker queue up and fast workers steal from the backlog instead of
    idling behind one slow shard.
    """
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if workers < 1:
        raise ValueError("workers must be positive")
    if chunk_size is None:
        chunk_size = max(1, -(-n_items // (workers * 4)))
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    return [
        range(start, min(start + chunk_size, n_items))
        for start in range(0, n_items, chunk_size)
    ]


# ----------------------------------------------------------------------
# Chunk evaluation (runs inside workers; top-level for picklability)
# ----------------------------------------------------------------------

def _load_chunk_problems(
    chunk: Sequence[Tuple[int, str]], options: BatchOptions
):
    """((index, sub_index, path, compiled, roster) list, skipped list).

    ``roster`` is the workspace's
    :class:`~repro.core.engine.CompiledRoster` when ``options.group``
    carries a member spec (resolved against the workspace's own
    hierarchy) and ``None`` otherwise.
    """
    from . import workspace

    loaded = []
    skipped: List[SkippedWorkspace] = []
    for index, path in chunk:
        try:
            if options.objectives:
                problem = workspace.load(path)
                # Build the whole expansion before publishing any of it,
                # so a workspace never ends up both evaluated (partial
                # rows) and skipped when a restriction fails to compile.
                expansion = [(index, 0, path, compile_problem(problem), None)]
                for sub, child in enumerate(
                    problem.hierarchy.root.children, start=1
                ):
                    expansion.append(
                        (
                            index,
                            sub,
                            path,
                            compile_problem(
                                problem.restricted_to(child.name)
                            ),
                            None,
                        )
                    )
                loaded.extend(expansion)
            elif options.group is not None:
                from .group import compiled_roster_for

                # Rosters resolve against the workspace's hierarchy, so
                # group runs parse the object graph like `objectives`;
                # structurally identical hierarchies share one resolved
                # roster through the group module's LRU.
                problem = workspace.load(path)
                roster = compiled_roster_for(
                    options.group, problem.hierarchy
                )
                loaded.append(
                    (index, 0, path, compile_problem(problem), roster)
                )
            elif options.use_disk_cache:
                compiled = workspace.load_compiled_fast(
                    path,
                    refresh=options.refresh_cache,
                    mmap_arrays=options.mmap,
                )
                loaded.append((index, 0, path, compiled, None))
            else:
                compiled = compile_problem(workspace.load(path))
                loaded.append((index, 0, path, compiled, None))
        except (OSError, ValueError, KeyError, TypeError) as exc:
            skipped.append(
                SkippedWorkspace(
                    index=index,
                    path=path,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
    return loaded, skipped


def _stacked_mc_summary(ranks) -> Tuple["object", "object"]:
    """(ever_best, top5_fluctuation) per member, as whole-stack array ops.

    ``ranks`` is the stacked ``(P, S, n_alt)`` Monte Carlo tensor.
    Matches the per-problem
    ``len(result.ever_best())`` / ``result.max_fluctuation(
    result.top_k_by_mean(5))`` numbers exactly: same stable mean-rank
    tie-break, same max-minus-min fluctuation — without building a
    result object or a percentile table per problem.
    """
    ever_best = (ranks == 1).any(axis=1).sum(axis=1)
    spread = ranks.max(axis=1) - ranks.min(axis=1)  # (P, n_alt)
    mean_rank = ranks.mean(axis=1)
    by_mean = np.argsort(mean_rank, axis=1, kind="stable")[:, :5]
    top5 = np.take_along_axis(spread, by_mean, axis=1).max(axis=1)
    return ever_best, top5


def _chunk_key(chunk: Sequence[Tuple[int, str]]) -> str:
    """A stable fault-decision key for one chunk dispatch."""
    if not chunk:
        return "chunk:empty"
    return f"chunk:{chunk[0][0]}:{chunk[-1][0]}"


def evaluate_registry_chunk(
    chunk: Sequence[Tuple[int, str]],
    options: BatchOptions,
    attempt: int = 0,
    in_worker: bool = False,
) -> Tuple[
    List[WorkspaceResult],
    List[SkippedWorkspace],
    int,
    List[Dict[str, object]],
]:
    """Evaluate one chunk of ``(registry_index, path)`` pairs.

    Loads every workspace (``.npz`` fast path unless the options need
    the object graph), stacks same-shape compiled problems and
    evaluates each stack in one array program.  Returns
    ``(results, skipped, n_stacks, spans)``; results carry registry
    indices so the caller can merge shards deterministically.

    ``spans`` ships worker-side telemetry home: with ``options.trace``
    set and no tracer installed in this process (the worker case), a
    chunk-local tracer records the evaluation and its finished spans
    return as picklable payloads for the parent to stitch
    (:meth:`repro.obs.trace.Tracer.adopt`).  When a tracer *is*
    installed (the in-process serial path), spans record straight into
    it and ``spans`` is empty.  Either way the numeric results are
    untouched.

    ``attempt`` and ``in_worker`` only matter under a fault plan
    (``options.faults``): retries draw fresh, independent fault
    decisions, and process-killing faults fire only inside pool
    workers — never in the orchestrating process.
    """
    plan = options.faults
    if plan is not None:
        key = _chunk_key(chunk)
        if in_worker:
            plan.maybe_kill(key, attempt)
        plan.maybe_sleep(key, attempt)
        _faults.install(plan)
    # A forked pool worker inherits the parent's installed tracer as a
    # dead copy (same memory image, no channel back), so inside a
    # worker a fresh chunk-local tracer always takes over — its spans
    # travel home in the return value instead.
    tracer = None
    if options.trace and (in_worker or _trace.active() is None):
        tracer = _trace.Tracer()
        _trace.install(tracer)
    try:
        with _span(
            "chunk.evaluate",
            n=len(chunk),
            attempt=attempt,
            worker=in_worker,
        ):
            with _stage("workspace.load", n=len(chunk)):
                loaded, skipped = _load_chunk_problems(chunk, options)
            if loaded:
                results, n_stacks = _evaluate_loaded(loaded, options)
            else:
                results, n_stacks = [], 0
    finally:
        if tracer is not None:
            _trace.uninstall()
        if plan is not None:
            _faults.uninstall()
    payloads = (
        [record.to_payload() for record in tracer.spans()]
        if tracer is not None
        else []
    )
    return results, skipped, n_stacks, payloads


def _evaluate_loaded(
    loaded: Sequence[tuple], options: BatchOptions
) -> Tuple[List[WorkspaceResult], int]:
    """Evaluate already-loaded ``(index, sub_index, path, compiled,
    roster)`` entries; returns ``(results, n_stacks)``.

    The single evaluation loop behind both the chunk fan-out and the
    delta fast path — sharing it is what makes delta re-evaluation
    bit-identical to a full run by construction, not by parallel
    maintenance of two code paths.
    """
    compiled_forms = [item[3] for item in loaded]
    stacks = stack_problems(compiled_forms)
    results: List[WorkspaceResult] = []
    for stack in stacks:
        evaluator = StackedEvaluator(stack)
        with _stage("eval.stacked", problems=stack.n_problems):
            evaluations = evaluator.evaluate_all()
        mc_stats = None
        if options.simulations:
            with _stage(
                "eval.montecarlo",
                problems=stack.n_problems,
                simulations=options.simulations,
            ):
                ranks, _ = evaluator.monte_carlo_ranks(
                    method=options.method,
                    n_simulations=options.simulations,
                    seed=options.seed,
                    sample_utilities="missing",
                )
                mc_stats = _stacked_mc_summary(ranks)
        group_payloads = None
        if options.group is not None:
            roster_stack = StackedRoster(
                [loaded[pos][4] for pos in stack.source_indices]
            )
            with _stage("eval.group", problems=stack.n_problems):
                group_payloads = [
                    json.dumps(
                        result.to_payload(),
                        sort_keys=True,
                        separators=(",", ":"),
                    )
                    for result in evaluator.group_results(roster_stack)
                ]
        for p, member_pos in enumerate(stack.source_indices):
            index, sub_index, path, compiled, _roster = loaded[member_pos]
            best = evaluations[p].best
            ever_best = top5 = None
            if mc_stats is not None:
                ever_best = int(mc_stats[0][p])
                top5 = int(mc_stats[1][p])
            results.append(
                WorkspaceResult(
                    index=index,
                    sub_index=sub_index,
                    path=path,
                    name=compiled.name,
                    n_alternatives=compiled.n_alternatives,
                    n_attributes=compiled.n_attributes,
                    best_name=best.name,
                    best_minimum=best.minimum,
                    best_average=best.average,
                    best_maximum=best.maximum,
                    ever_best=ever_best,
                    top5_fluctuation=top5,
                    group_json=(
                        group_payloads[p]
                        if group_payloads is not None
                        else None
                    ),
                )
            )
    return results, len(stacks)


# ----------------------------------------------------------------------
# The sharded runner
# ----------------------------------------------------------------------

class ShardedRunner:
    """Run a workspace registry across processes, merging deterministically.

    ``workers=None`` picks ``os.cpu_count()`` (capped at 8);
    ``workers=1`` (or a single-chunk registry) evaluates in-process —
    the merged report is byte-identical either way, which the tests and
    the ``BENCH_sharded_batch`` trajectory assert.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        options: Optional[BatchOptions] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        """Configure the pool shape, evaluation options and retry policy."""
        if workers is None:
            workers = min(os.cpu_count() or 1, 8)
        if workers < 1:
            raise ValueError("workers must be positive")
        self.workers = workers
        self.chunk_size = chunk_size
        self.options = options or BatchOptions()
        self.retry = retry or RetryPolicy()

    # ------------------------------------------------------------------
    def run(
        self,
        paths: Sequence[Union[str, Path]],
        index=None,
        refresh: bool = False,
    ) -> RegistryReport:
        """Evaluate every workspace in ``paths`` (registry order).

        Parameters
        ----------
        paths : sequence of str or Path
            The registry: workspace JSON files, in report order.
        index : RegistryIndex, optional
            A :class:`~repro.core.index.RegistryIndex` to consult
            first.  Workspaces whose content hash already has cached
            rows for this run's configuration skip compilation and
            evaluation; changed workspaces whose structure held are
            delta-compiled against their previous artifact and
            re-evaluated alone (``n_delta`` in the report); everything
            else is evaluated as usual and the index is updated
            atomically after the merge.
        refresh : bool, optional
            With ``index``: ignore cached rows (re-evaluate everything)
            but overwrite them with the fresh results.

        Returns
        -------
        RegistryReport
            Byte-identical for any worker count, chunk size, cache
            state or ``refresh`` value — caching only changes *when*
            numbers are computed, never what they are.  With a tracer
            installed (:func:`repro.obs.trace.tracing`) the run also
            records a span tree — worker spans stitched in — and the
            report's ``stage_seconds`` carries the per-stage totals.
        """
        tracer = _trace.active()
        mark = tracer.mark() if tracer is not None else 0
        with _span(
            "registry.run", n=len(paths), workers=self.workers
        ):
            report = self._run(paths, index, refresh)
        if tracer is None:
            return report
        totals: Dict[str, float] = {}
        for record in tracer.spans_since(mark):
            totals[record.name] = (
                totals.get(record.name, 0.0) + record.duration_us / 1e6
            )
        return replace(report, stage_seconds=tuple(sorted(totals.items())))

    def _run(
        self,
        paths: Sequence[Union[str, Path]],
        index=None,
        refresh: bool = False,
    ) -> RegistryReport:
        """The :meth:`run` body (wrapped in the ``registry.run`` span)."""
        if self.options.group is not None and self.options.objectives:
            raise ValueError(
                "group and objectives runs are mutually exclusive: a "
                "member roster applies to whole workspaces, not to "
                "per-objective restrictions"
            )
        indexed = [(i, str(p)) for i, p in enumerate(paths)]
        cached_results: List[WorkspaceResult] = []
        quarantine_skipped: List[SkippedWorkspace] = []
        active = indexed
        pending = indexed
        to_evaluate = indexed
        delta_loaded: List[tuple] = []
        records: Dict[str, object] = {}
        config_hash = None
        n_cached = 0
        if index is not None:
            from . import workspace as _workspace
            from .index import eval_config_hash

            config_hash = eval_config_hash(self.options)
            active, quarantine_skipped = self._apply_quarantine(
                index, indexed, _workspace
            )
            # Delta compilation patches the previous compiled artifact,
            # so it needs the artifact machinery and a configuration the
            # fast path can serve: no object-graph expansions
            # (objectives/group) and no forced re-evaluation.
            delta_ok = (
                not refresh
                and self.options.use_disk_cache
                and not self.options.objectives
                and self.options.group is None
            )
            pending = []
            to_evaluate = []
            with _stage("index.probe", entries=len(active)):
                for i, path in active:
                    record, status = index.probe_with_status(path)
                    if record is not None:
                        records[path] = record
                    rows = None
                    if record is not None and not refresh:
                        rows = index.lookup_results(
                            record.content_hash, config_hash
                        )
                    if rows is None:
                        pending.append((i, path))
                        if delta_ok and status == "changed":
                            old = index.lookup_workspace(path)
                            delta = (
                                _workspace.load_compiled_delta(
                                    path,
                                    old.content_hash,
                                    old.component_json,
                                    mmap_arrays=self.options.mmap,
                                )
                                if old is not None and old.component_json
                                else None
                            )
                            if (
                                delta is not None
                                and delta.content_hash
                                == record.content_hash
                            ):
                                delta_loaded.append(
                                    (i, 0, path, delta.compiled, None)
                                )
                                continue
                        to_evaluate.append((i, path))
                        continue
                    n_cached += 1
                    if status == "fresh" and not index.needs_restamp(
                        record
                    ):
                        # Out-of-window fresh hit: fingerprint and
                        # results are both already persisted — writing
                        # the row again would only force a WAL
                        # checkpoint.
                        del records[path]
                    cached_results.extend(
                        WorkspaceResult(
                            index=i,
                            sub_index=row.sub_index,
                            path=path,
                            name=row.name,
                            n_alternatives=row.n_alternatives,
                            n_attributes=row.n_attributes,
                            best_name=row.best_name,
                            best_minimum=row.best_minimum,
                            best_average=row.best_average,
                            best_maximum=row.best_maximum,
                            ever_best=row.ever_best,
                            top5_fluctuation=row.top5_fluctuation,
                            group_json=row.group_json,
                        )
                        for row in rows
                    )

        chunk_ranges = shard_registry(
            len(to_evaluate), self.workers, self.chunk_size
        )
        chunks = [
            [to_evaluate[i] for i in chunk_range]
            for chunk_range in chunk_ranges
            if len(chunk_range)
        ]

        results: List[WorkspaceResult] = []
        skipped: List[SkippedWorkspace] = []
        n_stacks = 0
        if delta_loaded:
            # The sliced re-evaluation: only the delta-compiled members
            # run, in-process, through the same evaluation loop the
            # chunk workers use.  Monte Carlo runs are full per-problem
            # re-evaluations here — each problem's seeded stream is its
            # own, so this is still bit-identical to a cold run.
            delta_results, delta_stacks = _evaluate_loaded(
                delta_loaded, self.options
            )
            results.extend(delta_results)
            n_stacks += delta_stacks
        n_retried = 0
        newly_quarantined: List[SkippedWorkspace] = []
        if self.workers == 1 or len(chunks) <= 1:
            # In-process: spans record straight into any installed
            # tracer, so the shipped-payload slot is always empty here.
            for chunk in chunks:
                r, s, k, _ = evaluate_registry_chunk(chunk, self.options)
                results.extend(r)
                skipped.extend(s)
                n_stacks += k
        else:
            r, s, k, n_retried, newly_quarantined = self._fan_out(chunks)
            results.extend(r)
            skipped.extend(s)
            n_stacks += k

        if index is not None:
            if newly_quarantined:
                index.record_quarantine(
                    (q.path, self.retry.quarantine_after, q.error)
                    for q in newly_quarantined
                )
            with _stage("index.commit", entries=len(records)):
                self._persist_run(
                    index, config_hash, records, pending, results
                )

        self._count_run(
            n_cached, len(delta_loaded), n_retried, len(newly_quarantined)
        )
        skipped.extend(newly_quarantined)
        skipped.extend(quarantine_skipped)
        results.extend(cached_results)
        results.sort(key=lambda r: r.order_key)
        skipped.sort(key=lambda s: s.index)
        return RegistryReport(
            results=tuple(results),
            skipped=tuple(skipped),
            n_workspaces=len(indexed),
            n_stacks=n_stacks,
            n_chunks=len(chunks),
            workers=self.workers,
            n_cached=n_cached,
            n_delta=len(delta_loaded),
            n_retried=n_retried,
            n_quarantined=len(newly_quarantined) + len(quarantine_skipped),
        )

    @staticmethod
    def _count_run(
        n_cached: int, n_delta: int, n_retried: int, n_quarantined: int
    ) -> None:
        """Fold one run's outcome into the process-wide metrics."""
        reg = _metrics.registry()
        reg.counter(
            "repro_index_cache_hits_total",
            "Registry entries served from the persistent index.",
        ).inc(n_cached)
        reg.counter(
            "repro_delta_hits_total",
            "Registry entries absorbed by delta compilation.",
        ).inc(n_delta)
        reg.counter(
            "repro_chunk_retries_total",
            "Chunk dispatches re-dispatched after a failure.",
        ).inc(n_retried)
        reg.counter(
            "repro_quarantined_total",
            "Workspaces newly quarantined after repeated failures.",
        ).inc(n_quarantined)

    @staticmethod
    def _apply_quarantine(
        index, indexed: List[Tuple[int, str]], _workspace
    ) -> Tuple[List[Tuple[int, str]], List[SkippedWorkspace]]:
        """Split the registry into active entries and quarantined skips.

        An entry held in the index's quarantine is excluded from
        evaluation — unless its file content changed since it was
        quarantined (the operator presumably fixed it), in which case
        it is released and evaluated normally.  The common case —
        empty quarantine — is one index read.
        """
        held = index.quarantine_map()
        if not held:
            return indexed, []
        active: List[Tuple[int, str]] = []
        quarantine_skipped: List[SkippedWorkspace] = []
        released: List[str] = []
        for i, path in indexed:
            row = held.get(os.path.abspath(path))
            if row is None:
                active.append((i, path))
                continue
            try:
                sha = _workspace._file_sha256(Path(path))
            except OSError:
                sha = None
            if sha is not None and sha != row.source_sha:
                released.append(path)
                active.append((i, path))
                continue
            quarantine_skipped.append(
                SkippedWorkspace(
                    index=i,
                    path=path,
                    error=(
                        f"quarantined after {row.failures} failed "
                        f"dispatch(es) ({row.last_error}); release with "
                        f"`repro index doctor` or by editing the file"
                    ),
                )
            )
        if released:
            index.release_quarantine(released)
        return active, quarantine_skipped

    def _fan_out(
        self, chunks: List[List[Tuple[int, str]]]
    ) -> Tuple[
        List[WorkspaceResult],
        List[SkippedWorkspace],
        int,
        int,
        List[SkippedWorkspace],
    ]:
        """The crash-tolerant pool fan-out.

        Dispatches every chunk to a ``ProcessPoolExecutor`` and merges
        whatever completes — a dead worker (``BrokenProcessPool``) or a
        hung one (no completion inside
        :attr:`RetryPolicy.chunk_timeout`) never discards results that
        already arrived.  Failed chunks re-dispatch to a *fresh* pool
        with exponential backoff, splitting into single-workspace
        chunks after :attr:`RetryPolicy.split_after` charged failures;
        workspaces that keep failing are quarantined after
        :attr:`RetryPolicy.quarantine_after` strikes.

        Failure attribution: one dead worker breaks the *whole* pool,
        failing every in-flight future — charging all of them would
        quarantine innocent workspaces after a handful of crashes.  A
        ``BrokenExecutor`` failure is therefore collateral (re-dispatch
        without penalty) as long as the round completed *something*;
        only a round with zero progress charges the pool break to its
        chunks, which still corners a chunk that deterministically
        kills its worker — once it is all that remains, every round is
        progress-free and it accumulates strikes until quarantine.
        Returns ``(results, skipped, n_stacks, n_retried, quarantined)``.

        Tracing: when a tracer is installed in this (parent) process,
        chunks dispatch with ``options.trace`` forced on, workers ship
        their spans back inside the chunk results, and after the last
        round the shipped spans stitch into the parent trace under the
        ``registry.fan_out`` span — sorted by (first registry index,
        attempt) so the merged trace is deterministic however the
        completion order fell out.
        """
        from concurrent.futures.process import BrokenProcessPool

        policy = self.retry
        tracer = _trace.active()
        options = (
            replace(self.options, trace=True)
            if tracer is not None
            else self.options
        )
        payload_batches: List[
            Tuple[int, int, List[Dict[str, object]]]
        ] = []
        fan_span_id: Optional[str] = None
        results: List[WorkspaceResult] = []
        skipped: List[SkippedWorkspace] = []
        n_stacks = 0
        n_retried = 0
        quarantined: List[SkippedWorkspace] = []
        failures: Dict[int, int] = {}
        work: List[Tuple[List[Tuple[int, str]], int]] = [
            (list(chunk), 0) for chunk in chunks
        ]
        round_no = 0
        with _span("registry.fan_out", chunks=len(chunks)) as fan_span:
            if fan_span is not None:
                fan_span_id = fan_span.span_id
            while work:
                batch, work = work, []
                failed: List[
                    Tuple[Tuple[List[Tuple[int, str]], int], str, bool]
                ] = []
                with _span(
                    "registry.round", round=round_no, chunks=len(batch)
                ):
                    pool = ProcessPoolExecutor(max_workers=self.workers)
                    futures = {
                        pool.submit(
                            evaluate_registry_chunk,
                            chunk,
                            options,
                            attempt,
                            True,
                        ): (chunk, attempt)
                        for chunk, attempt in batch
                    }
                    hung = False
                    progressed = False
                    pending = set(futures)
                    while pending:
                        done, pending = wait(
                            pending, timeout=policy.chunk_timeout
                        )
                        if not done:
                            # Nothing at all completed inside the
                            # window: the in-flight workers are hung.
                            # Chunks still queued (cancellable)
                            # re-dispatch without penalty; the hung
                            # ones count as failures.  The pool is
                            # abandoned without waiting.
                            for future in pending:
                                item = futures[future]
                                if future.cancel():
                                    work.append(item)
                                else:
                                    failed.append(
                                        (
                                            item,
                                            "no progress within "
                                            f"{policy.chunk_timeout:g}s",
                                            False,
                                        )
                                    )
                            hung = True
                            break
                        for future in done:
                            chunk, attempt = futures[future]
                            try:
                                r, s, k, spans = future.result()
                            except Exception as exc:
                                failed.append(
                                    (
                                        futures[future],
                                        f"{type(exc).__name__}: {exc}",
                                        isinstance(exc, BrokenProcessPool),
                                    )
                                )
                                continue
                            results.extend(r)
                            skipped.extend(s)
                            n_stacks += k
                            if spans:
                                payload_batches.append(
                                    (
                                        chunk[0][0] if chunk else -1,
                                        attempt,
                                        spans,
                                    )
                                )
                            progressed = True
                    pool.shutdown(wait=not hung, cancel_futures=True)

                max_attempt = 0
                any_charged = False
                for (chunk, attempt), error, collateral in failed:
                    charge = not (collateral and progressed)
                    any_charged = any_charged or charge
                    max_attempt = max(max_attempt, attempt)
                    survivors: List[Tuple[int, str]] = []
                    for entry in chunk:
                        i, path = entry
                        if charge:
                            failures[i] = failures.get(i, 0) + 1
                        if failures.get(i, 0) >= policy.quarantine_after:
                            quarantined.append(
                                SkippedWorkspace(
                                    index=i,
                                    path=path,
                                    error=(
                                        f"quarantined after {failures[i]} "
                                        "failed dispatch(es) "
                                        f"(last: {error})"
                                    ),
                                )
                            )
                        else:
                            survivors.append(entry)
                    if not survivors:
                        continue
                    n_retried += 1
                    worst = max(failures.get(i, 0) for i, _ in survivors)
                    if len(survivors) > 1 and worst >= policy.split_after:
                        work.extend(
                            ([entry], attempt + 1) for entry in survivors
                        )
                    else:
                        work.append((survivors, attempt + 1))
                if any_charged and work:
                    time.sleep(
                        _backoff_delay(policy, round_no, max_attempt)
                    )
                round_no += 1
        if tracer is not None and payload_batches:
            # Deterministic stitch: shipped batches sort by the
            # chunk's first registry index (then attempt), not by
            # completion order, so identical runs produce identical
            # merged traces.
            for _, _, batch in sorted(
                payload_batches, key=lambda item: (item[0], item[1])
            ):
                tracer.adopt(batch, parent_id=fan_span_id)
        return results, skipped, n_stacks, n_retried, quarantined

    @staticmethod
    def _persist_run(
        index,
        config_hash: str,
        records: Dict[str, object],
        pending: Sequence[Tuple[int, str]],
        fresh: Sequence[WorkspaceResult],
    ) -> None:
        """The single-writer merge: record fingerprints + fresh results.

        Groups the freshly evaluated rows by registry entry, converts
        each complete group to path-free
        :class:`~repro.core.index.CachedResult` rows under its content
        hash, and hands everything to
        :meth:`~repro.core.index.RegistryIndex.record_run` as one
        atomic transaction.  Skipped (unreadable) entries have no
        record and are never cached.

        Guard against mid-run edits: workers re-read each file at
        evaluation time, so a workspace edited between the probe and
        this merge would associate the *new* content's numbers with the
        *old* content hash.  Every freshly evaluated entry is therefore
        re-stat'ed here — if its fingerprint no longer matches the
        probe, neither its results nor its fingerprint are recorded
        (the next run simply re-evaluates it).
        """
        from .index import CachedResult

        path_by_index = dict(pending)
        by_entry: Dict[int, List[WorkspaceResult]] = {}
        for result in fresh:
            by_entry.setdefault(result.index, []).append(result)
        to_record = dict(records)
        store: Dict[str, Tuple[CachedResult, ...]] = {}
        for i, rows in by_entry.items():
            path = path_by_index[i]
            record = records.get(path)
            if record is None:
                continue
            try:
                st = os.stat(record.path)
            except OSError:
                st = None
            if st is None or (
                st.st_mtime_ns,
                st.st_size,
                st.st_ctime_ns,
            ) != (
                record.mtime_ns,
                record.size,
                record.ctime_ns,
            ):
                to_record.pop(path, None)
                continue
            store[record.content_hash] = tuple(
                CachedResult(
                    sub_index=row.sub_index,
                    name=row.name,
                    n_alternatives=row.n_alternatives,
                    n_attributes=row.n_attributes,
                    best_name=row.best_name,
                    best_minimum=row.best_minimum,
                    best_average=row.best_average,
                    best_maximum=row.best_maximum,
                    ever_best=row.ever_best,
                    top5_fluctuation=row.top5_fluctuation,
                    group_json=row.group_json,
                )
                for row in sorted(rows, key=lambda r: r.sub_index)
            )
        index.record_run(to_record.values(), store, config_hash)

    def with_options(self, **changes) -> "ShardedRunner":
        """A runner with the same pool shape and updated options."""
        return ShardedRunner(
            workers=self.workers,
            chunk_size=self.chunk_size,
            options=replace(self.options, **changes),
        )

    def watch(
        self,
        source,
        index,
        interval: float = 1.0,
        max_cycles: Optional[int] = None,
        on_cycle=None,
        max_poll_failures: int = 8,
    ) -> List[WatchCycle]:
        """Follow a registry: poll, ingest deltas, repeat.

        Each cycle re-expands ``source``
        (:func:`expand_registry_source`, so new/renamed/deleted files
        are noticed), runs the registry through :meth:`run` against
        ``index``, and reports a :class:`WatchCycle`.  Between cycles
        the index's stat fingerprints classify every unchanged file in
        one ``stat`` call, an edited file delta-compiles when its
        structure held, and only genuinely new content is evaluated —
        steady-state cycles over an N-workspace registry cost N stats
        and zero evaluations.

        Parameters
        ----------
        source : str, Path or sequence
            Registry directory (or explicit files) to re-expand every
            cycle.
        index : RegistryIndex
            The persistent index that carries state across cycles.
        interval : float, optional
            Seconds to sleep between cycles (the first cycle runs
            immediately).
        max_cycles : int, optional
            Stop after this many cycles; ``None`` follows forever
            (interrupt to stop).
        on_cycle : callable, optional
            Called with each :class:`WatchCycle` as it completes (e.g.
            to print a delta report); returning ``False`` — exactly —
            stops the watch after that cycle.
        max_poll_failures : int, optional
            A transient ``OSError`` while expanding or running the
            registry (an NFS blip, a directory mid-rename) is logged to
            stderr and retried with exponential backoff instead of
            killing the follow loop; after this many *consecutive*
            failures the error propagates.

        Returns
        -------
        list of WatchCycle
            Every completed cycle, in order.
        """
        cycles: List[WatchCycle] = []
        poll_failures = 0
        while max_cycles is None or len(cycles) < max_cycles:
            if cycles or poll_failures:
                backoff = min(2.0**poll_failures, 8.0) if poll_failures else 1.0
                time.sleep(interval * backoff)
            try:
                plan = self.options.faults
                if plan is not None:
                    plan.strike(
                        "registry_poll",
                        f"cycle:{len(cycles) + 1}",
                        attempt=poll_failures,
                    )
                paths = expand_registry_source(source)
                report = self.run(paths, index=index)
            except OSError as exc:
                poll_failures += 1
                # The ISO-8601 stamp lets a watch-mode incident line up
                # against trace files and the service's JSON access log.
                print(
                    f"{_iso_now()} watch: transient "
                    f"{type(exc).__name__} during "
                    f"registry poll ({exc}); "
                    f"retry {poll_failures}/{max_poll_failures}",
                    file=sys.stderr,
                )
                if poll_failures >= max_poll_failures:
                    raise
                continue
            poll_failures = 0
            cycle = WatchCycle(
                cycle=len(cycles) + 1,
                n_paths=len(paths),
                n_evaluated=(
                    report.n_workspaces
                    - report.n_cached
                    - len(report.skipped)
                ),
                n_delta=report.n_delta,
                n_cached=report.n_cached,
                n_skipped=len(report.skipped),
                report=report,
            )
            cycles.append(cycle)
            if on_cycle is not None and on_cycle(cycle) is False:
                break
        return cycles
