"""Dominance and potential optimality with imprecise information (§V).

The second sensitivity analysis GMAA offers is "the assessment of
non-dominated and potentially optimal alternatives" — decision making
with partial information in the sense of the paper's refs. [21]-[25].
In the case study it discards only 3 of the 23 ontologies: "20 out of
the 23 MM ontologies are non-dominated and potentially optimal".

Formulation (following Mateos, Ríos-Insua & Jiménez [25]):

* The feasible weights are ``W = { w : w_j in [low_j, up_j], sum w_j = 1 }``
  — the elicited attribute-weight intervals intersected with the
  simplex.
* Component utilities are imprecise too; because every ``w_j >= 0``,
  the extremes over the utility classes decouple per attribute, so

    a dominates b   iff   min_{w in W} sum_j w_j (uLow_aj - uUp_bj) >= 0
                          (and the two alternatives are not identical),

  which is a linear program in ``w``.
* ``a`` is *potentially optimal* among a set ``S`` iff

    max t  s.t.  sum_j w_j (uUp_aj - uLow_bj) >= t  for all b in S, b != a,
                 w in W

  has optimum ``t >= 0`` — there is some admissible combination of
  weights and utilities making ``a`` best.

Both LPs run through scipy's HiGGS solver by default, or the pure-
Python :mod:`repro.core.simplex` fallback (``solver="simplex"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .engine import (
    batch_dominance,
    box_simplex_argmin,
    box_simplex_minimum,
    weight_polytope,
)
from .model import AdditiveModel
from .simplex import linprog_simplex

__all__ = [
    "DominanceResult",
    "dominance_matrix",
    "dominates",
    "non_dominated",
    "potentially_optimal",
    "screen",
]

_FEAS_TOL = 1e-9


def _solve_lp(
    c: np.ndarray,
    a_ub: Optional[np.ndarray],
    b_ub: Optional[np.ndarray],
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    bounds: Sequence[Tuple[float, float]],
    solver: str,
):
    if solver == "scipy":
        from scipy.optimize import linprog

        return linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            method="highs",
        )
    if solver == "simplex":
        return linprog_simplex(
            c, a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq, bounds=bounds
        )
    raise ValueError(f"unknown solver {solver!r}; use 'scipy' or 'simplex'")


def _lp_solver(solver: str):
    """A solver-bound LP callable for the batch engine.

    Validates the solver name eagerly so a typo fails before any array
    work starts.
    """
    if solver not in ("scipy", "simplex"):
        raise ValueError(f"unknown solver {solver!r}; use 'scipy' or 'simplex'")

    def solve(c, a_ub, b_ub, a_eq, b_eq, bounds):
        return _solve_lp(c, a_ub, b_ub, a_eq, b_eq, bounds, solver)

    return solve


def _weight_polytope(model: AdditiveModel) -> Tuple[np.ndarray, np.ndarray, List[Tuple[float, float]]]:
    """(A_eq, b_eq, bounds) of ``W``: box intersect simplex."""
    return weight_polytope(model.compiled)


def dominates(
    model: AdditiveModel, a: str, b: str, solver: str = "scipy"
) -> bool:
    """Does alternative ``a`` dominate ``b`` over the imprecise model?

    True iff the worst-case utility difference (utilities of ``a`` at
    their lower envelopes, ``b`` at its upper envelopes, weights chosen
    adversarially in ``W``) is still non-negative — and the adversarial
    *best* case is strictly positive, so identical alternatives do not
    dominate each other.
    """
    names = model.alternative_names
    ia, ib = names.index(a), names.index(b)
    diff = model.u_low[ia] - model.u_up[ib]
    a_eq, b_eq, bounds = _weight_polytope(model)
    worst = _solve_lp(diff, None, None, a_eq, b_eq, bounds, solver)
    # A near-degenerate polytope (interval widths ~1e-9) can be thinner
    # than the solver's feasibility tolerance; the box-simplex greedy is
    # exact for this LP structure, so fall back instead of raising.
    worst_value = (
        float(worst.fun)
        if worst.success
        else box_simplex_minimum(diff, bounds)
    )
    if worst_value < -_FEAS_TOL:
        return False
    # Strictness check: u(a) must be able to exceed u(b) somewhere.
    best_diff = model.u_up[ia] - model.u_low[ib]
    best = _solve_lp(-best_diff, None, None, a_eq, b_eq, bounds, solver)
    best_value = (
        -float(best.fun)
        if best.success
        else -box_simplex_minimum(-best_diff, bounds)
    )
    return best_value > _FEAS_TOL


def dominance_matrix(model: AdditiveModel, solver: str = "scipy") -> np.ndarray:
    """Boolean matrix D with ``D[i, j]`` iff alternative i dominates j.

    Delegates to :func:`repro.core.engine.batch_dominance`: every
    pairwise envelope difference is materialised as one tensor and all
    pairs a cheap bound can decide are settled by array operations; the
    worst-case / strictness LPs only run for the residue.
    """
    return batch_dominance(model, _lp_solver(solver))


def non_dominated(model: AdditiveModel, solver: str = "scipy") -> Tuple[str, ...]:
    """Alternatives not dominated by any other alternative."""
    matrix = dominance_matrix(model, solver)
    names = model.alternative_names
    dominated = matrix.any(axis=0)
    return tuple(name for i, name in enumerate(names) if not dominated[i])


def potentially_optimal(
    model: AdditiveModel,
    among: Optional[Sequence[str]] = None,
    solver: str = "scipy",
) -> Tuple[str, ...]:
    """Alternatives that are best for some admissible parameters.

    ``among`` restricts the comparison set; GMAA "computes the
    potentially optimal alternatives among the non-dominated
    alternatives", so :func:`screen` passes the non-dominated set here.
    """
    names = list(model.alternative_names)
    candidates = list(among) if among is not None else list(names)
    unknown = [c for c in candidates if c not in names]
    if unknown:
        raise KeyError(f"unknown alternatives: {unknown}")
    a_eq, b_eq, bounds = _weight_polytope(model)
    n = model.n_attributes
    winners: List[str] = []
    for a in candidates:
        ia = names.index(a)
        rivals = [names.index(b) for b in candidates if b != a]
        if not rivals:
            winners.append(a)
            continue
        # Variables: (w_1..w_n, t); maximise t.
        c = np.zeros(n + 1)
        c[-1] = -1.0
        a_ub = np.zeros((len(rivals), n + 1))
        for row, ib in enumerate(rivals):
            # t - sum_j w_j (uUp_aj - uLow_bj) <= 0
            a_ub[row, :n] = -(model.u_up[ia] - model.u_low[ib])
            a_ub[row, -1] = 1.0
        b_ub = np.zeros(len(rivals))
        eq = np.zeros((1, n + 1))
        eq[0, :n] = 1.0
        lp_bounds = list(bounds) + [(-10.0, 10.0)]
        res = _solve_lp(c, a_ub, b_ub, eq, b_eq, lp_bounds, solver)
        if res.success:
            t_star = -res.fun
        else:
            # Near-degenerate polytope rejected by the solver: the
            # feasible weights collapse to (essentially) one point, so
            # evaluating any feasible vertex is exact — take the
            # box-simplex greedy point and the worst rival margin there.
            w0 = box_simplex_argmin(np.zeros(n), bounds)
            t_star = min(
                float((model.u_up[ia] - model.u_low[ib]) @ w0)
                for ib in rivals
            )
        if t_star >= -_FEAS_TOL:
            winners.append(a)
    return tuple(winners)


@dataclass(frozen=True)
class DominanceResult:
    """Outcome of the §V screening sensitivity analysis."""

    non_dominated: Tuple[str, ...]
    potentially_optimal: Tuple[str, ...]
    discarded: Tuple[str, ...]

    @property
    def survivors(self) -> Tuple[str, ...]:
        return self.potentially_optimal


def screen(model: AdditiveModel, solver: str = "scipy") -> DominanceResult:
    """Run the full §V screening: non-dominance then potential optimality.

    Returns the surviving set and the discarded alternatives — in the
    paper, three ontologies are discarded and "a further analysis is
    still required to make a final selection".
    """
    nd = non_dominated(model, solver)
    po = potentially_optimal(model, among=nd, solver=solver)
    discarded = tuple(
        name for name in model.alternative_names if name not in po
    )
    return DominanceResult(nd, po, discarded)
