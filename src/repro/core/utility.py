"""Classes of component utility functions (§III of the paper).

GMAA lets the decision maker answer the probability-equivalence
questions of utility elicitation with *value intervals*, which "leads to
classes of utility functions" instead of a single curve.  A class of
utility functions is represented here by its lower and upper envelopes:

* :class:`DiscreteUtility` — one utility interval per level of a
  :class:`~repro.core.scales.DiscreteScale` (Fig. 4: Purpose
  reliability's levels map to ``[0,.20]``, ``[.20,.40]``, ``[.40,.60]``
  and ``1.0``).
* :class:`PiecewiseLinearUtility` — lower/upper piecewise-linear
  envelopes over a :class:`~repro.core.scales.ContinuousScale` (Fig. 3:
  the *number of functional requirements covered* gets a precise linear
  utility on ``[0, 3]``).

Missing performances follow the paper's ref. [18]: the utility of the
*unknown* pseudo-value is the whole interval ``[0, 1]``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Tuple

from .interval import Interval
from .scales import MISSING, ContinuousScale, DiscreteScale, MissingType

__all__ = [
    "DiscreteUtility",
    "PiecewiseLinearUtility",
    "UtilityFunction",
    "linear_utility",
    "banded_discrete_utility",
]

#: Utility assigned to a missing performance (paper §III, ref. [18]).
MISSING_UTILITY = Interval(0.0, 1.0)


def _check_unit(interval: Interval, context: str) -> None:
    if interval.lower < -1e-12 or interval.upper > 1.0 + 1e-12:
        raise ValueError(f"{context}: utility interval {interval} outside [0, 1]")


@dataclass(frozen=True)
class DiscreteUtility:
    """A class of utility functions over a discrete linguistic scale.

    ``by_level`` maps each level code to its utility interval.  GMAA's
    convention (§III) is that utility 1 corresponds to the best
    performance and 0 to the least preferred one, so the best level must
    reach 1.0 at its upper envelope and the worst must touch 0.0 at its
    lower envelope.
    """

    scale: DiscreteScale
    by_level: Tuple[Interval, ...]
    missing_utility: Interval = MISSING_UTILITY

    def __post_init__(self) -> None:
        if len(self.by_level) != len(self.scale):
            raise ValueError(
                f"utility for scale {self.scale.name!r}: expected "
                f"{len(self.scale)} level intervals, got {len(self.by_level)}"
            )
        for code, interval in enumerate(self.by_level):
            _check_unit(interval, f"scale {self.scale.name!r} level {code}")
        # Envelopes must be monotone in the level order: a better level
        # can never be worth less than a worse one.
        for code in range(1, len(self.by_level)):
            prev, cur = self.by_level[code - 1], self.by_level[code]
            if cur.lower < prev.lower - 1e-12 or cur.upper < prev.upper - 1e-12:
                raise ValueError(
                    f"scale {self.scale.name!r}: utility envelopes decrease "
                    f"between levels {code - 1} and {code}"
                )
        _check_unit(self.missing_utility, f"scale {self.scale.name!r} missing value")

    def utility(self, performance: "int | float | MissingType") -> Interval:
        """The utility interval of a performance on this attribute."""
        if performance is MISSING:
            return self.missing_utility
        if not self.scale.is_valid(performance):
            raise ValueError(
                f"{performance!r} is not a valid level of scale "
                f"{self.scale.name!r}"
            )
        return self.by_level[int(performance)]

    def average_utility(self, performance: "int | float | MissingType") -> float:
        """Midpoint of the utility interval — GMAA's *average* reading."""
        return self.utility(performance).midpoint

    @property
    def worst_performance(self) -> int:
        return self.scale.worst

    @property
    def best_performance(self) -> int:
        return self.scale.best


@dataclass(frozen=True)
class PiecewiseLinearUtility:
    """A class of utility functions over a continuous scale.

    The class is represented by two piecewise-linear envelopes through
    the elicited ``(x, [u_low, u_up])`` knots.  A precise utility
    function (Fig. 3) is the special case where every knot interval is
    degenerate.
    """

    scale: ContinuousScale
    knots: Tuple[Tuple[float, Interval], ...]
    missing_utility: Interval = MISSING_UTILITY

    def __post_init__(self) -> None:
        if len(self.knots) < 2:
            raise ValueError(
                f"utility for scale {self.scale.name!r}: need at least two knots"
            )
        xs = [x for x, _ in self.knots]
        if xs != sorted(xs):
            raise ValueError(
                f"utility for scale {self.scale.name!r}: knot abscissae must "
                "be increasing"
            )
        if len(set(xs)) != len(xs):
            raise ValueError(
                f"utility for scale {self.scale.name!r}: duplicate knot abscissae"
            )
        if abs(xs[0] - self.scale.minimum) > 1e-9 or abs(xs[-1] - self.scale.maximum) > 1e-9:
            raise ValueError(
                f"utility for scale {self.scale.name!r}: knots must span the "
                f"scale range [{self.scale.minimum}, {self.scale.maximum}]"
            )
        for x, interval in self.knots:
            _check_unit(interval, f"scale {self.scale.name!r} knot at {x}")
        _check_unit(self.missing_utility, f"scale {self.scale.name!r} missing value")

    def utility(self, performance: "float | MissingType") -> Interval:
        if performance is MISSING:
            return self.missing_utility
        if not self.scale.is_valid(performance):
            raise ValueError(
                f"{performance!r} is outside scale {self.scale.name!r} range "
                f"[{self.scale.minimum}, {self.scale.maximum}]"
            )
        x = float(performance)
        xs = [kx for kx, _ in self.knots]
        hi = bisect.bisect_left(xs, x)
        if hi < len(xs) and abs(xs[hi] - x) < 1e-12:
            return self.knots[hi][1]
        lo = hi - 1
        x0, u0 = self.knots[lo]
        x1, u1 = self.knots[hi]
        t = (x - x0) / (x1 - x0)
        return Interval(
            u0.lower + t * (u1.lower - u0.lower),
            u0.upper + t * (u1.upper - u0.upper),
        )

    def average_utility(self, performance: "float | MissingType") -> float:
        return self.utility(performance).midpoint

    @property
    def worst_performance(self) -> float:
        return self.scale.worst

    @property
    def best_performance(self) -> float:
        return self.scale.best


#: Anything usable as a component utility in the additive model.
UtilityFunction = "DiscreteUtility | PiecewiseLinearUtility"


def linear_utility(scale: ContinuousScale) -> PiecewiseLinearUtility:
    """A precise linear utility over ``scale`` honouring its direction.

    Used for the *number of functional requirements covered* criterion
    (Fig. 3): utility grows linearly from 0 at ``ValueT = 0`` to 1 at
    ``ValueT = MNVLT``.
    """
    if scale.ascending:
        knots = (
            (scale.minimum, Interval.point(0.0)),
            (scale.maximum, Interval.point(1.0)),
        )
    else:
        knots = (
            (scale.minimum, Interval.point(1.0)),
            (scale.maximum, Interval.point(0.0)),
        )
    return PiecewiseLinearUtility(scale, knots)


def banded_discrete_utility(
    scale: DiscreteScale,
    band_width: float = 0.20,
    best_is_precise: bool = True,
) -> DiscreteUtility:
    """The Fig. 4 pattern of imprecise utilities for a 0-3 scale.

    Fig. 4 shows Purpose reliability's component utilities: level 0
    spans ``[0.00, 0.20]``, level 1 ``[0.20, 0.40]``, level 2
    ``[0.40, 0.60]`` and level 3 is exactly ``1.0``.  The same banded
    shape, generalised to any number of levels, is applied to the other
    discrete criteria of the case study.

    Each non-best level ``k`` receives the interval
    ``[k * band_width, (k + 1) * band_width]``; the best level receives
    ``1.0`` exactly when ``best_is_precise``, else ``[1 - band_width, 1]``.
    """
    n = len(scale)
    if band_width <= 0 or band_width * (n - 1) > 1.0 + 1e-12:
        raise ValueError(
            f"band_width {band_width!r} infeasible for {n}-level scale "
            f"{scale.name!r}"
        )
    intervals = []
    for code in range(n):
        if code == n - 1:
            if best_is_precise:
                intervals.append(Interval.point(1.0))
            else:
                intervals.append(Interval(1.0 - band_width, 1.0))
        else:
            intervals.append(Interval(code * band_width, (code + 1) * band_width))
    return DiscreteUtility(scale, tuple(intervals))
