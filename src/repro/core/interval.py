"""Closed real intervals — the basic carrier of imprecision in GMAA.

Every imprecise quantity in the paper is a closed interval: weight
intervals elicited by trade-offs (Fig. 5), per-level component-utility
intervals (Fig. 4), the ``[0, 1]`` utility assigned to missing
performances, overall-utility bands (Fig. 6) and weight-stability
intervals (Fig. 8).  This module provides the single :class:`Interval`
type they all share, with the arithmetic the additive model needs.

The type is immutable and hashable so intervals can be dict keys and
members of frozen dataclasses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["Interval", "hull", "intersect_all"]

#: Tolerance used by :meth:`Interval.almost_equal` and the containment
#: helpers.  GMAA reports utilities to four decimal places, so 1e-9 is
#: far below anything observable in the reproduced figures.
DEFAULT_TOL = 1e-9


@dataclass(frozen=True, order=False)
class Interval:
    """A closed interval ``[lower, upper]`` on the real line.

    Degenerate intervals (``lower == upper``) represent precise values;
    :meth:`Interval.point` builds them directly.  Ordering operators
    implement the *strong* (interval-dominance) order: ``a < b`` iff
    every value of ``a`` is below every value of ``b``.
    """

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if math.isnan(self.lower) or math.isnan(self.upper):
            raise ValueError("interval bounds must not be NaN")
        if self.lower > self.upper:
            raise ValueError(
                f"lower bound {self.lower!r} exceeds upper bound {self.upper!r}"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def point(value: float) -> "Interval":
        """A degenerate interval representing a precise value."""
        return Interval(value, value)

    @staticmethod
    def unit() -> "Interval":
        """The interval ``[0, 1]`` — the utility of a missing performance."""
        return Interval(0.0, 1.0)

    @staticmethod
    def from_bounds(values: Iterable[float]) -> "Interval":
        """The tightest interval covering all ``values``."""
        vals = list(values)
        if not vals:
            raise ValueError("cannot build an interval from no values")
        return Interval(min(vals), max(vals))

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def midpoint(self) -> float:
        """The centre of the interval (GMAA's *average* reading)."""
        return (self.lower + self.upper) / 2.0

    @property
    def width(self) -> float:
        return self.upper - self.lower

    @property
    def is_point(self) -> bool:
        return self.lower == self.upper

    def contains(self, value: float, tol: float = DEFAULT_TOL) -> bool:
        return self.lower - tol <= value <= self.upper + tol

    def contains_interval(self, other: "Interval", tol: float = DEFAULT_TOL) -> bool:
        return self.lower - tol <= other.lower and other.upper <= self.upper + tol

    def overlaps(self, other: "Interval", tol: float = DEFAULT_TOL) -> bool:
        """True when the two intervals share at least one point."""
        return self.lower <= other.upper + tol and other.lower <= self.upper + tol

    def clamp(self, value: float) -> float:
        """The point of the interval closest to ``value``."""
        return min(max(value, self.lower), self.upper)

    def almost_equal(self, other: "Interval", tol: float = DEFAULT_TOL) -> bool:
        return (
            abs(self.lower - other.lower) <= tol
            and abs(self.upper - other.upper) <= tol
        )

    # ------------------------------------------------------------------
    # Arithmetic (standard interval arithmetic)
    # ------------------------------------------------------------------
    def _coerce(self, other: "Interval | float | int") -> "Interval":
        if isinstance(other, Interval):
            return other
        if isinstance(other, (int, float)):
            return Interval.point(float(other))
        raise TypeError(f"cannot combine Interval with {type(other).__name__}")

    def __add__(self, other: "Interval | float | int") -> "Interval":
        o = self._coerce(other)
        return Interval(self.lower + o.lower, self.upper + o.upper)

    __radd__ = __add__

    def __sub__(self, other: "Interval | float | int") -> "Interval":
        o = self._coerce(other)
        return Interval(self.lower - o.upper, self.upper - o.lower)

    def __rsub__(self, other: "Interval | float | int") -> "Interval":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: "Interval | float | int") -> "Interval":
        o = self._coerce(other)
        products = (
            self.lower * o.lower,
            self.lower * o.upper,
            self.upper * o.lower,
            self.upper * o.upper,
        )
        return Interval(min(products), max(products))

    __rmul__ = __mul__

    def __truediv__(self, other: "Interval | float | int") -> "Interval":
        o = self._coerce(other)
        if o.contains(0.0, tol=0.0):
            raise ZeroDivisionError("interval division by an interval containing 0")
        return self * Interval(1.0 / o.upper, 1.0 / o.lower)

    def __neg__(self) -> "Interval":
        return Interval(-self.upper, -self.lower)

    def scale(self, factor: float) -> "Interval":
        """Multiply both bounds by a scalar (may be negative)."""
        return self * factor

    def shift(self, offset: float) -> "Interval":
        return Interval(self.lower + offset, self.upper + offset)

    # ------------------------------------------------------------------
    # Set-like combinators
    # ------------------------------------------------------------------
    def intersection(self, other: "Interval") -> "Interval | None":
        """The common sub-interval, or ``None`` when disjoint."""
        lo = max(self.lower, other.lower)
        hi = min(self.upper, other.upper)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def hull(self, other: "Interval") -> "Interval":
        """The smallest interval containing both operands."""
        return Interval(min(self.lower, other.lower), max(self.upper, other.upper))

    # ------------------------------------------------------------------
    # Ordering (strong interval dominance)
    # ------------------------------------------------------------------
    def __lt__(self, other: "Interval") -> bool:
        return self.upper < other.lower

    def __gt__(self, other: "Interval") -> bool:
        return self.lower > other.upper

    def __le__(self, other: "Interval") -> bool:
        return self.upper <= other.lower

    def __ge__(self, other: "Interval") -> bool:
        return self.lower >= other.upper

    def __iter__(self) -> Iterator[float]:
        yield self.lower
        yield self.upper

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_point:
            return f"Interval({self.lower:g})"
        return f"Interval({self.lower:g}, {self.upper:g})"


def hull(intervals: Iterable[Interval]) -> Interval:
    """The smallest interval covering every interval in ``intervals``."""
    items = list(intervals)
    if not items:
        raise ValueError("hull() of an empty collection")
    result = items[0]
    for item in items[1:]:
        result = result.hull(item)
    return result


def intersect_all(intervals: Iterable[Interval]) -> Interval | None:
    """The common sub-interval of all operands, or ``None`` when empty.

    Used by group decision support: the consensus weight interval is the
    intersection of the members' elicited intervals.
    """
    items = list(intervals)
    if not items:
        raise ValueError("intersect_all() of an empty collection")
    result: Interval | None = items[0]
    for item in items[1:]:
        if result is None:
            return None
        result = result.intersection(item)
    return result
