"""Alternatives and their performances on the decision attributes.

Fig. 2 of the paper is a *performance table*: one row per attribute,
one column per candidate MM ontology, each cell a value on the
attribute's scale.  GMAA "accounts for uncertainty about alternative
performance", so a cell may be:

* a precise value (``3``, ``0.93`` — "the values entered originally
  were precise"),
* an uncertain value carrying ``(minimum, average, maximum)`` readings
  (the Fig. 2 dialog exposes exactly those three fields), or
* :data:`~repro.core.scales.MISSING` — §III: "the performance of at
  least one MM ontology was unknown for some criteria".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Sequence, Tuple, Union

from .interval import Interval
from .scales import MISSING, MissingType

__all__ = ["UncertainValue", "PerformanceValue", "Alternative", "PerformanceTable"]


@dataclass(frozen=True)
class UncertainValue:
    """A performance known only as (minimum, average, maximum).

    Matches the three entry fields of the GMAA consequences dialog
    (Fig. 2).  The average need not be the midpoint.
    """

    minimum: float
    average: float
    maximum: float

    def __post_init__(self) -> None:
        if not self.minimum <= self.average <= self.maximum:
            raise ValueError(
                f"uncertain value must satisfy min <= avg <= max, got "
                f"({self.minimum}, {self.average}, {self.maximum})"
            )

    @property
    def interval(self) -> Interval:
        return Interval(self.minimum, self.maximum)

    @staticmethod
    def precise(value: float) -> "UncertainValue":
        return UncertainValue(value, value, value)


PerformanceValue = Union[int, float, UncertainValue, MissingType]


@dataclass(frozen=True)
class Alternative:
    """One decision alternative and its performance on every attribute.

    ``performances`` maps attribute names to performance values.  The
    table-level validation (scales, completeness) lives in
    :class:`PerformanceTable`, which knows the attribute set.
    """

    name: str
    performances: Mapping[str, PerformanceValue]
    description: str = ""

    def performance(self, attribute: str) -> PerformanceValue:
        try:
            return self.performances[attribute]
        except KeyError:
            raise KeyError(
                f"alternative {self.name!r} has no performance for "
                f"attribute {attribute!r}"
            ) from None

    def is_missing(self, attribute: str) -> bool:
        return self.performance(attribute) is MISSING

    def with_performance(self, attribute: str, value: PerformanceValue) -> "Alternative":
        """A copy with one performance replaced (used by baselines)."""
        updated = dict(self.performances)
        updated[attribute] = value
        return Alternative(self.name, updated, self.description)


class PerformanceTable:
    """All alternatives of a decision problem, validated against scales.

    The table enforces that every alternative provides a value (possibly
    MISSING) for every attribute, and that non-missing values are valid
    on their attribute's scale.
    """

    def __init__(
        self,
        attributes: Mapping[str, object],
        alternatives: Sequence[Alternative],
    ) -> None:
        """``attributes`` maps attribute name -> scale object.

        Scales must expose ``is_valid(value)`` (both
        :class:`~repro.core.scales.DiscreteScale` and
        :class:`~repro.core.scales.ContinuousScale` do).
        """
        if not attributes:
            raise ValueError("a performance table needs at least one attribute")
        if not alternatives:
            raise ValueError("a performance table needs at least one alternative")
        names = [alt.name for alt in alternatives]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate alternative names: {dupes}")
        self._attributes = dict(attributes)
        self._alternatives: List[Alternative] = list(alternatives)
        self._by_name = {alt.name: alt for alt in alternatives}
        self._validate()

    def _validate(self) -> None:
        for alt in self._alternatives:
            extra = set(alt.performances) - set(self._attributes)
            if extra:
                raise ValueError(
                    f"alternative {alt.name!r} has performances for unknown "
                    f"attributes: {sorted(extra)}"
                )
            for attr_name, scale in self._attributes.items():
                value = alt.performance(attr_name)  # raises if absent
                if value is MISSING:
                    continue
                if isinstance(value, UncertainValue):
                    candidates = (value.minimum, value.average, value.maximum)
                else:
                    candidates = (value,)
                for v in candidates:
                    if not scale.is_valid(v):
                        raise ValueError(
                            f"alternative {alt.name!r}: value {v!r} invalid on "
                            f"scale of attribute {attr_name!r}"
                        )

    # ------------------------------------------------------------------
    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(self._attributes)

    @property
    def alternatives(self) -> Tuple[Alternative, ...]:
        return tuple(self._alternatives)

    @property
    def alternative_names(self) -> Tuple[str, ...]:
        return tuple(alt.name for alt in self._alternatives)

    def scale_of(self, attribute: str) -> object:
        return self._attributes[attribute]

    def __len__(self) -> int:
        return len(self._alternatives)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Alternative:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no alternative named {name!r}") from None

    # ------------------------------------------------------------------
    def attributes_with_missing(self) -> Tuple[str, ...]:
        """Attributes where at least one alternative's value is unknown.

        §III: these are the criteria that receive the extra *unknown*
        attribute value with utility interval [0, 1].
        """
        result = []
        for attr in self._attributes:
            if any(alt.is_missing(attr) for alt in self._alternatives):
                result.append(attr)
        return tuple(result)

    def missing_cells(self) -> Tuple[Tuple[str, str], ...]:
        """(alternative, attribute) pairs with unknown performance."""
        return tuple(
            (alt.name, attr)
            for alt in self._alternatives
            for attr in self._attributes
            if alt.is_missing(attr)
        )

    def subset(self, names: Iterable[str]) -> "PerformanceTable":
        """A table restricted to the given alternatives (same attributes)."""
        wanted = list(names)
        missing = [n for n in wanted if n not in self._by_name]
        if missing:
            raise KeyError(f"unknown alternatives: {missing}")
        return PerformanceTable(
            self._attributes, [self._by_name[n] for n in wanted]
        )

    def replacing_missing_with_worst(self) -> "PerformanceTable":
        """The thesis-[15] baseline treatment of unknown cells.

        §IV notes the earlier ranking "where missing performances were
        not correctly modeled (worst attribute performances were
        assigned)".  Scales expose ``worst`` for exactly this purpose.
        """
        replaced = []
        for alt in self._alternatives:
            updated = alt
            for attr, scale in self._attributes.items():
                if updated.is_missing(attr):
                    updated = updated.with_performance(attr, scale.worst)
            replaced.append(updated)
        return PerformanceTable(self._attributes, replaced)
