"""A small dense two-phase simplex solver.

:mod:`repro.core.dominance` normally solves its linear programs with
``scipy.optimize.linprog`` (HiGHS).  This module provides a dependency-
free fallback with the same calling convention, and doubles as an
independent cross-check in the property tests: both solvers must agree
on every dominance LP of the case study.

The solver handles the standard form

    minimise    c . x
    subject to  A_ub x <= b_ub
                A_eq x == b_eq
                lo_i <= x_i <= up_i

using a two-phase tableau simplex with Bland's anti-cycling rule.  It
is written for the *small* LPs of this library (tens of variables and
constraints), not for general-purpose use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["LPResult", "linprog_simplex"]

_EPS = 1e-9


@dataclass
class LPResult:
    """Mirror of the scipy ``OptimizeResult`` fields dominance uses."""

    x: Optional[np.ndarray]
    fun: Optional[float]
    status: int  # 0 = optimal, 2 = infeasible, 3 = unbounded
    success: bool
    message: str = ""


def _to_standard_form(
    c: np.ndarray,
    a_ub: Optional[np.ndarray],
    b_ub: Optional[np.ndarray],
    a_eq: Optional[np.ndarray],
    b_eq: Optional[np.ndarray],
    bounds: Sequence[Tuple[Optional[float], Optional[float]]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[str], np.ndarray, float]:
    """Shift variables to ``y = x - lo >= 0`` and stack all constraints.

    Returns (A, b, c', row_kinds, lower_shift, objective_offset) where
    row_kinds[i] is "ub" or "eq".  Finite upper bounds become extra
    ``<=`` rows.  Variables must have finite lower bounds (all LPs in
    this library do: weights live in [0, 1]).
    """
    n = len(c)
    lows = np.zeros(n)
    rows_a: List[np.ndarray] = []
    rows_b: List[float] = []
    kinds: List[str] = []

    for i, (lo, up) in enumerate(bounds):
        if lo is None:
            raise ValueError(
                "linprog_simplex requires finite lower bounds on every variable"
            )
        lows[i] = lo
        if up is not None:
            row = np.zeros(n)
            row[i] = 1.0
            rows_a.append(row)
            rows_b.append(up - lo)
            kinds.append("ub")

    if a_ub is not None:
        a_ub = np.asarray(a_ub, dtype=float)
        b_shift = np.asarray(b_ub, dtype=float) - a_ub @ lows
        for row, rhs in zip(a_ub, b_shift):
            rows_a.append(np.asarray(row, dtype=float))
            rows_b.append(float(rhs))
            kinds.append("ub")
    if a_eq is not None:
        a_eq = np.asarray(a_eq, dtype=float)
        b_shift = np.asarray(b_eq, dtype=float) - a_eq @ lows
        for row, rhs in zip(a_eq, b_shift):
            rows_a.append(np.asarray(row, dtype=float))
            rows_b.append(float(rhs))
            kinds.append("eq")

    a = np.vstack(rows_a) if rows_a else np.zeros((0, n))
    b = np.array(rows_b)
    offset = float(c @ lows)
    return a, b, np.asarray(c, dtype=float), kinds, lows, offset


def _pivot(tableau: np.ndarray, basis: List[int], row: int, col: int) -> None:
    tableau[row] /= tableau[row, col]
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > _EPS:
            tableau[r] -= tableau[r, col] * tableau[row]
    basis[row] = col


def _simplex_iterate(
    tableau: np.ndarray, basis: List[int], n_cols: int
) -> int:
    """Run simplex on a tableau whose last row is the objective.

    Returns 0 on optimality, 3 if unbounded.  Uses Bland's rule.
    """
    m = tableau.shape[0] - 1
    while True:
        obj = tableau[-1, :n_cols]
        entering = -1
        for j in range(n_cols):
            if obj[j] < -_EPS:
                entering = j
                break
        if entering < 0:
            return 0
        best_ratio = np.inf
        leaving = -1
        for i in range(m):
            coef = tableau[i, entering]
            if coef > _EPS:
                ratio = tableau[i, -1] / coef
                if ratio < best_ratio - _EPS or (
                    abs(ratio - best_ratio) <= _EPS
                    and (leaving < 0 or basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            return 3
        _pivot(tableau, basis, leaving, entering)


def linprog_simplex(
    c: Sequence[float],
    a_ub: Optional[Sequence[Sequence[float]]] = None,
    b_ub: Optional[Sequence[float]] = None,
    a_eq: Optional[Sequence[Sequence[float]]] = None,
    b_eq: Optional[Sequence[float]] = None,
    bounds: Optional[Sequence[Tuple[Optional[float], Optional[float]]]] = None,
) -> LPResult:
    """Solve a small linear program; see module docstring for the form."""
    c = np.asarray(c, dtype=float)
    n = len(c)
    if bounds is None:
        bounds = [(0.0, None)] * n
    a, b, c_std, kinds, lows, offset = _to_standard_form(
        c, a_ub, b_ub, a_eq, b_eq, bounds
    )
    m = len(b)

    # Flip rows with negative RHS (turns <= into >=, handled via artificials).
    ge_rows = set()
    for i in range(m):
        if b[i] < 0:
            a[i] = -a[i]
            b[i] = -b[i]
            if kinds[i] == "ub":
                ge_rows.add(i)

    # Columns: n structural + slacks/surplus + artificials.
    surplus_cols: dict = {}
    artificial_rows: List[int] = []
    n_slack = sum(1 for i in range(m) if kinds[i] == "ub" and i not in ge_rows)
    n_surplus = len(ge_rows)
    for i in range(m):
        if kinds[i] == "eq" or i in ge_rows:
            artificial_rows.append(i)
    n_art = len(artificial_rows)
    total = n + n_slack + n_surplus + n_art

    tableau = np.zeros((m + 1, total + 1))
    tableau[:m, :n] = a
    tableau[:m, -1] = b
    basis: List[int] = [-1] * m

    col = n
    for i in range(m):
        if kinds[i] == "ub" and i not in ge_rows:
            tableau[i, col] = 1.0
            basis[i] = col
            col += 1
    for i in sorted(ge_rows):
        tableau[i, col] = -1.0
        surplus_cols[i] = col
        col += 1
    for i in artificial_rows:
        tableau[i, col] = 1.0
        basis[i] = col
        col += 1

    if n_art:
        # Phase 1: minimise the sum of artificials.
        art_start = total - n_art
        tableau[-1, art_start:total] = 1.0
        for i in artificial_rows:
            tableau[-1] -= tableau[i]
        status = _simplex_iterate(tableau, basis, total)
        if status != 0 or tableau[-1, -1] < -1e-7:
            return LPResult(None, None, 2, False, "infeasible")
        # Drive any artificial still in the basis out (degenerate rows).
        for i in range(m):
            if basis[i] >= art_start:
                pivot_col = -1
                for j in range(art_start):
                    if abs(tableau[i, j]) > _EPS:
                        pivot_col = j
                        break
                if pivot_col >= 0:
                    _pivot(tableau, basis, i, pivot_col)
        # Remove artificial columns from consideration.
        tableau[:, art_start:total] = 0.0
        usable = art_start
    else:
        usable = total

    # Phase 2: the real objective.
    tableau[-1, :] = 0.0
    tableau[-1, :n] = c_std
    for i in range(m):
        if basis[i] < usable and abs(tableau[-1, basis[i]]) > _EPS:
            tableau[-1] -= tableau[-1, basis[i]] * tableau[i]
    status = _simplex_iterate(tableau, basis, usable)
    if status == 3:
        return LPResult(None, None, 3, False, "unbounded")

    x_std = np.zeros(total)
    for i in range(m):
        if basis[i] >= 0:
            x_std[basis[i]] = tableau[i, -1]
    x = x_std[:n] + lows
    fun = float(c @ x)
    return LPResult(x, fun, 0, True, "optimal")
