"""The additive multi-attribute utility model (§IV).

The paper evaluates every candidate with

    u(O_i) = sum_j  w_j * u_ij(x_ij)

and, because both weights and component utilities are imprecise, GMAA
reports three readings per alternative:

* **minimum** overall utility — lower weight bounds x lower utility
  envelopes,
* **average** overall utility — normalised average weights x average
  component utilities (interval midpoints),
* **maximum** overall utility — upper weight bounds x upper envelopes.

The weight *bounds* are not renormalised, which is why Fig. 6 shows
maxima above 1 (e.g. 1.1666): the upper bounds of the Fig. 5 intervals
sum to about 1.19.  "The ranking of MM ontologies is based on average
overall utilities, and minimum and maximum overall utilities give
further insight into the robustness of this ranking."

:class:`AdditiveModel` precomputes the utility matrices once so the
sensitivity analyses (stability sweeps, LP dominance, 10,000-run Monte
Carlo) evaluate weight vectors with a single matrix-vector product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .engine import BatchEvaluator, CompiledProblem, compile_problem
from .interval import Interval
from .problem import DecisionProblem

__all__ = ["AdditiveModel", "Evaluation", "RankedAlternative", "evaluate"]


@dataclass(frozen=True)
class RankedAlternative:
    """One row of a GMAA ranking display (Fig. 6)."""

    name: str
    minimum: float
    average: float
    maximum: float
    rank: int

    @property
    def interval(self) -> Interval:
        return Interval(self.minimum, self.maximum)


@dataclass(frozen=True)
class Evaluation:
    """The outcome of evaluating a decision problem.

    ``rows`` are sorted by decreasing average overall utility, matching
    the ranking the paper bases its selection on.
    """

    problem_name: str
    rows: Tuple[RankedAlternative, ...]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def names_by_rank(self) -> Tuple[str, ...]:
        return tuple(row.name for row in self.rows)

    @property
    def best(self) -> RankedAlternative:
        return self.rows[0]

    def row(self, name: str) -> RankedAlternative:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(f"no alternative named {name!r} in evaluation")

    def rank_of(self, name: str) -> int:
        return self.row(name).rank

    def average_of(self, name: str) -> float:
        return self.row(name).average

    def utility_interval(self, name: str) -> Interval:
        return self.row(name).interval

    def top(self, k: int) -> Tuple[RankedAlternative, ...]:
        return self.rows[:k]

    def overlap_count(self) -> int:
        """How many adjacent-rank pairs have overlapping utility bands.

        §IV: "the output utility intervals are very overlapped", which
        is what motivates the sensitivity analyses.
        """
        return sum(
            1
            for a, b in zip(self.rows, self.rows[1:])
            if a.interval.overlaps(b.interval)
        )


class AdditiveModel:
    """Matrix form of a decision problem's additive utility model.

    Rows are alternatives (in table order), columns attributes (in
    hierarchy leaf order).  ``u_low``/``u_avg``/``u_up`` hold the
    component-utility envelopes; ``w_low``/``w_avg``/``w_up`` the
    attribute-weight bounds and normalised averages.

    The arrays are lowered once by :func:`repro.core.engine.compile_problem`
    and shared with the batch engine; every evaluation method delegates
    to a :class:`repro.core.engine.BatchEvaluator` over that compiled
    form.
    """

    def __init__(
        self,
        problem: DecisionProblem,
        compiled: Optional[CompiledProblem] = None,
    ) -> None:
        self.problem = problem
        if compiled is None:
            compiled = compile_problem(problem)
        elif (
            compiled.alternative_names != problem.table.alternative_names
            or compiled.attribute_names != problem.hierarchy.attribute_names
        ):
            # A content-addressed cache (workspace.compile_cached) may
            # hand back a compiled form built from a different-but-equal
            # problem object; only reject structural mismatches.
            raise ValueError("compiled form belongs to a different problem")
        self.compiled = compiled
        self._evaluator = BatchEvaluator(compiled)
        self.attribute_names: Tuple[str, ...] = compiled.attribute_names
        self.alternative_names: Tuple[str, ...] = compiled.alternative_names
        self.u_low = compiled.u_low
        self.u_avg = compiled.u_avg
        self.u_up = compiled.u_up
        self.w_low = compiled.w_low
        self.w_up = compiled.w_up
        self.w_avg = compiled.w_avg

    # ------------------------------------------------------------------
    @property
    def n_alternatives(self) -> int:
        return len(self.alternative_names)

    @property
    def n_attributes(self) -> int:
        return len(self.attribute_names)

    @property
    def evaluator(self) -> BatchEvaluator:
        """The batch engine bound to this model's compiled form."""
        return self._evaluator

    def minimum_utilities(self) -> np.ndarray:
        return self._evaluator.minimum_utilities()

    def average_utilities(self) -> np.ndarray:
        return self._evaluator.average_utilities()

    def maximum_utilities(self) -> np.ndarray:
        return self._evaluator.maximum_utilities()

    def utilities_for_weights(self, weights: np.ndarray) -> np.ndarray:
        """Overall utilities for an explicit weight vector.

        Component utilities are taken at their class averages, which is
        how §V's Monte Carlo treats them ("changes can be made to the
        weights").  ``weights`` may be a single vector or a matrix of
        shape (n_samples, n_attributes).
        """
        return self._evaluator.utilities_for_weights(weights)

    def evaluate(self) -> Evaluation:
        """The Fig. 6 ranking: min/avg/max per alternative, by average."""
        return self._evaluator.evaluate()


def evaluate(problem: DecisionProblem, objective: "str | None" = None) -> Evaluation:
    """Evaluate a decision problem, optionally by a single objective.

    ``objective`` selects a non-root node to rank by (Fig. 7's
    "ranking for Understandability"); ``None`` ranks by the overall
    objective.
    """
    if objective is not None and objective != problem.hierarchy.root.name:
        problem = problem.restricted_to(objective)
    return AdditiveModel(problem).evaluate()
