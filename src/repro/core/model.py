"""The additive multi-attribute utility model (§IV).

The paper evaluates every candidate with

    u(O_i) = sum_j  w_j * u_ij(x_ij)

and, because both weights and component utilities are imprecise, GMAA
reports three readings per alternative:

* **minimum** overall utility — lower weight bounds x lower utility
  envelopes,
* **average** overall utility — normalised average weights x average
  component utilities (interval midpoints),
* **maximum** overall utility — upper weight bounds x upper envelopes.

The weight *bounds* are not renormalised, which is why Fig. 6 shows
maxima above 1 (e.g. 1.1666): the upper bounds of the Fig. 5 intervals
sum to about 1.19.  "The ranking of MM ontologies is based on average
overall utilities, and minimum and maximum overall utilities give
further insight into the robustness of this ranking."

:class:`AdditiveModel` precomputes the utility matrices once so the
sensitivity analyses (stability sweeps, LP dominance, 10,000-run Monte
Carlo) evaluate weight vectors with a single matrix-vector product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from .interval import Interval
from .performance import PerformanceTable, UncertainValue
from .problem import DecisionProblem
from .scales import MISSING

__all__ = ["AdditiveModel", "Evaluation", "RankedAlternative", "evaluate"]


@dataclass(frozen=True)
class RankedAlternative:
    """One row of a GMAA ranking display (Fig. 6)."""

    name: str
    minimum: float
    average: float
    maximum: float
    rank: int

    @property
    def interval(self) -> Interval:
        return Interval(self.minimum, self.maximum)


@dataclass(frozen=True)
class Evaluation:
    """The outcome of evaluating a decision problem.

    ``rows`` are sorted by decreasing average overall utility, matching
    the ranking the paper bases its selection on.
    """

    problem_name: str
    rows: Tuple[RankedAlternative, ...]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def names_by_rank(self) -> Tuple[str, ...]:
        return tuple(row.name for row in self.rows)

    @property
    def best(self) -> RankedAlternative:
        return self.rows[0]

    def row(self, name: str) -> RankedAlternative:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(f"no alternative named {name!r} in evaluation")

    def rank_of(self, name: str) -> int:
        return self.row(name).rank

    def average_of(self, name: str) -> float:
        return self.row(name).average

    def utility_interval(self, name: str) -> Interval:
        return self.row(name).interval

    def top(self, k: int) -> Tuple[RankedAlternative, ...]:
        return self.rows[:k]

    def overlap_count(self) -> int:
        """How many adjacent-rank pairs have overlapping utility bands.

        §IV: "the output utility intervals are very overlapped", which
        is what motivates the sensitivity analyses.
        """
        return sum(
            1
            for a, b in zip(self.rows, self.rows[1:])
            if a.interval.overlaps(b.interval)
        )


def _utility_triplet(fn, performance) -> Tuple[float, float, float]:
    """(lower, average, upper) component utility of one performance."""
    if performance is MISSING:
        interval = fn.utility(MISSING)
        return interval.lower, interval.midpoint, interval.upper
    if isinstance(performance, UncertainValue):
        at_min = fn.utility(performance.minimum)
        at_avg = fn.utility(performance.average)
        at_max = fn.utility(performance.maximum)
        lower = min(at_min.lower, at_avg.lower, at_max.lower)
        upper = max(at_min.upper, at_avg.upper, at_max.upper)
        return lower, at_avg.midpoint, upper
    interval = fn.utility(performance)
    return interval.lower, interval.midpoint, interval.upper


class AdditiveModel:
    """Matrix form of a decision problem's additive utility model.

    Rows are alternatives (in table order), columns attributes (in
    hierarchy leaf order).  ``u_low``/``u_avg``/``u_up`` hold the
    component-utility envelopes; ``w_low``/``w_avg``/``w_up`` the
    attribute-weight bounds and normalised averages.
    """

    def __init__(self, problem: DecisionProblem) -> None:
        self.problem = problem
        self.attribute_names: Tuple[str, ...] = problem.hierarchy.attribute_names
        self.alternative_names: Tuple[str, ...] = problem.table.alternative_names
        n_alt = len(self.alternative_names)
        n_att = len(self.attribute_names)
        self.u_low = np.zeros((n_alt, n_att))
        self.u_avg = np.zeros((n_alt, n_att))
        self.u_up = np.zeros((n_alt, n_att))
        for i, alt in enumerate(problem.table.alternatives):
            for j, attr in enumerate(self.attribute_names):
                fn = problem.utility_function(attr)
                lo, avg, up = _utility_triplet(fn, alt.performance(attr))
                self.u_low[i, j] = lo
                self.u_avg[i, j] = avg
                self.u_up[i, j] = up
        intervals = [
            problem.weights.attribute_weight_interval(a)
            for a in self.attribute_names
        ]
        averages = problem.weights.attribute_averages()
        self.w_low = np.array([iv.lower for iv in intervals])
        self.w_up = np.array([iv.upper for iv in intervals])
        self.w_avg = np.array([averages[a] for a in self.attribute_names])

    # ------------------------------------------------------------------
    @property
    def n_alternatives(self) -> int:
        return len(self.alternative_names)

    @property
    def n_attributes(self) -> int:
        return len(self.attribute_names)

    def minimum_utilities(self) -> np.ndarray:
        return self.u_low @ self.w_low

    def average_utilities(self) -> np.ndarray:
        return self.u_avg @ self.w_avg

    def maximum_utilities(self) -> np.ndarray:
        return self.u_up @ self.w_up

    def utilities_for_weights(self, weights: np.ndarray) -> np.ndarray:
        """Overall utilities for an explicit weight vector.

        Component utilities are taken at their class averages, which is
        how §V's Monte Carlo treats them ("changes can be made to the
        weights").  ``weights`` may be a single vector or a matrix of
        shape (n_samples, n_attributes).
        """
        w = np.asarray(weights, dtype=float)
        if w.ndim == 1:
            if w.shape[0] != self.n_attributes:
                raise ValueError(
                    f"expected {self.n_attributes} weights, got {w.shape[0]}"
                )
            return self.u_avg @ w
        if w.shape[1] != self.n_attributes:
            raise ValueError(
                f"expected weight rows of length {self.n_attributes}, "
                f"got {w.shape[1]}"
            )
        return self.u_avg @ w.T

    def evaluate(self) -> Evaluation:
        """The Fig. 6 ranking: min/avg/max per alternative, by average."""
        mins = self.minimum_utilities()
        avgs = self.average_utilities()
        maxs = self.maximum_utilities()
        order = sorted(
            range(self.n_alternatives), key=lambda i: (-avgs[i], self.alternative_names[i])
        )
        rows = tuple(
            RankedAlternative(
                name=self.alternative_names[i],
                minimum=float(mins[i]),
                average=float(avgs[i]),
                maximum=float(maxs[i]),
                rank=rank,
            )
            for rank, i in enumerate(order, start=1)
        )
        return Evaluation(self.problem.name, rows)


def evaluate(problem: DecisionProblem, objective: "str | None" = None) -> Evaluation:
    """Evaluate a decision problem, optionally by a single objective.

    ``objective`` selects a non-root node to rank by (Fig. 7's
    "ranking for Understandability"); ``None`` ranks by the overall
    objective.
    """
    if objective is not None and objective != problem.hierarchy.root.name:
        problem = problem.restricted_to(objective)
    return AdditiveModel(problem).evaluate()
