"""Rank-order utilities: comparing rankings and summarising agreement.

§IV compares the GMAA ranking against the thesis-[15] ranking ("very
similar") and §V tracks how much ranks fluctuate across Monte Carlo
samples.  These helpers quantify both: Kendall's tau, Spearman's rho,
footrule distance and top-k overlap.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

__all__ = [
    "rank_vector",
    "kendall_tau",
    "spearman_rho",
    "footrule_distance",
    "top_k_overlap",
]


def rank_vector(order: Sequence[str]) -> Dict[str, int]:
    """Map each item to its 1-based rank in ``order`` (best first)."""
    if len(set(order)) != len(order):
        raise ValueError("ranking contains duplicate items")
    return {name: i for i, name in enumerate(order, start=1)}


def _common_rank_pairs(
    a: Sequence[str], b: Sequence[str]
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    ra, rb = rank_vector(a), rank_vector(b)
    common = [name for name in a if name in rb]
    if len(common) < 2:
        raise ValueError("need at least two common items to compare rankings")
    return (
        tuple(ra[name] for name in common),
        tuple(rb[name] for name in common),
    )


def kendall_tau(a: Sequence[str], b: Sequence[str]) -> float:
    """Kendall's tau-a between two rankings of (mostly) the same items.

    1.0 means identical order, -1.0 exactly reversed.  Items present in
    only one ranking are ignored.
    """
    xs, ys = _common_rank_pairs(a, b)
    n = len(xs)
    concordant = discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            sign = (xs[i] - xs[j]) * (ys[i] - ys[j])
            if sign > 0:
                concordant += 1
            elif sign < 0:
                discordant += 1
    return (concordant - discordant) / (n * (n - 1) / 2)


def spearman_rho(a: Sequence[str], b: Sequence[str]) -> float:
    """Spearman rank correlation over the common items."""
    xs, ys = _common_rank_pairs(a, b)
    n = len(xs)
    d2 = sum((x - y) ** 2 for x, y in zip(xs, ys))
    return 1.0 - 6.0 * d2 / (n * (n * n - 1))


def footrule_distance(a: Sequence[str], b: Sequence[str]) -> int:
    """Spearman footrule: total absolute rank displacement."""
    xs, ys = _common_rank_pairs(a, b)
    return sum(abs(x - y) for x, y in zip(xs, ys))


def top_k_overlap(a: Sequence[str], b: Sequence[str], k: int) -> int:
    """How many of the top-``k`` items the two rankings share.

    §V checks that the five best ontologies by Monte Carlo mode "match
    up with the results of the average overall utilities".
    """
    if k < 1:
        raise ValueError("k must be positive")
    return len(set(a[:k]) & set(b[:k]))
