"""Preference elicitation sessions (§III's question protocols).

GMAA "is intended to allay the operational difficulties involved in
the Decision Analysis methodology": the decision maker answers standard
elicitation questions — and may answer **with intervals**, "which is
less demanding for a single DM and also makes the system suitable for
group decision support".  This module provides the two protocols the
paper uses, as plain objects that record answers and build the
corresponding imprecise artefacts:

* :class:`UtilityElicitation` — the probability-equivalence method for
  a continuous attribute: for each intermediate amount ``x`` the DM
  states the probability band ``[p_low, p_up]`` at which a lottery
  between the best and worst amounts is indifferent to receiving ``x``
  for sure; ``u(x) = p``, so interval answers produce the lower/upper
  envelopes of a class of utility functions (Fig. 3's curve editor).
* :class:`WeightElicitation` — the trade-off method along one sibling
  group of the hierarchy (Fig. 5): each sibling is compared against a
  reference sibling with a ratio band ("between 1.5 and 2 times as
  important"); normalising the bands yields the local weight intervals.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .hierarchy import Hierarchy
from .interval import Interval
from .scales import ContinuousScale
from .utility import PiecewiseLinearUtility
from .weights import WeightSystem

__all__ = ["UtilityElicitation", "WeightElicitation"]


class UtilityElicitation:
    """Probability-equivalence elicitation over a continuous scale.

    >>> scale = ContinuousScale("cost", 0.0, 100.0, ascending=False)
    >>> session = UtilityElicitation(scale)
    >>> session.answer(40.0, 0.55, 0.70)   # u(40) somewhere in [.55, .70]
    >>> fn = session.build()
    >>> fn.utility(40.0)
    Interval(0.55, 0.7)
    """

    def __init__(self, scale: ContinuousScale) -> None:
        self.scale = scale
        self._answers: Dict[float, Interval] = {}

    @property
    def answers(self) -> Dict[float, Interval]:
        return dict(self._answers)

    def answer(self, amount: float, p_low: float, p_up: Optional[float] = None) -> None:
        """Record one probability-equivalence answer.

        ``p_low == p_up`` (or ``p_up`` omitted) is a precise answer.
        The amount must be strictly inside the scale range — the
        endpoints are anchored at utilities 0 and 1 by convention.
        """
        if p_up is None:
            p_up = p_low
        if not 0.0 <= p_low <= p_up <= 1.0:
            raise ValueError(
                f"probability band [{p_low}, {p_up}] must sit inside [0, 1]"
            )
        amount = float(amount)
        if not self.scale.minimum < amount < self.scale.maximum:
            raise ValueError(
                f"elicit interior amounts only; {amount} is outside "
                f"({self.scale.minimum}, {self.scale.maximum})"
            )
        self._answers[amount] = Interval(p_low, p_up)

    def retract(self, amount: float) -> None:
        """Remove a recorded answer (the DM changed their mind)."""
        try:
            del self._answers[float(amount)]
        except KeyError:
            raise KeyError(f"no answer recorded for amount {amount!r}") from None

    def inconsistencies(self) -> List[Tuple[float, float]]:
        """Pairs of amounts whose answers violate monotonicity.

        For an ascending scale a larger amount must not have a strictly
        lower utility band (and symmetrically for descending scales).
        Returns the offending ``(amount_a, amount_b)`` pairs, empty when
        the session is consistent.
        """
        items = sorted(self._answers.items())
        bad: List[Tuple[float, float]] = []
        for (x_a, u_a), (x_b, u_b) in zip(items, items[1:]):
            if self.scale.ascending:
                if u_b.upper < u_a.lower - 1e-12:
                    bad.append((x_a, x_b))
            else:
                if u_b.lower > u_a.upper + 1e-12:
                    bad.append((x_a, x_b))
        return bad

    def build(self) -> PiecewiseLinearUtility:
        """The class of utility functions the answers determine.

        Envelopes pass through every answered knot; the endpoints take
        utilities 0 and 1 according to the scale's direction.  Raises
        if the answers are inconsistent (``inconsistencies()`` names
        the offending pairs).
        """
        bad = self.inconsistencies()
        if bad:
            raise ValueError(
                f"elicited answers violate monotonicity at {bad}; "
                "retract or revise them first"
            )
        if self.scale.ascending:
            first, last = Interval.point(0.0), Interval.point(1.0)
        else:
            first, last = Interval.point(1.0), Interval.point(0.0)
        bands = [first] + [iv for _, iv in sorted(self._answers.items())] + [last]
        xs = (
            [self.scale.minimum]
            + [x for x, _ in sorted(self._answers.items())]
            + [self.scale.maximum]
        )
        # Tighten overlapping adjacent bands into monotone envelopes so
        # the class contains only direction-consistent utility curves.
        if not self.scale.ascending:
            bands = bands[::-1]
        lowers = []
        running = 0.0
        for band in bands:
            running = max(running, band.lower)
            lowers.append(running)
        uppers_rev = []
        running = 1.0
        for band in reversed(bands):
            running = min(running, band.upper)
            uppers_rev.append(running)
        uppers = uppers_rev[::-1]
        tightened = [
            Interval(lo, max(lo, up)) for lo, up in zip(lowers, uppers)
        ]
        if not self.scale.ascending:
            tightened = tightened[::-1]
        return PiecewiseLinearUtility(self.scale, tuple(zip(xs, tightened)))


class WeightElicitation:
    """Trade-off weight elicitation for one sibling group.

    The DM names a reference sibling and answers, for every other
    sibling, "how many times as important is it as the reference?"
    with a ratio band.  :meth:`local_intervals` normalises the answers
    into the local weight intervals of
    :class:`~repro.core.weights.WeightSystem`.

    >>> session = WeightElicitation(["cost", "quality"], reference="cost")
    >>> session.compare("quality", 1.0, 2.0)
    >>> session.local_intervals()["quality"].midpoint  # doctest: +ELLIPSIS
    0.6
    """

    def __init__(self, siblings: Sequence[str], reference: str) -> None:
        names = list(siblings)
        if len(names) < 2:
            raise ValueError("trade-offs need at least two siblings")
        if len(set(names)) != len(names):
            raise ValueError("duplicate sibling names")
        if reference not in names:
            raise ValueError(f"reference {reference!r} is not a sibling")
        self.siblings: Tuple[str, ...] = tuple(names)
        self.reference = reference
        self._ratios: Dict[str, Interval] = {reference: Interval.point(1.0)}

    def compare(self, sibling: str, low: float, up: Optional[float] = None) -> None:
        """Record "``sibling`` is between ``low`` and ``up`` times as
        important as the reference"."""
        if up is None:
            up = low
        if sibling not in self.siblings:
            raise KeyError(f"{sibling!r} is not a sibling of this group")
        if sibling == self.reference:
            raise ValueError("the reference compares to itself at exactly 1")
        if low < 0 or low > up:
            raise ValueError(f"ratio band [{low}, {up}] is invalid")
        self._ratios[sibling] = Interval(float(low), float(up))

    @property
    def pending(self) -> Tuple[str, ...]:
        """Siblings still awaiting an answer."""
        return tuple(s for s in self.siblings if s not in self._ratios)

    def local_intervals(self) -> Dict[str, Interval]:
        """Normalised local weight intervals (box straddling the simplex)."""
        if self.pending:
            raise ValueError(
                f"unanswered comparisons for: {', '.join(self.pending)}"
            )
        total_mid = sum(self._ratios[s].midpoint for s in self.siblings)
        if total_mid <= 0:
            raise ValueError("all ratios are zero")
        return {
            s: self._ratios[s].scale(1.0 / total_mid) for s in self.siblings
        }


def elicit_weight_system(
    hierarchy: Hierarchy,
    sessions: Mapping[str, WeightElicitation],
) -> WeightSystem:
    """Combine per-group trade-off sessions into a weight system.

    ``sessions`` maps each non-leaf node name to the elicitation of its
    children.  Every internal node must have a session.
    """
    local: Dict[str, Interval] = {}
    for parent in hierarchy.nodes():
        if parent.is_leaf:
            continue
        try:
            session = sessions[parent.name]
        except KeyError:
            raise ValueError(
                f"no trade-off session for the children of {parent.name!r}"
            ) from None
        expected = tuple(c.name for c in parent.children)
        if set(session.siblings) != set(expected):
            raise ValueError(
                f"session for {parent.name!r} covers {session.siblings}, "
                f"expected {expected}"
            )
        local.update(session.local_intervals())
    return WeightSystem(hierarchy, local)


__all__.append("elicit_weight_system")
