"""Seeded, deterministic fault injection for the registry runtime.

Production registries live with partial failure: workers die, NFS
reads return ``EIO`` halfway through an ``.npz``, a power cut tears a
sqlite page, a poll loop races a deploy.  This module makes those
failures *injectable* so the recovery paths in
:mod:`repro.core.runtime`, :mod:`repro.core.workspace` and
:mod:`repro.core.index` are exercised deterministically instead of
waiting for production to exercise them.

A :class:`FaultPlan` is a frozen, picklable value — it travels to
worker processes inside ``BatchOptions`` — holding one
:class:`FaultRule` per fault *site*:

``worker_kill``
    hard-kill the worker process (``os._exit``) before it evaluates a
    chunk, producing a real ``BrokenProcessPool`` in the parent.
``artifact_read``
    raise :class:`InjectedFault` (an ``OSError``) inside compiled
    ``.npz`` artifact loads, forcing the recompile-from-JSON fallback.
``chunk_delay``
    sleep before evaluating a chunk, long enough to trip the runner's
    no-progress timeout and exercise hung-worker abandonment.
``registry_poll``
    raise :class:`InjectedFault` inside the ``watch()`` poll loop,
    exercising its log-and-continue backoff.
``index_corrupt``
    not raised inline — plans carrying this rule ask the harness
    (``repro chaos``, tests) to physically corrupt the sqlite index
    with :func:`corrupt_sqlite` before the run, exercising the
    move-aside-and-rebuild recovery in ``RegistryIndex``.

Every decision is a pure function of ``(plan.seed, site, key,
attempt)`` hashed through SHA-256 — two runs with the same plan make
identical strikes, retries (``attempt + 1``) draw fresh independent
decisions, and the no-plan default costs one ``is None`` check at each
hook site.
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Tuple

from ..obs import metrics as _metrics

#: Every fault site a :class:`FaultRule` may target.
SITES = (
    "worker_kill",
    "artifact_read",
    "chunk_delay",
    "registry_poll",
    "index_corrupt",
)

#: Exit status used by :meth:`FaultPlan.maybe_kill`; distinctive enough
#: to recognise an injected death in a process table or CI log.
KILL_EXIT_CODE = 86

#: Default seed for named plans — the paper's publication year, like
#: every other deterministic seed in this repository.
DEFAULT_SEED = 2012


class InjectedFault(OSError):
    """An injected I/O failure.

    Subclasses :class:`OSError` so it flows through exactly the
    handlers a real ``EIO``/``ENOENT`` would take — the point is to
    prove those handlers recover, not to add a parallel error path.
    """


@dataclass(frozen=True)
class FaultRule:
    """One site's failure behaviour: fire with ``probability`` per key.

    ``delay`` only matters for the ``chunk_delay`` site — it is how
    long the struck worker sleeps, and should exceed the runner's
    no-progress timeout to register as a hang.
    """

    site: str
    probability: float
    delay: float = 0.0

    def __post_init__(self):
        """Validate the site name and probability range."""
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r} (known: {SITES})")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability!r}")
        if self.delay < 0.0:
            raise ValueError(f"delay must be >= 0, got {self.delay!r}")


def _unit(seed: int, site: str, key: str, attempt: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one decision point."""
    digest = hashlib.sha256(f"{seed}:{site}:{key}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def _count_strike(site: str) -> None:
    """Record one fired fault in the process-wide metrics registry."""
    _metrics.registry().counter(
        "repro_faults_injected_total",
        "Injected faults that actually fired, by site.",
        labelnames=("site",),
    ).inc(site=site)


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of fault rules; frozen and picklable.

    The plan itself never mutates state — callers ask it questions
    (:meth:`decide`) or invoke the standard strike helpers at the
    hook sites.  Identical ``(seed, site, key, attempt)`` tuples always
    answer identically, which is what makes ``repro chaos``'s
    byte-identical clean-vs-faulty comparison meaningful.
    """

    name: str
    seed: int
    rules: Tuple[FaultRule, ...]

    def rule(self, site: str) -> Optional[FaultRule]:
        """The rule targeting ``site``, or None when the site is clean."""
        for rule in self.rules:
            if rule.site == site:
                return rule
        return None

    def rate(self, site: str) -> float:
        """The strike probability at ``site`` (0.0 when unruled)."""
        rule = self.rule(site)
        return 0.0 if rule is None else rule.probability

    def decide(self, site: str, key: str, attempt: int = 0) -> bool:
        """Whether this plan strikes ``site`` for ``key`` on ``attempt``."""
        rule = self.rule(site)
        if rule is None or rule.probability <= 0.0:
            return False
        return _unit(self.seed, site, key, attempt) < rule.probability

    def strike(self, site: str, key: str, attempt: int = 0) -> None:
        """Raise :class:`InjectedFault` when the plan strikes here."""
        if self.decide(site, key, attempt):
            _count_strike(site)
            raise InjectedFault(
                f"injected {site} fault (plan {self.name!r}, key {key!r}, "
                f"attempt {attempt})"
            )

    def maybe_kill(self, key: str, attempt: int = 0) -> None:
        """Hard-kill the current process when ``worker_kill`` strikes.

        ``os._exit`` skips interpreter teardown, so the parent's
        ``ProcessPoolExecutor`` sees an abrupt worker death — a real
        ``BrokenProcessPool``, not a polite exception.  Only ever call
        this from a *worker* process.
        """
        if self.decide("worker_kill", key, attempt):
            _count_strike("worker_kill")
            os._exit(KILL_EXIT_CODE)

    def maybe_sleep(self, key: str, attempt: int = 0) -> None:
        """Sleep for the rule's ``delay`` when ``chunk_delay`` strikes."""
        rule = self.rule("chunk_delay")
        if rule is not None and self.decide("chunk_delay", key, attempt):
            _count_strike("chunk_delay")
            time.sleep(rule.delay)

    def describe(self) -> str:
        """One-line human summary of the plan's rules."""
        if not self.rules:
            return "no fault rules (clean)"
        parts = []
        for rule in self.rules:
            text = f"{rule.site} p={rule.probability:.2f}"
            if rule.delay:
                text += f" delay={rule.delay:g}s"
            parts.append(text)
        return ", ".join(parts)


#: The plan visible to in-process hook sites; ``None`` (the default)
#: keeps every hook a single attribute check.
_ACTIVE: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> None:
    """Make ``plan`` visible to this process's hook sites."""
    global _ACTIVE
    _ACTIVE = plan


def uninstall() -> None:
    """Restore the zero-overhead no-plan default."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[FaultPlan]:
    """The currently installed plan, if any."""
    return _ACTIVE


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of a ``with`` block."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


#: Plan names accepted by :func:`named_plan` and ``repro chaos --plan``.
PLAN_NAMES = (
    "none",
    "worker-kill",
    "flaky-artifacts",
    "slow-chunks",
    "torn-index",
    "mixed",
)


def named_plan(name: str, seed: int = DEFAULT_SEED) -> FaultPlan:
    """A curated plan by name (see :data:`PLAN_NAMES`).

    ``worker-kill`` is the benchmark's reference plan: each chunk
    dispatch has a 10 % chance of taking its worker down with it.
    """
    rules = {
        "none": (),
        "worker-kill": (FaultRule("worker_kill", 0.10),),
        "flaky-artifacts": (FaultRule("artifact_read", 0.25),),
        "slow-chunks": (FaultRule("chunk_delay", 0.20, delay=2.0),),
        "torn-index": (FaultRule("index_corrupt", 1.0),),
        "mixed": (
            FaultRule("worker_kill", 0.05),
            FaultRule("artifact_read", 0.10),
            FaultRule("index_corrupt", 1.0),
        ),
    }
    if name not in rules:
        raise ValueError(f"unknown fault plan {name!r} (known: {PLAN_NAMES})")
    return FaultPlan(name=name, seed=seed, rules=rules[name])


def corrupt_sqlite(db_path: Path, n_bytes: int = 1024) -> None:
    """Physically corrupt a sqlite database file in place.

    Zeroes the first ``n_bytes`` — destroying the sqlite header — and
    removes any ``-wal``/``-shm`` sidecars, simulating a torn write.
    Opening the file afterwards fails with ``sqlite3.DatabaseError``,
    which is exactly what ``RegistryIndex``'s move-aside-and-rebuild
    recovery expects to see.
    """
    db_path = Path(db_path)
    size = db_path.stat().st_size
    with open(db_path, "r+b") as handle:
        handle.write(b"\x00" * min(n_bytes, size))
    for suffix in ("-wal", "-shm"):
        sidecar = Path(str(db_path) + suffix)
        if sidecar.exists():
            sidecar.unlink()
