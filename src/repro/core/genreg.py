"""Seeded, deterministic registry generation — the scenario diversity engine.

The paper's case study is one fixed decision problem, so every registry
the runtime stack evaluates is a near-clone of a single shape.  This
module generates *families* of decision problems from a declarative
:class:`RegistrySpec`: hierarchy depth and width, discrete/continuous
scale mixes, missing-data regimes, degenerate and near-degenerate
weight systems, alternative counts and registry sizes up to 10k+
workspaces are all swept from one seeded specification.

Three contracts make the generator usable as a fixture *and* a fuzzing
substrate:

* **Determinism** — the same spec and seed produce byte-identical
  workspace JSON (the documents go through
  :func:`repro.core.workspace.save`'s sorted-key serialisation, all
  randomness flows from ``numpy``'s stable PCG64 streams keyed on
  ``(seed, case index)``, and every drawn float is rounded to a fixed
  number of decimals whose ``repr`` is identical across Python
  3.10–3.12).
* **Validity** — every generated problem satisfies the core model's
  validation rules (monotone utility envelopes, simplex-straddling
  weight boxes, knots spanning continuous scales), so downstream code
  exercises real behaviour instead of constructor errors.
* **Replayability** — specs round-trip through JSON
  (``repro-genspec/1``), so a failing fuzz case can be re-emitted as a
  small repro file and regenerated exactly (see :mod:`repro.fuzz`).

The module also hosts the two *compat* fixture builders the benchmark
suite historically copy-pasted: :func:`neon_shortlist_registry` (the
seed-2012 NeOn shortlist registry every runtime bench measures — byte
-identical to the old per-bench copies, so committed floors stay
valid) and :func:`scaling_problem` (the flat synthetic problem of the
scaling bench).

Example::

    spec = preset("fuzz", seed=7, n_workspaces=100)
    paths = write_registry(spec, Path("registry/"))
    problem = generate_problem(spec, index=42)   # same content as paths[42]
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from .hierarchy import Hierarchy, ObjectiveNode
from .interval import Interval
from .performance import Alternative, PerformanceTable, UncertainValue
from .problem import DecisionProblem
from .scales import MISSING, ContinuousScale, DiscreteScale, linguistic_0_3
from .utility import (
    DiscreteUtility,
    PiecewiseLinearUtility,
    banded_discrete_utility,
)
from .weights import WeightSystem
from . import workspace

__all__ = [
    "SPEC_FORMAT",
    "RegistrySpec",
    "PRESETS",
    "preset",
    "load_spec",
    "save_spec",
    "generate_problem",
    "generate_document",
    "iter_problems",
    "write_registry",
    "registry_digest",
    "neon_shortlist_registry",
    "scaling_problem",
]

#: Format tag of a serialised spec (the replayable repro-file payload).
SPEC_FORMAT = "repro-genspec/1"

_WEIGHT_STYLES = ("interval", "precise", "near-degenerate", "mixed")
_UTILITY_STYLES = ("interval", "precise", "mixed")
_SCALE_KINDS = ("discrete", "continuous")

#: Decimal places kept on drawn floats — short, and ``repr``-stable.
_DECIMALS = 6


def _r(x: float) -> float:
    """Round a drawn float to the generator's fixed precision."""
    return round(float(x), _DECIMALS)


def _range(value: object, field: str) -> Tuple[int, int]:
    """Coerce an ``(lo, hi)`` pair (or single int) to a validated range."""
    if isinstance(value, int):
        value = (value, value)
    try:
        lo, hi = int(value[0]), int(value[1])
    except (TypeError, ValueError, IndexError):
        raise ValueError(f"{field} must be an int or an (lo, hi) pair")
    if lo < 1 or lo > hi:
        raise ValueError(f"{field} range must satisfy 1 <= lo <= hi, got {value!r}")
    return (lo, hi)


@dataclass(frozen=True)
class RegistrySpec:
    """Declarative description of one generated registry family.

    Every field is plain data, so a spec serialises losslessly to JSON
    (:meth:`to_dict` / :meth:`from_dict`) and any single case of the
    sweep regenerates from ``(spec, index)`` alone.

    Attributes
    ----------
    name : str
        Workspace name prefix (``{name}-{index:05d}``).
    seed : int
        Root seed; with the case index it keys the PCG64 stream.
    n_workspaces : int
        Registry size (10k+ is routine; generation is O(problem size)).
    alternatives : (int, int)
        Inclusive range of alternatives per problem (1 is allowed —
        the degenerate single-candidate shortlist).
    depth, branching : (int, int)
        Hierarchy shape ranges: levels of objectives below the root,
        and children per internal node.
    max_attributes : int
        Leaf budget capping runaway deep*wide trees.
    scale_kinds : tuple of str
        Admissible scale kinds (``"discrete"``, ``"continuous"``).
    levels : (int, int)
        Level-count range for discrete scales (>= 2).
    missing_rate : float
        Per-cell probability of a MISSING performance.
    all_missing_row_rate : float
        Per-problem probability that one alternative's whole row is
        wiped to MISSING (the degenerate all-unknown candidate).
    uncertain_rate : float
        Per-cell probability (continuous attributes) of an
        (min, avg, max) :class:`~repro.core.performance.UncertainValue`.
    weight_style : str
        ``"interval"`` (boxes of relative width ``weight_spread``),
        ``"precise"`` (zero-width, degenerate intervals),
        ``"near-degenerate"`` (widths ~1e-9 with one dominant sibling)
        or ``"mixed"`` (chosen per sibling group).
    weight_spread : float
        Relative half-width scale of interval weights.
    utility_style : str
        ``"interval"``, ``"precise"`` or ``"mixed"`` component utility
        envelopes.
    """

    name: str = "gen"
    seed: int = 0
    n_workspaces: int = 1
    alternatives: Tuple[int, int] = (2, 8)
    depth: Tuple[int, int] = (1, 3)
    branching: Tuple[int, int] = (2, 4)
    max_attributes: int = 24
    scale_kinds: Tuple[str, ...] = ("discrete", "continuous")
    levels: Tuple[int, int] = (2, 6)
    missing_rate: float = 0.0
    all_missing_row_rate: float = 0.0
    uncertain_rate: float = 0.0
    weight_style: str = "interval"
    weight_spread: float = 0.5
    utility_style: str = "interval"

    def __post_init__(self) -> None:
        """Validate and normalise every field (ranges become tuples)."""
        object.__setattr__(self, "alternatives", _range(self.alternatives, "alternatives"))
        object.__setattr__(self, "depth", _range(self.depth, "depth"))
        object.__setattr__(self, "branching", _range(self.branching, "branching"))
        object.__setattr__(self, "levels", _range(self.levels, "levels"))
        if self.levels[0] < 2:
            raise ValueError("levels range must start at >= 2")
        if not self.name:
            raise ValueError("spec needs a non-empty name")
        if self.n_workspaces < 1:
            raise ValueError("n_workspaces must be >= 1")
        if self.max_attributes < 1:
            raise ValueError("max_attributes must be >= 1")
        kinds = tuple(self.scale_kinds)
        if not kinds or any(k not in _SCALE_KINDS for k in kinds):
            raise ValueError(
                f"scale_kinds must be a non-empty subset of {_SCALE_KINDS}, "
                f"got {self.scale_kinds!r}"
            )
        object.__setattr__(self, "scale_kinds", kinds)
        for field in ("missing_rate", "all_missing_row_rate", "uncertain_rate"):
            rate = getattr(self, field)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{field} must be in [0, 1], got {rate!r}")
        if self.weight_style not in _WEIGHT_STYLES:
            raise ValueError(
                f"weight_style must be one of {_WEIGHT_STYLES}, "
                f"got {self.weight_style!r}"
            )
        if not 0.0 < self.weight_spread <= 2.0:
            raise ValueError("weight_spread must be in (0, 2]")
        if self.utility_style not in _UTILITY_STYLES:
            raise ValueError(
                f"utility_style must be one of {_UTILITY_STYLES}, "
                f"got {self.utility_style!r}"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dict (``repro-genspec/1``) round-tripping exactly."""
        payload: Dict[str, object] = {"format": SPEC_FORMAT}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            payload[field.name] = list(value) if isinstance(value, tuple) else value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RegistrySpec":
        """Rebuild a spec from :meth:`to_dict` output (``ValueError`` on junk)."""
        if not isinstance(payload, Mapping):
            raise ValueError("spec payload must be a JSON object")
        fmt = payload.get("format", SPEC_FORMAT)
        if fmt != SPEC_FORMAT:
            raise ValueError(f"unsupported spec format {fmt!r} (want {SPEC_FORMAT!r})")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known - {"format"}
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        kwargs = {}
        for field in dataclasses.fields(cls):
            if field.name in payload:
                value = payload[field.name]
                if isinstance(value, list):
                    value = tuple(value)
                kwargs[field.name] = value
        return cls(**kwargs)

    def replace(self, **overrides: object) -> "RegistrySpec":
        """A copy of this spec with ``overrides`` applied (re-validated)."""
        return dataclasses.replace(self, **overrides)


def save_spec(spec: RegistrySpec, path: Path) -> Path:
    """Write ``spec`` as sorted-key JSON; returns ``path``."""
    path = Path(path)
    path.write_text(json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n")
    return path


def load_spec(path: Path) -> RegistrySpec:
    """Read a spec written by :func:`save_spec` (or a preset name file)."""
    return RegistrySpec.from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------

def _case_rng(spec: RegistrySpec, index: int) -> np.random.Generator:
    """The case's deterministic PCG64 stream, keyed on (seed, index)."""
    return np.random.default_rng([0x9E3779B9, int(spec.seed), int(index)])


def _int_in(rng: np.random.Generator, lo_hi: Tuple[int, int]) -> int:
    """One inclusive-range integer draw."""
    lo, hi = lo_hi
    return int(rng.integers(lo, hi + 1))


def _build_hierarchy(rng: np.random.Generator, spec: RegistrySpec) -> Hierarchy:
    """Grow a random objective tree within the spec's shape envelope.

    Depth-first growth with a global leaf budget: every internal node
    draws its child count from ``spec.branching``; a child becomes a
    leaf (and is assigned the next attribute) once the target depth or
    the ``max_attributes`` budget is reached.  At least one leaf always
    exists.
    """
    target_depth = _int_in(rng, spec.depth)
    state = {"node": 0, "attr": 0}

    def leaf() -> ObjectiveNode:
        k = state["attr"]
        state["attr"] += 1
        return ObjectiveNode(f"obj-{k:03d}-leaf", attribute=f"attr-{k:03d}")

    def grow(level: int) -> ObjectiveNode:
        if level >= target_depth or state["attr"] >= spec.max_attributes:
            return leaf()
        n_children = _int_in(rng, spec.branching)
        children = []
        for _ in range(n_children):
            if state["attr"] >= spec.max_attributes and children:
                break
            children.append(grow(level + 1))
        name = f"obj-{state['node']:03d}"
        state["node"] += 1
        return ObjectiveNode(name, children=children)

    root = grow(0)
    if root.is_leaf:  # depth drew 0 leaves? never (target_depth >= 1)
        root = ObjectiveNode("overall", children=[root])
    else:
        root = ObjectiveNode("overall", children=list(root.children))
    return Hierarchy(root)


def _interval_pair(
    rng: np.random.Generator, n: int, precise: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """``n`` monotone (lower, upper) utility envelopes in [0, 1].

    Two independently sorted uniform draws; their elementwise min/max
    are each sorted and ordered, which is exactly the
    :class:`~repro.core.utility.DiscreteUtility` monotonicity contract.
    """
    a = np.sort(rng.uniform(0.0, 1.0, n))
    if precise:
        a = np.array([_r(x) for x in a])
        return a, a.copy()
    b = np.sort(rng.uniform(0.0, 1.0, n))
    lower = np.array([_r(x) for x in np.minimum(a, b)])
    upper = np.array([_r(x) for x in np.maximum(a, b)])
    return lower, upper


def _precise_style(rng: np.random.Generator, style: str) -> bool:
    """Resolve a (possibly ``"mixed"``) utility style to one draw."""
    if style == "mixed":
        return bool(rng.integers(0, 2))
    return style == "precise"


def _make_attribute(
    rng: np.random.Generator, spec: RegistrySpec, attr: str
) -> Tuple[object, object]:
    """One attribute's (scale, utility function), drawn from the spec."""
    kind = spec.scale_kinds[int(rng.integers(0, len(spec.scale_kinds)))]
    precise = _precise_style(rng, spec.utility_style)
    if kind == "discrete":
        n_levels = _int_in(rng, spec.levels)
        scale = DiscreteScale(attr, tuple(f"lv{i}" for i in range(n_levels)))
        lower, upper = _interval_pair(rng, n_levels, precise)
        fn = DiscreteUtility(
            scale,
            tuple(Interval(float(lo), float(up)) for lo, up in zip(lower, upper)),
        )
        return scale, fn
    minimum = _r(rng.uniform(0.0, 50.0))
    maximum = _r(minimum + rng.uniform(1.0, 100.0))
    ascending = bool(rng.integers(0, 2))
    scale = ContinuousScale(attr, minimum, maximum, ascending=ascending)
    n_interior = int(rng.integers(0, 4))
    interior = sorted(
        {
            x
            for x in (_r(v) for v in rng.uniform(minimum, maximum, n_interior))
            if minimum < x < maximum
        }
    )
    xs = [minimum, *interior, maximum]
    lower, upper = _interval_pair(rng, len(xs), precise)
    fn = PiecewiseLinearUtility(
        scale,
        tuple(
            (x, Interval(float(lo), float(up)))
            for x, lo, up in zip(xs, lower, upper)
        ),
    )
    return scale, fn


def _draw_cell(
    rng: np.random.Generator, spec: RegistrySpec, scale: object
) -> object:
    """One performance cell: MISSING, a level code, a float or uncertain."""
    if rng.random() < spec.missing_rate:
        return MISSING
    if isinstance(scale, DiscreteScale):
        return int(rng.integers(0, len(scale)))
    lo, hi = scale.minimum, scale.maximum
    if rng.random() < spec.uncertain_rate:
        draws = sorted(
            min(max(_r(lo + rng.random() * (hi - lo)), lo), hi) for _ in range(3)
        )
        return UncertainValue(*draws)
    return min(max(_r(lo + rng.random() * (hi - lo)), lo), hi)


def _draw_weights(
    rng: np.random.Generator, spec: RegistrySpec, hierarchy: Hierarchy
) -> WeightSystem:
    """A valid weight system in the spec's style.

    Raw per-sibling intervals go through
    :meth:`~repro.core.weights.WeightSystem.from_raw_intervals`, whose
    midpoint normalisation guarantees every sibling box straddles the
    simplex — so degenerate (zero-width) and near-degenerate
    (~1e-9-width, one dominant sibling) styles are valid by
    construction.
    """
    raw: Dict[str, Interval] = {}
    for parent in hierarchy.nodes():
        if parent.is_leaf:
            continue
        style = spec.weight_style
        if style == "mixed":
            style = ("interval", "precise", "near-degenerate")[
                int(rng.integers(0, 3))
            ]
        n = len(parent.children)
        if style == "near-degenerate":
            dominant = int(rng.integers(0, n))
            mids = np.full(n, 1e-6)
            mids[dominant] = 1.0
            widths = mids * 1e-9 * rng.random(n)
        else:
            mids = np.array([_r(x) for x in rng.uniform(0.1, 1.0, n)])
            if style == "precise":
                widths = np.zeros(n)
            else:
                widths = mids * spec.weight_spread * rng.random(n)
        for child, mid, width in zip(parent.children, mids, widths):
            raw[child.name] = Interval(
                max(0.0, float(mid) - float(width) / 2.0),
                float(mid) + float(width) / 2.0,
            )
    return WeightSystem.from_raw_intervals(hierarchy, raw)


def generate_problem(spec: RegistrySpec, index: int = 0) -> DecisionProblem:
    """Case ``index`` of the spec's sweep as a validated problem.

    Deterministic in ``(spec, index)``: the same inputs always return a
    problem whose workspace JSON is byte-identical.  Cases are
    independent — generating case 7 alone matches case 7 of a full
    :func:`write_registry` run.
    """
    if not 0 <= index:
        raise ValueError("index must be >= 0")
    rng = _case_rng(spec, index)
    n_alt = _int_in(rng, spec.alternatives)
    hierarchy = _build_hierarchy(rng, spec)
    scales: Dict[str, object] = {}
    utilities: Dict[str, object] = {}
    for attr in hierarchy.attribute_names:
        scale, fn = _make_attribute(rng, spec, attr)
        scales[attr] = scale
        utilities[attr] = fn
    alternatives = [
        Alternative(
            f"alt-{i:03d}",
            {attr: _draw_cell(rng, spec, scales[attr]) for attr in scales},
        )
        for i in range(n_alt)
    ]
    if rng.random() < spec.all_missing_row_rate:
        wiped = int(rng.integers(0, n_alt))
        alternatives[wiped] = Alternative(
            alternatives[wiped].name, {attr: MISSING for attr in scales}
        )
    table = PerformanceTable(scales, alternatives)
    weights = _draw_weights(rng, spec, hierarchy)
    return DecisionProblem(
        hierarchy, table, utilities, weights, name=f"{spec.name}-{index:05d}"
    )


def generate_document(spec: RegistrySpec, index: int = 0) -> Dict[str, object]:
    """Case ``index`` as a ``repro-workspace/1`` document dict."""
    return workspace.to_dict(generate_problem(spec, index))


def iter_problems(
    spec: RegistrySpec, limit: Optional[int] = None
) -> Iterator[DecisionProblem]:
    """Lazily yield the spec's cases (all ``n_workspaces`` by default)."""
    n = spec.n_workspaces if limit is None else min(limit, spec.n_workspaces)
    for index in range(n):
        yield generate_problem(spec, index)


def write_registry(
    spec: RegistrySpec, directory: Path, limit: Optional[int] = None
) -> List[Path]:
    """Write the spec's registry of workspace JSONs into ``directory``.

    One ``{name}-{index:05d}.json`` per case through
    :func:`repro.core.workspace.save` (sorted keys, fixed indentation),
    so the bytes on disk are the determinism contract's unit of
    comparison.  Returns the paths in case order.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for index, problem in enumerate(iter_problems(spec, limit)):
        path = directory / f"{spec.name}-{index:05d}.json"
        workspace.save(problem, path)
        paths.append(path)
    return paths


def registry_digest(spec: RegistrySpec, limit: Optional[int] = None) -> str:
    """sha256 over every case's canonical workspace JSON, in case order.

    The in-memory equivalent of hashing the files
    :func:`write_registry` produces — the determinism fingerprint the
    generator bench asserts on without touching the filesystem.
    """
    digest = hashlib.sha256()
    for problem in iter_problems(spec, limit):
        payload = json.dumps(
            workspace.to_dict(problem), indent=2, sort_keys=True
        )
        digest.update(payload.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------

#: Named starting points for common sweeps; refine with :func:`preset`.
PRESETS: Dict[str, RegistrySpec] = {
    "default": RegistrySpec(name="default", n_workspaces=50),
    "small": RegistrySpec(
        name="small",
        n_workspaces=50,
        alternatives=(2, 4),
        depth=(1, 1),
        branching=(2, 4),
        levels=(2, 4),
    ),
    "deep": RegistrySpec(
        name="deep",
        n_workspaces=50,
        depth=(3, 5),
        branching=(2, 3),
        max_attributes=32,
    ),
    "wide": RegistrySpec(
        name="wide", n_workspaces=50, depth=(1, 2), branching=(6, 10)
    ),
    "continuous": RegistrySpec(
        name="continuous",
        n_workspaces=50,
        scale_kinds=("continuous",),
        uncertain_rate=0.3,
    ),
    "missing": RegistrySpec(
        name="missing",
        n_workspaces=50,
        missing_rate=0.3,
        all_missing_row_rate=0.15,
    ),
    "degenerate": RegistrySpec(
        name="degenerate",
        n_workspaces=50,
        alternatives=(1, 3),
        depth=(1, 2),
        weight_style="precise",
        missing_rate=0.25,
        all_missing_row_rate=0.3,
    ),
    "near-degenerate": RegistrySpec(
        name="near-degenerate",
        n_workspaces=50,
        weight_style="near-degenerate",
    ),
    "fuzz": RegistrySpec(
        name="fuzz",
        n_workspaces=300,
        alternatives=(1, 9),
        depth=(1, 4),
        branching=(1, 4),
        max_attributes=16,
        levels=(2, 5),
        missing_rate=0.15,
        all_missing_row_rate=0.05,
        uncertain_rate=0.15,
        weight_style="mixed",
        utility_style="mixed",
    ),
    "stress-10k": RegistrySpec(
        name="stress",
        n_workspaces=10_000,
        alternatives=(2, 6),
        depth=(1, 2),
        branching=(2, 4),
        max_attributes=12,
        missing_rate=0.1,
    ),
}


def preset(name: str, **overrides: object) -> RegistrySpec:
    """A named preset with ``overrides`` applied (``ValueError`` if unknown)."""
    try:
        base = PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
    return base.replace(**overrides) if overrides else base


# ----------------------------------------------------------------------
# Compat fixture builders (moved here from the benchmark suite)
# ----------------------------------------------------------------------

def neon_shortlist_registry(
    directory: Path,
    n_workspaces: int = 200,
    seed: int = 2012,
    pool_size: int = 12,
    shortlist: int = 8,
) -> List[Path]:
    """The benchmark suite's standard NeOn shortlist registry.

    A pool of generated candidate ontologies is scored once through the
    vectorised NeOn assess activity; every workspace is a shortlist
    problem over a seeded subset of the pool — all sharing the
    14-criteria shape.  With the default arguments the output is
    byte-identical to the registry the runtime benchmarks historically
    built inline (compat seed 2012), so their committed floors remain
    comparable.
    """
    # Lazy imports: the NeOn/ontology layers build on repro.core, so a
    # module-level import here would invert the layering.
    from repro.neon.assessment import assess_batch
    from repro.neon.criteria import (
        build_hierarchy,
        default_scales,
        default_utilities,
    )
    from repro.ontology.corpus import ReuseMetadata
    from repro.ontology.cq import CompetencyQuestion
    from repro.ontology.generator import OntologySpec, generate
    import random

    cqs = tuple(
        CompetencyQuestion(f"cq{i}", f"q{i}", key_terms=(term,))
        for i, term in enumerate(
            ("codec", "playlist", "subtitle", "waveform", "storyboard", "tempo")
        )
    )
    rng = random.Random(seed)
    pool = []
    for i in range(pool_size):
        spec = OntologySpec(
            name=f"Candidate {i:02d}",
            seed=1000 + i,
            n_classes=24 + (i % 5) * 4,
            doc_quality=i % 4,
            ext_knowledge=(i + 1) % 4,
            code_clarity=max(2, 3 - i % 2),
            naming=1 + i % 3,
            knowledge_extraction=i % 4,
            language_adequacy=1 + i % 3,
            covered_cqs=cqs[: 1 + i % len(cqs)],
            metadata=ReuseMetadata(
                financial_cost=None if i % 5 == 0 else float(50 * (i % 4)),
                access_time_days=float(1 + i % 9),
                n_test_suites=i % 4,
                evaluation_level=None if i % 3 == 0 else i % 4,
                team_publications=i % 7,
                purpose=(None, "academic", "standard-transform", "project")[
                    i % 4
                ],
                reused_by=tuple(f"adopter-{k}" for k in range(i % 3)),
                uses_design_patterns=i % 2 == 0,
            ),
        )
        pool.append(generate(spec))

    assessments = assess_batch(pool, cqs)
    hierarchy = build_hierarchy()
    scales = default_scales()
    utilities = default_utilities()
    weights = WeightSystem.uniform(hierarchy)

    directory = Path(directory)
    paths = []
    for w in range(n_workspaces):
        chosen = rng.sample(range(pool_size), shortlist)
        table = PerformanceTable(
            dict(scales),
            [
                Alternative(
                    assessments[c].name, dict(assessments[c].performances)
                )
                for c in chosen
            ],
        )
        problem = DecisionProblem(
            hierarchy, table, utilities, weights, name=f"shortlist-{w:04d}"
        )
        path = directory / f"shortlist-{w:04d}.json"
        workspace.save(problem, path)
        paths.append(path)
    return paths


def scaling_problem(n_alternatives: int, n_attributes: int) -> DecisionProblem:
    """The scaling bench's flat synthetic problem (compat construction).

    Seeded as ``n_alternatives * 100 + n_attributes`` with linguistic
    0-3 scales, banded utilities and ±30 % weight boxes — exactly the
    fixture ``benchmarks/bench_scaling.py`` historically built inline.
    """
    rng = np.random.default_rng(n_alternatives * 100 + n_attributes)
    scales = {f"a{j}": linguistic_0_3(f"a{j}") for j in range(n_attributes)}
    table = PerformanceTable(
        scales,
        [
            Alternative(
                f"alt{i:03d}",
                {f"a{j}": int(rng.integers(0, 4)) for j in range(n_attributes)},
            )
            for i in range(n_alternatives)
        ],
    )
    hierarchy = Hierarchy(
        ObjectiveNode(
            "root",
            children=[
                ObjectiveNode(f"c{j}", attribute=f"a{j}")
                for j in range(n_attributes)
            ],
        )
    )
    share = 1.0 / n_attributes
    weights = WeightSystem(
        hierarchy,
        {
            f"c{j}": Interval(share * 0.7, min(1.0, share * 1.3))
            for j in range(n_attributes)
        },
    )
    utilities = {
        f"a{j}": banded_discrete_utility(scales[f"a{j}"], best_is_precise=False)
        for j in range(n_attributes)
    }
    return DecisionProblem(hierarchy, table, utilities, weights)
