"""Group decision support over imprecise inputs.

The paper argues that admitting imprecision "makes the system suitable
for group decision support", citing its ref. [17] (Jiménez, Mateos &
Ríos-Insua 2005): "individual conflicting views in a group of DMs can
be captured through imprecise answers".  The mechanics: every member
answers the elicitation questions with intervals; the group inputs are
interval *combinations* of the members' — the intersection when the
views are compatible (consensus), the hull when they must all be
covered (tolerant aggregation).

This module is the object-level API.  The numeric work — per-member
rankings, the aggregated group rankings, Borda points and the
disagreement profile — runs through the vectorized members axis of
:mod:`repro.core.engine` (:func:`~repro.core.engine.compile_roster`
plus the ``BatchEvaluator`` group methods), one array program instead
of a Python loop over decision makers, with bit-identical outputs.

It also defines the portable *roster spec*: a hashable, JSON-stable
description of a member roster (``repro-members/1`` documents) that the
batch runtime, the registry index and the query service share, plus
:func:`members_digest`, the content key that folds the roster into
:func:`~repro.core.index.eval_config_hash`.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from .engine import (
    BatchEvaluator,
    GroupResult,
    compile_problem,
    compile_roster,
)
from .hierarchy import Hierarchy
from .interval import Interval
from .problem import DecisionProblem
from .weights import WeightSystem

__all__ = [
    "MEMBERS_FORMAT",
    "GroupMember",
    "GroupResult",
    "aggregate_weights",
    "disagreement",
    "borda_ranking",
    "GroupDecision",
    "MemberSpec",
    "parse_members_document",
    "load_members",
    "members_from_spec",
    "compiled_roster_for",
    "members_digest",
]

#: The on-disk members-document format tag (``repro group --members``).
MEMBERS_FORMAT = "repro-members/1"

#: One roster entry of a members spec: ``(name, ((objective, lower,
#: upper), ...))`` with the objective triples sorted by name — fully
#: hashable, so a spec can ride inside a frozen
#: :class:`~repro.core.runtime.BatchOptions`.
MemberSpec = Tuple[str, Tuple[Tuple[str, float, float], ...]]


@dataclass(frozen=True)
class GroupMember:
    """One decision maker's name and elicited weight system."""

    name: str
    weights: WeightSystem


def aggregate_weights(
    members: Sequence[GroupMember], method: str = "intersection"
) -> WeightSystem:
    """Combine member weight systems into one group system.

    ``method="intersection"`` keeps only weights every member accepts;
    when some node's intervals are disjoint the members genuinely
    disagree and a ``ValueError`` names the node.  ``method="hull"``
    covers every member's interval (always feasible).  Thin delegate:
    the per-node combination runs over the roster tensors of
    :class:`~repro.core.engine.CompiledRoster`.
    """
    if method not in ("intersection", "hull"):
        raise ValueError(f"method must be 'intersection' or 'hull', got {method!r}")
    return compile_roster(members).aggregated(method)


def disagreement(members: Sequence[GroupMember]) -> Dict[str, float]:
    """Per-objective disagreement in ``[0, 1]``.

    For each non-root node, disagreement is ``1 - |intersection| /
    |hull|`` over the members' local intervals (widths measured on the
    interval line; a disjoint pair scores 1).  0 means every member
    gave the same interval.  Thin delegate over the roster tensors.
    """
    return compile_roster(members).disagreement()


def borda_ranking(rankings: Sequence[Sequence[str]]) -> Tuple[str, ...]:
    """Aggregate member rankings by Borda count (ties by name).

    Every ranking must order the same alternatives.  An alternative at
    rank ``r`` among ``n`` scores ``n - r`` points; the aggregate sorts
    by total points descending.
    """
    if not rankings:
        raise ValueError("need at least one ranking")
    universe = set(rankings[0])
    for ranking in rankings[1:]:
        if set(ranking) != universe:
            raise ValueError("rankings order different alternative sets")
    n = len(universe)
    points: Dict[str, int] = {name: 0 for name in universe}
    for ranking in rankings:
        for position, name in enumerate(ranking, start=1):
            points[name] += n - position
    return tuple(sorted(points, key=lambda name: (-points[name], name)))


class GroupDecision:
    """A shared decision problem evaluated by several decision makers.

    Every member shares the problem *structure* (hierarchy, performance
    table, component utilities) but holds their own weight system —
    which is how the GMAA group workflow operates (ref. [17]).  All
    numeric questions delegate to one compiled problem plus one
    compiled roster, so a 20-member group costs one batched array
    program, not 20 scalar evaluations.
    """

    def __init__(
        self, problem: DecisionProblem, members: Sequence[GroupMember]
    ) -> None:
        """Validate the roster against ``problem`` and compile both."""
        if not members:
            raise ValueError("a group needs at least one member")
        names = [m.name for m in members]
        if len(set(names)) != len(names):
            raise ValueError("duplicate member names")
        hierarchy_names = {n.name for n in problem.hierarchy.nodes()}
        for member in members:
            member_names = {n.name for n in member.weights.hierarchy.nodes()}
            if member_names != hierarchy_names:
                raise ValueError(
                    f"member {member.name!r} weights do not match the "
                    "problem hierarchy"
                )
        self.problem = problem
        self.members: Tuple[GroupMember, ...] = tuple(members)
        self._roster = compile_roster(self.members, problem.hierarchy)
        self._evaluator = BatchEvaluator(compile_problem(problem))

    # ------------------------------------------------------------------
    def member_ranking(self, name: str) -> Tuple[str, ...]:
        """One member's ranking (KeyError for an unknown member)."""
        try:
            position = self._roster.member_names.index(name)
        except ValueError:
            raise KeyError(f"no group member named {name!r}") from None
        return self._evaluator.member_rankings(self._roster)[position]

    def member_rankings(self) -> Dict[str, Tuple[str, ...]]:
        """Every member's ranking, roster order, from one array program."""
        rankings = self._evaluator.member_rankings(self._roster)
        return dict(zip(self._roster.member_names, rankings))

    def group_problem(self, method: str = "intersection") -> DecisionProblem:
        """The problem under the aggregated (group) weight system."""
        return self.problem.with_weights(self._roster.aggregated(method))

    def group_ranking(self, method: str = "intersection") -> Tuple[str, ...]:
        """The aggregated group ranking (consensus or tolerant)."""
        return self._evaluator.group_evaluation(
            self._roster, method
        ).names_by_rank

    def borda(self) -> Tuple[str, ...]:
        """Borda aggregation of the member rankings."""
        return self._evaluator.borda_order(self._roster)

    def disagreement(self) -> Dict[str, float]:
        """The per-objective disagreement profile."""
        return self._roster.disagreement()

    def result(self) -> GroupResult:
        """Everything at once as a :class:`~repro.core.engine.GroupResult`.

        Unlike :meth:`group_ranking`, irreconcilable member intervals
        do not raise here: ``consensus`` is ``None``, the offending
        objectives are listed in ``disjoint``, and :attr:`GroupResult.best`
        falls back to the tolerant (hull) ranking.
        """
        return self._evaluator.group_result(self._roster)


# ----------------------------------------------------------------------
# Roster specs — the portable members-document layer
# ----------------------------------------------------------------------

def parse_members_document(doc: object) -> Tuple[MemberSpec, ...]:
    """Validate a ``repro-members/1`` document into a roster spec.

    The document shape::

        {"format": "repro-members/1",
         "members": [{"name": "alice",
                      "local": {"cost": [0.3, 0.5], ...}}, ...]}

    ``local`` maps every non-root objective of the target hierarchy to
    its elicited ``[lower, upper]`` weight interval.  Member order is
    preserved (it is the members axis order); objective entries are
    sorted by name so equal rosters always produce equal specs — and
    therefore equal :func:`members_digest` cache keys.
    """
    if not isinstance(doc, Mapping):
        raise ValueError("members document must be a JSON object")
    fmt = doc.get("format")
    if fmt != MEMBERS_FORMAT:
        raise ValueError(
            f"unsupported members document format {fmt!r}; "
            f"expected {MEMBERS_FORMAT!r}"
        )
    raw_members = doc.get("members")
    if not isinstance(raw_members, Sequence) or isinstance(raw_members, str):
        raise ValueError("members document needs a 'members' list")
    if not raw_members:
        raise ValueError("a group needs at least one member")
    spec: List[MemberSpec] = []
    seen = set()
    for entry in raw_members:
        if not isinstance(entry, Mapping):
            raise ValueError("each member must be a JSON object")
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError("each member needs a non-empty 'name'")
        if name in seen:
            raise ValueError(f"duplicate member name {name!r}")
        seen.add(name)
        unknown = sorted(set(entry) - {"name", "local"})
        if unknown:
            raise ValueError(
                f"member {name!r}: unknown field(s) {', '.join(unknown)}"
            )
        local = entry.get("local")
        if not isinstance(local, Mapping) or not local:
            raise ValueError(
                f"member {name!r} needs a non-empty 'local' interval map"
            )
        intervals: List[Tuple[str, float, float]] = []
        for objective in sorted(local):
            bounds = local[objective]
            if (
                not isinstance(bounds, Sequence)
                or isinstance(bounds, str)
                or len(bounds) != 2
                or not all(isinstance(b, (int, float)) for b in bounds)
            ):
                raise ValueError(
                    f"member {name!r}, objective {objective!r}: interval "
                    "must be a [lower, upper] number pair"
                )
            lower, upper = float(bounds[0]), float(bounds[1])
            if lower > upper:
                raise ValueError(
                    f"member {name!r}, objective {objective!r}: lower "
                    f"bound {lower} exceeds upper bound {upper}"
                )
            intervals.append((str(objective), lower, upper))
        spec.append((name, tuple(intervals)))
    return tuple(spec)


def load_members(path: Union[str, Path]) -> Tuple[MemberSpec, ...]:
    """Read and validate a members JSON file into a roster spec."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"members file {path}: not valid JSON: {exc}") from exc
    return parse_members_document(doc)


def members_from_spec(
    spec: Sequence[MemberSpec], hierarchy: Hierarchy
) -> List[GroupMember]:
    """Resolve a roster spec against one problem's hierarchy.

    The document's intervals are *raw* trade-off answers on an
    arbitrary ratio scale; each sibling group is normalised by the sum
    of its midpoints (:meth:`WeightSystem.from_raw_intervals`), exactly
    like interactive elicitation — so ``{"cost": [2.4, 3.6]}`` means
    "cost is about three times as important as a baseline sibling",
    and intervals already normalised per sibling group pass through
    unchanged.  Each member's map must cover exactly the hierarchy's
    non-root objectives (``WeightSystem`` raises a ``ValueError``
    naming anything missing or unknown) — which is how a registry run
    reports-and-skips workspaces whose hierarchy a roster does not fit.
    """
    expected = {
        node.name
        for node in hierarchy.nodes()
        if node.name != hierarchy.root.name
    }
    members = []
    for name, intervals in spec:
        given = {objective for objective, _, _ in intervals}
        if given != expected:
            missing = sorted(expected - given)
            unknown = sorted(given - expected)
            raise ValueError(
                f"member {name!r} does not fit the hierarchy: "
                f"missing objectives {missing}, unknown objectives {unknown}"
            )
        local = {
            objective: Interval(lower, upper)
            for objective, lower, upper in intervals
        }
        members.append(
            GroupMember(
                name, WeightSystem.from_raw_intervals(hierarchy, local)
            )
        )
    return members


def _hierarchy_signature(node) -> Tuple:
    """A structural key for an objective (sub)tree.

    Two hierarchies with equal signatures produce bit-identical roster
    tensors for the same spec — the weight derivation only reads node
    names, attributes and the tree shape.
    """
    return (
        node.name,
        node.attribute,
        tuple(_hierarchy_signature(child) for child in node.children),
    )


#: Resolved-roster LRU: ``(spec, hierarchy signature) -> CompiledRoster``.
#: Registry runs resolve one spec against thousands of structurally
#: identical hierarchies; caching turns that into one resolution per
#: distinct hierarchy shape.
_ROSTER_CACHE: "OrderedDict[Tuple, object]" = OrderedDict()
_ROSTER_CACHE_SIZE = 64


def compiled_roster_for(
    spec: Sequence[MemberSpec], hierarchy: Hierarchy
):
    """The compiled roster for ``spec`` over ``hierarchy``, LRU-cached.

    Cache key: the (hashable) spec × the hierarchy's structural
    signature, so every workspace sharing one objective tree reuses a
    single :class:`~repro.core.engine.CompiledRoster` — including its
    aggregated consensus/tolerant weight systems — with bit-identical
    outputs, since roster tensors depend only on the tree structure.
    """
    key = (tuple(spec), _hierarchy_signature(hierarchy.root))
    cached = _ROSTER_CACHE.get(key)
    if cached is not None:
        _ROSTER_CACHE.move_to_end(key)
        return cached
    roster = compile_roster(members_from_spec(spec, hierarchy), hierarchy)
    _ROSTER_CACHE[key] = roster
    while len(_ROSTER_CACHE) > _ROSTER_CACHE_SIZE:
        _ROSTER_CACHE.popitem(last=False)
    return roster


def members_digest(spec: Sequence[MemberSpec]) -> str:
    """The roster's content key: hex sha256 of the canonical spec JSON.

    Folded into :func:`~repro.core.index.eval_config_hash`, so cached
    group results are keyed by workspace content *and* the exact member
    roster — editing any member's interval invalidates precisely the
    group rows, nothing else.
    """
    canonical = json.dumps(
        [[name, [list(iv) for iv in intervals]] for name, intervals in spec],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
