"""Group decision support over imprecise inputs.

The paper argues that admitting imprecision "makes the system suitable
for group decision support", citing its ref. [17] (Jiménez, Mateos &
Ríos-Insua 2005): "individual conflicting views in a group of DMs can
be captured through imprecise answers".  The mechanics: every member
answers the elicitation questions with intervals; the group inputs are
interval *combinations* of the members' — the intersection when the
views are compatible (consensus), the hull when they must all be
covered (tolerant aggregation).

This module aggregates member :class:`~repro.core.weights.WeightSystem`
objects node-by-node, measures disagreement, and compares per-member
rankings (Borda aggregation) against the group ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .hierarchy import Hierarchy
from .interval import Interval
from .model import evaluate
from .problem import DecisionProblem
from .weights import WeightSystem

__all__ = [
    "GroupMember",
    "aggregate_weights",
    "disagreement",
    "borda_ranking",
    "GroupDecision",
]


@dataclass(frozen=True)
class GroupMember:
    """One decision maker's name and elicited weight system."""

    name: str
    weights: WeightSystem


def _common_hierarchy(members: Sequence[GroupMember]) -> Hierarchy:
    if not members:
        raise ValueError("a group needs at least one member")
    first = members[0].weights.hierarchy
    first_names = {n.name for n in first.nodes()}
    for member in members[1:]:
        names = {n.name for n in member.weights.hierarchy.nodes()}
        if names != first_names:
            raise ValueError(
                f"member {member.name!r} uses a different hierarchy "
                "(objective names do not match)"
            )
    return first


def aggregate_weights(
    members: Sequence[GroupMember], method: str = "intersection"
) -> WeightSystem:
    """Combine member weight systems into one group system.

    ``method="intersection"`` keeps only weights every member accepts;
    when some node's intervals are disjoint the members genuinely
    disagree and a ``ValueError`` names the node.  ``method="hull"``
    covers every member's interval (always feasible).
    """
    if method not in ("intersection", "hull"):
        raise ValueError(f"method must be 'intersection' or 'hull', got {method!r}")
    hierarchy = _common_hierarchy(members)
    root = hierarchy.root.name
    local: Dict[str, Interval] = {}
    for node in hierarchy.nodes():
        if node.name == root:
            continue
        intervals = [m.weights.local_interval(node.name) for m in members]
        if method == "hull":
            combined = intervals[0]
            for iv in intervals[1:]:
                combined = combined.hull(iv)
        else:
            maybe: Optional[Interval] = intervals[0]
            for iv in intervals[1:]:
                if maybe is None:
                    break
                maybe = maybe.intersection(iv)
            if maybe is None:
                raise ValueError(
                    f"members disagree irreconcilably on objective "
                    f"{node.name!r}: weight intervals are disjoint"
                )
            combined = maybe
        local[node.name] = combined
    return WeightSystem.from_raw_intervals(hierarchy, local)


def disagreement(members: Sequence[GroupMember]) -> Dict[str, float]:
    """Per-objective disagreement in ``[0, 1]``.

    For each non-root node, disagreement is ``1 - |intersection| /
    |hull|`` over the members' local intervals (widths measured on the
    interval line; a disjoint pair scores 1).  0 means every member
    gave the same interval.
    """
    hierarchy = _common_hierarchy(members)
    root = hierarchy.root.name
    result: Dict[str, float] = {}
    for node in hierarchy.nodes():
        if node.name == root:
            continue
        intervals = [m.weights.local_interval(node.name) for m in members]
        hull_iv = intervals[0]
        inter: Optional[Interval] = intervals[0]
        for iv in intervals[1:]:
            hull_iv = hull_iv.hull(iv)
            inter = inter.intersection(iv) if inter is not None else None
        if hull_iv.width <= 1e-12:
            result[node.name] = 0.0
        elif inter is None:
            result[node.name] = 1.0
        else:
            result[node.name] = 1.0 - inter.width / hull_iv.width
    return result


def borda_ranking(rankings: Sequence[Sequence[str]]) -> Tuple[str, ...]:
    """Aggregate member rankings by Borda count (ties by name).

    Every ranking must order the same alternatives.  An alternative at
    rank ``r`` among ``n`` scores ``n - r`` points; the aggregate sorts
    by total points descending.
    """
    if not rankings:
        raise ValueError("need at least one ranking")
    universe = set(rankings[0])
    for ranking in rankings[1:]:
        if set(ranking) != universe:
            raise ValueError("rankings order different alternative sets")
    n = len(universe)
    points: Dict[str, int] = {name: 0 for name in universe}
    for ranking in rankings:
        for position, name in enumerate(ranking, start=1):
            points[name] += n - position
    return tuple(sorted(points, key=lambda name: (-points[name], name)))


class GroupDecision:
    """A shared decision problem evaluated by several decision makers.

    Every member shares the problem *structure* (hierarchy, performance
    table, component utilities) but holds their own weight system —
    which is how the GMAA group workflow operates (ref. [17]).
    """

    def __init__(
        self, problem: DecisionProblem, members: Sequence[GroupMember]
    ) -> None:
        if not members:
            raise ValueError("a group needs at least one member")
        names = [m.name for m in members]
        if len(set(names)) != len(names):
            raise ValueError("duplicate member names")
        hierarchy_names = {n.name for n in problem.hierarchy.nodes()}
        for member in members:
            member_names = {n.name for n in member.weights.hierarchy.nodes()}
            if member_names != hierarchy_names:
                raise ValueError(
                    f"member {member.name!r} weights do not match the "
                    "problem hierarchy"
                )
        self.problem = problem
        self.members: Tuple[GroupMember, ...] = tuple(members)

    # ------------------------------------------------------------------
    def member_ranking(self, name: str) -> Tuple[str, ...]:
        for member in self.members:
            if member.name == name:
                evaluation = evaluate(self.problem.with_weights(member.weights))
                return evaluation.names_by_rank
        raise KeyError(f"no group member named {name!r}")

    def member_rankings(self) -> Dict[str, Tuple[str, ...]]:
        return {m.name: self.member_ranking(m.name) for m in self.members}

    def group_problem(self, method: str = "intersection") -> DecisionProblem:
        group_weights = aggregate_weights(self.members, method)
        return self.problem.with_weights(group_weights)

    def group_ranking(self, method: str = "intersection") -> Tuple[str, ...]:
        return evaluate(self.group_problem(method)).names_by_rank

    def borda(self) -> Tuple[str, ...]:
        return borda_ranking(list(self.member_rankings().values()))

    def disagreement(self) -> Dict[str, float]:
        return disagreement(self.members)
