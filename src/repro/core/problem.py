"""The :class:`DecisionProblem` facade — a GMAA workspace in memory.

A decision problem bundles the four artefacts the DA cycle produces:

1. the objective hierarchy (§II, Fig. 1),
2. the performance table of the alternatives (§II, Fig. 2),
3. the component utility functions (§III, Figs. 3-4), and
4. the weight system (§III, Fig. 5).

Construction validates that the pieces agree: the hierarchy's leaf
attributes, the table's attributes and the utility functions' keys must
coincide, and each utility function must be defined over the same scale
the table validates against.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from .hierarchy import Hierarchy
from .performance import Alternative, PerformanceTable
from .weights import WeightSystem

__all__ = ["DecisionProblem"]


class DecisionProblem:
    """An immutable, validated multi-attribute decision problem."""

    def __init__(
        self,
        hierarchy: Hierarchy,
        table: PerformanceTable,
        utilities: Mapping[str, object],
        weights: WeightSystem,
        name: str = "decision-problem",
    ) -> None:
        self.name = name
        self.hierarchy = hierarchy
        self.table = table
        self.utilities: Dict[str, object] = dict(utilities)
        self.weights = weights
        self._validate()

    def _validate(self) -> None:
        hier_attrs = set(self.hierarchy.attribute_names)
        table_attrs = set(self.table.attribute_names)
        util_attrs = set(self.utilities)
        if hier_attrs != table_attrs:
            raise ValueError(
                "hierarchy and performance table disagree on attributes: "
                f"only in hierarchy {sorted(hier_attrs - table_attrs)}, "
                f"only in table {sorted(table_attrs - hier_attrs)}"
            )
        if hier_attrs != util_attrs:
            raise ValueError(
                "hierarchy and utilities disagree on attributes: "
                f"missing utilities {sorted(hier_attrs - util_attrs)}, "
                f"extra utilities {sorted(util_attrs - hier_attrs)}"
            )
        if self.weights.hierarchy is not self.hierarchy:
            # Allow structurally distinct but equivalent hierarchies as
            # long as the node names line up.
            ws_names = {n.name for n in self.weights.hierarchy.nodes()}
            my_names = {n.name for n in self.hierarchy.nodes()}
            if ws_names != my_names:
                raise ValueError(
                    "weight system was built for a different hierarchy"
                )
        for attr in hier_attrs:
            fn_scale = getattr(self.utilities[attr], "scale", None)
            table_scale = self.table.scale_of(attr)
            if fn_scale is not None and fn_scale != table_scale:
                raise ValueError(
                    f"attribute {attr!r}: utility function scale "
                    f"{fn_scale!r} differs from table scale {table_scale!r}"
                )

    # ------------------------------------------------------------------
    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return self.hierarchy.attribute_names

    @property
    def alternative_names(self) -> Tuple[str, ...]:
        return self.table.alternative_names

    @property
    def alternatives(self) -> Tuple[Alternative, ...]:
        return self.table.alternatives

    def utility_function(self, attribute: str) -> object:
        try:
            return self.utilities[attribute]
        except KeyError:
            raise KeyError(f"no utility function for attribute {attribute!r}") from None

    # ------------------------------------------------------------------
    def restricted_to(self, objective: str) -> "DecisionProblem":
        """The sub-problem for ranking by one objective (Fig. 7).

        Keeps only the attributes under ``objective``; the subtree's
        weight system re-roots there with local intervals unchanged.
        """
        sub_hierarchy = self.hierarchy.subtree(objective)
        attrs = sub_hierarchy.attribute_names
        sub_table = PerformanceTable(
            {a: self.table.scale_of(a) for a in attrs},
            [
                Alternative(
                    alt.name,
                    {a: alt.performance(a) for a in attrs},
                    alt.description,
                )
                for alt in self.table.alternatives
            ],
        )
        sub_utilities = {a: self.utilities[a] for a in attrs}
        sub_weights = self.weights.for_subtree(objective)
        return DecisionProblem(
            sub_weights.hierarchy,
            sub_table,
            sub_utilities,
            sub_weights,
            name=f"{self.name}:{objective}",
        )

    def with_alternatives(self, names: Iterable[str]) -> "DecisionProblem":
        """The same problem over a subset of alternatives."""
        return DecisionProblem(
            self.hierarchy,
            self.table.subset(names),
            self.utilities,
            self.weights,
            name=self.name,
        )

    def with_weights(self, weights: WeightSystem) -> "DecisionProblem":
        """The same problem under a different preference model."""
        return DecisionProblem(
            self.hierarchy, self.table, self.utilities, weights, name=self.name
        )
