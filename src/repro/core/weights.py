"""Imprecise weights over the objective hierarchy (§III, Fig. 5).

The paper elicits "imprecise weights representing the relative
importance of criteria ... along the branches of the hierarchy using a
method based on trade-offs.  Then the attribute weights used in the
multi-attribute additive utility model are assessed by multiplying the
elicited weights in the path from the overall objective to the
respective attributes."

This module implements exactly that:

* each non-root node carries a *local* weight interval among its
  siblings (the trade-off elicitation response),
* a node's *local average* is its interval midpoint normalised over the
  sibling midpoints (so sibling averages sum to 1),
* an attribute's *global* weight interval is the product of local
  interval bounds along the root → leaf path, and its global average is
  the product of local averages — which is why the Fig. 5 ``avg``
  column sums to exactly 1.000 while the ``low``/``upp`` columns do not
  (0.806 and 1.193 in the paper: bounds are **not** renormalised).

Elicitation helpers for the ablation benches (rank-order centroid,
rank-sum, equal weights, swing) live at the bottom.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

from .hierarchy import Hierarchy
from .interval import Interval

__all__ = [
    "WeightSystem",
    "rank_order_centroid",
    "rank_sum_weights",
    "equal_weights",
    "swing_weights",
    "tradeoff_intervals",
]

_TOL = 1e-9


class WeightSystem:
    """Local weight intervals for every non-root node of a hierarchy.

    The mapping ``local`` assigns each non-root objective its elicited
    interval.  Intervals are validated per sibling group: bounds must be
    non-negative, midpoints must not all be zero, and the group's box
    must intersect the weight simplex (``sum of lowers <= 1 <= sum of
    uppers``) so that interval-constrained Monte Carlo sampling and the
    LP analyses have a non-empty feasible region.
    """

    def __init__(self, hierarchy: Hierarchy, local: Mapping[str, Interval]) -> None:
        self._hierarchy = hierarchy
        self._local: Dict[str, Interval] = dict(local)
        self._local_average: Dict[str, float] = {}
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        expected = {
            node.name
            for node in self._hierarchy.nodes()
            if node.name != self._hierarchy.root.name
        }
        got = set(self._local)
        if expected - got:
            raise ValueError(
                f"missing local weights for objectives: {sorted(expected - got)}"
            )
        if got - expected:
            raise ValueError(
                f"local weights given for unknown objectives: {sorted(got - expected)}"
            )
        for name, interval in self._local.items():
            if interval.lower < -_TOL:
                raise ValueError(
                    f"objective {name!r}: weight interval {interval} is negative"
                )
        for parent in self._hierarchy.nodes():
            if parent.is_leaf:
                continue
            siblings = parent.children
            lowers = sum(self._local[c.name].lower for c in siblings)
            uppers = sum(self._local[c.name].upper for c in siblings)
            mids = sum(self._local[c.name].midpoint for c in siblings)
            if mids <= _TOL:
                raise ValueError(
                    f"children of {parent.name!r} all have zero weight"
                )
            if lowers > 1.0 + 1e-6 or uppers < 1.0 - 1e-6:
                raise ValueError(
                    f"children of {parent.name!r}: weight box "
                    f"[{lowers:.4f}, {uppers:.4f}] does not straddle the "
                    "simplex (sum of lowers must be <= 1 <= sum of uppers)"
                )
            for child in siblings:
                self._local_average[child.name] = (
                    self._local[child.name].midpoint / mids
                )
        self._local_average[self._hierarchy.root.name] = 1.0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_raw_intervals(
        cls, hierarchy: Hierarchy, raw: Mapping[str, Interval]
    ) -> "WeightSystem":
        """Build from unnormalised elicitation responses.

        Trade-off answers arrive on an arbitrary ratio scale; each
        sibling group is rescaled by the sum of its midpoints, which
        places the group's box across the simplex.
        """
        scaled: Dict[str, Interval] = {}
        for parent in hierarchy.nodes():
            if parent.is_leaf:
                continue
            siblings = parent.children
            total_mid = sum(raw[c.name].midpoint for c in siblings)
            if total_mid <= _TOL:
                raise ValueError(
                    f"children of {parent.name!r} all have zero raw weight"
                )
            for child in siblings:
                scaled[child.name] = raw[child.name].scale(1.0 / total_mid)
        return cls(hierarchy, scaled)

    @classmethod
    def precise(
        cls, hierarchy: Hierarchy, values: Mapping[str, float]
    ) -> "WeightSystem":
        """A weight system with degenerate (point) intervals."""
        return cls.from_raw_intervals(
            hierarchy,
            {name: Interval.point(v) for name, v in values.items()},
        )

    @classmethod
    def uniform(cls, hierarchy: Hierarchy) -> "WeightSystem":
        """Equal precise weights within every sibling group."""
        local: Dict[str, Interval] = {}
        for parent in hierarchy.nodes():
            if parent.is_leaf:
                continue
            share = 1.0 / len(parent.children)
            for child in parent.children:
                local[child.name] = Interval.point(share)
        return cls(hierarchy, local)

    # ------------------------------------------------------------------
    # Local accessors
    # ------------------------------------------------------------------
    @property
    def hierarchy(self) -> Hierarchy:
        return self._hierarchy

    def local_interval(self, name: str) -> Interval:
        if name == self._hierarchy.root.name:
            return Interval.point(1.0)
        try:
            return self._local[name]
        except KeyError:
            raise KeyError(f"no local weight for objective {name!r}") from None

    def local_average(self, name: str) -> float:
        """Midpoint normalised over siblings (sums to 1 per group)."""
        try:
            return self._local_average[name]
        except KeyError:
            raise KeyError(f"no local weight for objective {name!r}") from None

    # ------------------------------------------------------------------
    # Global (attribute) weights — Fig. 5
    # ------------------------------------------------------------------
    def node_weight_interval(self, name: str) -> Interval:
        """Product of local intervals along the root -> ``name`` path."""
        result = Interval.point(1.0)
        for node in self._hierarchy.path_to(name):
            result = result * self.local_interval(node.name)
        return result

    def node_weight_average(self, name: str) -> float:
        """Product of normalised local averages along the path."""
        result = 1.0
        for node in self._hierarchy.path_to(name):
            result *= self.local_average(node.name)
        return result

    def attribute_weight_interval(self, attribute: str) -> Interval:
        leaf = self._hierarchy.leaf_for_attribute(attribute)
        return self.node_weight_interval(leaf.name)

    def attribute_weight_average(self, attribute: str) -> float:
        leaf = self._hierarchy.leaf_for_attribute(attribute)
        return self.node_weight_average(leaf.name)

    def attribute_weights(self) -> Dict[str, Interval]:
        """Global weight interval per attribute (Fig. 5 low/upp columns)."""
        return {
            leaf.attribute: self.node_weight_interval(leaf.name)
            for leaf in self._hierarchy.leaves()
        }

    def attribute_averages(self) -> Dict[str, float]:
        """Global average weight per attribute; sums to exactly 1."""
        return {
            leaf.attribute: self.node_weight_average(leaf.name)
            for leaf in self._hierarchy.leaves()
        }

    # ------------------------------------------------------------------
    # Subtree view — ranking "by another objective" (Fig. 7)
    # ------------------------------------------------------------------
    def for_subtree(self, objective: str) -> "WeightSystem":
        """The weight system of the hierarchy rooted at ``objective``.

        Local intervals inside the subtree are unchanged; the subtree
        root's own weight becomes 1 — exactly GMAA's behaviour when the
        user selects "another objective to rank by".
        """
        sub = self._hierarchy.subtree(objective)
        local = {
            node.name: self._local[node.name]
            for node in sub.nodes()
            if node.name != objective
        }
        return WeightSystem(sub, local)

    # ------------------------------------------------------------------
    def replace_local(self, name: str, interval: Interval) -> "WeightSystem":
        """A copy with one local interval replaced (stability sweeps)."""
        if name == self._hierarchy.root.name:
            raise ValueError("cannot replace the root weight")
        local = dict(self._local)
        if name not in local:
            raise KeyError(f"no local weight for objective {name!r}")
        local[name] = interval
        return WeightSystem(self._hierarchy, local)

    def as_precise_averages(self) -> "WeightSystem":
        """Degenerate copy fixing every local weight at its average."""
        local = {
            name: Interval.point(self._local_average[name])
            for name in self._local
        }
        return WeightSystem(self._hierarchy, local)


# ----------------------------------------------------------------------
# Elicitation helpers (surrogate weighting methods for the ablations)
# ----------------------------------------------------------------------

def rank_order_centroid(n: int) -> Tuple[float, ...]:
    """ROC weights for ``n`` criteria ranked from most to least important.

    ``w_k = (1/n) * sum_{i=k}^{n} 1/i`` — the centroid of the simplex
    region consistent with the rank order.  Used by the rank-order
    Monte Carlo ablation as the analytic reference point.
    """
    if n < 1:
        raise ValueError("need at least one criterion")
    return tuple(
        sum(1.0 / i for i in range(k, n + 1)) / n for k in range(1, n + 1)
    )


def rank_sum_weights(n: int) -> Tuple[float, ...]:
    """Rank-sum weights: ``w_k = 2(n + 1 - k) / (n(n + 1))``."""
    if n < 1:
        raise ValueError("need at least one criterion")
    denom = n * (n + 1)
    return tuple(2.0 * (n + 1 - k) / denom for k in range(1, n + 1))


def equal_weights(n: int) -> Tuple[float, ...]:
    if n < 1:
        raise ValueError("need at least one criterion")
    return tuple(1.0 / n for _ in range(n))


def swing_weights(swings: Sequence[float]) -> Tuple[float, ...]:
    """Normalise swing scores (0-100 style) into weights."""
    if not swings:
        raise ValueError("need at least one swing score")
    if any(s < 0 for s in swings):
        raise ValueError("swing scores must be non-negative")
    total = float(sum(swings))
    if total <= 0:
        raise ValueError("at least one swing score must be positive")
    return tuple(s / total for s in swings)


def tradeoff_intervals(
    reference: str,
    ratios: Mapping[str, Interval],
) -> Dict[str, Interval]:
    """Turn trade-off ratio answers into raw local weight intervals.

    The trade-off method asks the DM to compare each sibling against a
    reference sibling: "objective X is between ``lo`` and ``up`` times
    as important as the reference".  The reference itself gets the
    degenerate interval [1, 1]; feed the result to
    :meth:`WeightSystem.from_raw_intervals`.
    """
    for name, ratio in ratios.items():
        if ratio.lower < 0:
            raise ValueError(f"ratio for {name!r} is negative: {ratio}")
    raw = dict(ratios)
    raw[reference] = Interval.point(1.0)
    return raw
