"""The imprecise additive MAUT engine — the paper's core contribution.

``repro.core`` reimplements the decision-analytic machinery of the GMAA
system the paper exercises: objective hierarchies (§II), imprecise
component utilities and hierarchical trade-off weights (§III), the
additive evaluation with minimum/average/maximum overall utilities
(§IV), and the three sensitivity analyses of §V (weight-stability
intervals, LP-based dominance / potential optimality, Monte Carlo
simulation over weights).
"""

from .dominance import (
    DominanceResult,
    dominance_matrix,
    dominates,
    non_dominated,
    potentially_optimal,
    screen,
)
from .genreg import RegistrySpec, generate_problem, preset, write_registry
from .engine import (
    BatchEvaluator,
    CompiledProblem,
    batch_dominance,
    compile_problem,
    rank_matrix,
)
from .elicitation import (
    UtilityElicitation,
    WeightElicitation,
    elicit_weight_system,
)
from .group import GroupDecision, GroupMember, aggregate_weights, borda_ranking
from .hierarchy import Hierarchy, ObjectiveNode
from .interval import Interval, hull, intersect_all
from .model import AdditiveModel, Evaluation, RankedAlternative, evaluate
from .montecarlo import (
    BoxplotSummary,
    MonteCarloResult,
    RankStatistics,
    sample_in_intervals,
    sample_rank_order,
    sample_simplex,
    simulate,
)
from .performance import Alternative, PerformanceTable, UncertainValue
from .problem import DecisionProblem
from .ranking import (
    footrule_distance,
    kendall_tau,
    rank_vector,
    spearman_rho,
    top_k_overlap,
)
from .rankintervals import RankInterval, rank_intervals
from .scales import MISSING, ContinuousScale, DiscreteScale, linguistic_0_3
from .stability import StabilityReport, stability_interval, stability_report
from .utility import (
    MISSING_UTILITY,
    DiscreteUtility,
    PiecewiseLinearUtility,
    banded_discrete_utility,
    linear_utility,
)
from .weights import (
    WeightSystem,
    equal_weights,
    rank_order_centroid,
    rank_sum_weights,
    swing_weights,
    tradeoff_intervals,
)
from .workspace import compile_cached, load, load_compiled, save

__all__ = [
    # batch engine
    "BatchEvaluator",
    "CompiledProblem",
    "compile_problem",
    "batch_dominance",
    "rank_matrix",
    "compile_cached",
    "load_compiled",
    # interval
    "Interval",
    "hull",
    "intersect_all",
    # scales & performances
    "MISSING",
    "DiscreteScale",
    "ContinuousScale",
    "linguistic_0_3",
    "Alternative",
    "PerformanceTable",
    "UncertainValue",
    # utilities
    "MISSING_UTILITY",
    "DiscreteUtility",
    "PiecewiseLinearUtility",
    "linear_utility",
    "banded_discrete_utility",
    # structure & weights
    "Hierarchy",
    "ObjectiveNode",
    "WeightSystem",
    "tradeoff_intervals",
    "rank_order_centroid",
    "rank_sum_weights",
    "equal_weights",
    "swing_weights",
    # problem & evaluation
    "DecisionProblem",
    "AdditiveModel",
    "Evaluation",
    "RankedAlternative",
    "evaluate",
    # sensitivity analyses
    "StabilityReport",
    "stability_interval",
    "stability_report",
    "DominanceResult",
    "dominates",
    "dominance_matrix",
    "non_dominated",
    "potentially_optimal",
    "screen",
    "RankInterval",
    "rank_intervals",
    # elicitation
    "UtilityElicitation",
    "WeightElicitation",
    "elicit_weight_system",
    "MonteCarloResult",
    "RankStatistics",
    "BoxplotSummary",
    "simulate",
    "sample_simplex",
    "sample_rank_order",
    "sample_in_intervals",
    # group decisions
    "GroupMember",
    "GroupDecision",
    "aggregate_weights",
    "borda_ranking",
    # ranking comparison
    "rank_vector",
    "kendall_tau",
    "spearman_rho",
    "footrule_distance",
    "top_k_overlap",
    # persistence
    "save",
    "load",
    # registry generation
    "RegistrySpec",
    "preset",
    "generate_problem",
    "write_registry",
]
