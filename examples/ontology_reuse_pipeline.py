"""The NeOn reuse process end to end: search -> assess -> select -> integrate.

Runs the four reuse activities over the synthetic multimedia corpus:
keyword search across 23 registered candidates, assessment on the 14
criteria (structural metrics + CQ coverage + provenance metadata), MAUT
selection under the Fig. 5 weights with the >70 %-coverage stopping
rule, and integration of the selected ontologies into the M3 network.

Run:  python examples/ontology_reuse_pipeline.py
"""

from repro.casestudy import (
    m3_competency_questions,
    multimedia_registry,
    paper_weight_system,
)
from repro.neon import ReusePipeline
from repro.ontology import Ontology, serialise


def main() -> None:
    registry = multimedia_registry()
    questions = m3_competency_questions()
    target = Ontology(
        "http://repro.example.org/m3",
        label="M3",
        comment="Multimedia, multidomain, multilingual ontology network.",
    )

    pipeline = ReusePipeline(
        registry,
        questions,
        target=target,
        weights=paper_weight_system(),
    )
    report = pipeline.run(
        "multimedia video audio annotation",
        coverage_threshold=0.70,
        run_screening=True,
    )

    print("# Pipeline summary")
    print(report.summary())

    print("\n# Assessment detail for the selected candidates")
    for assessment in report.assessments:
        if assessment.name not in report.selected:
            continue
        coverage = assessment.cq_coverage
        print(
            f"  {assessment.name:16} covers {coverage.n_covered:>3}/100 CQs "
            f"(ValueT {coverage.value_t:.2f}); "
            f"missing facts: {', '.join(assessment.missing_attributes) or 'none'}"
        )

    print("\n# Integration outcome")
    merge = report.merge_report
    print(
        f"  network {merge.network_iri} imports {len(merge.sources)} "
        f"ontologies, {merge.n_entities} entities"
    )
    print(f"  alignment candidates (same local name): {len(merge.collisions)}")
    for link in merge.collisions[:5]:
        print(f"    {link.kind}: {link.first_iri}  ~  {link.second_iri}")

    print("\n# First lines of the serialised network")
    text = serialise(report.network.to_graph(), report.network.prefixes)
    print("\n".join(text.splitlines()[:12]))


if __name__ == "__main__":
    main()
