"""Rebuilding the paper's preferences through elicitation sessions.

§III quantifies preferences by asking the decision maker standard
questions and accepting *interval* answers.  This walkthrough rebuilds
a Fig. 5-like weight system from trade-off sessions along the Fig. 1
hierarchy, and a class of utility functions from probability-
equivalence answers — then evaluates the case study under the freshly
elicited preferences and compares against the paper's.

Run:  python examples/elicitation_walkthrough.py
"""

from repro.casestudy import multimedia_problem
from repro.core import (
    ContinuousScale,
    UtilityElicitation,
    WeightElicitation,
    elicit_weight_system,
    evaluate,
    kendall_tau,
)
from repro.neon import build_hierarchy


def elicit_weights():
    """Trade-off sessions: every objective compared to a reference."""
    hierarchy = build_hierarchy()
    sessions = {}

    # Top level: the DM judges Reliability the most important branch,
    # Reuse Cost the least, each with a band of imprecision.
    top = WeightElicitation(
        ["Reuse Cost", "Understandability", "Integration", "Reliability"],
        reference="Reuse Cost",
    )
    top.compare("Understandability", 1.2, 1.7)   # 1.2-1.7x as important
    top.compare("Integration", 1.6, 2.2)
    top.compare("Reliability", 1.8, 2.4)
    sessions["Reuse Ontology"] = top

    # Within each branch, compare the leaves to the first leaf.
    for parent in hierarchy.nodes():
        if parent.is_leaf or parent.name == "Reuse Ontology":
            continue
        children = [c.name for c in parent.children]
        session = WeightElicitation(children, reference=children[0])
        for i, child in enumerate(children[1:], start=1):
            session.compare(child, 0.7 + 0.1 * i, 1.1 + 0.1 * i)
        sessions[parent.name] = session

    return elicit_weight_system(hierarchy, sessions)


def elicit_utility():
    """Probability equivalence for a reuse-cost attribute (EUR)."""
    scale = ContinuousScale("cost", 0.0, 2000.0, ascending=False, unit="EUR")
    session = UtilityElicitation(scale)
    session.answer(250.0, 0.80, 0.90)   # a 250 EUR candidate: u in [.8, .9]
    session.answer(1000.0, 0.35, 0.50)
    session.answer(1500.0, 0.10, 0.25)
    return session.build()


def main() -> None:
    print("# Utility elicitation (probability equivalence, cost in EUR)")
    fn = elicit_utility()
    for x in (0.0, 250.0, 600.0, 1000.0, 1500.0, 2000.0):
        band = fn.utility(x)
        print(f"  u({x:6.0f}) in [{band.lower:.3f}, {band.upper:.3f}]")

    print("\n# Weight elicitation (trade-offs along the Fig. 1 hierarchy)")
    weights = elicit_weights()
    for attr, avg in sorted(
        weights.attribute_averages().items(), key=lambda kv: -kv[1]
    )[:5]:
        interval = weights.attribute_weight_interval(attr)
        print(f"  {attr:28} avg {avg:.3f}  [{interval.lower:.3f}, {interval.upper:.3f}]")

    print("\n# Case study under the freshly elicited weights")
    paper_problem = multimedia_problem()
    elicited_problem = paper_problem.with_weights(weights)
    paper_ranking = evaluate(paper_problem).names_by_rank
    new_ranking = evaluate(elicited_problem).names_by_rank
    tau = kendall_tau(paper_ranking, new_ranking)
    print(f"  top five: {', '.join(new_ranking[:5])}")
    print(f"  Kendall tau vs the paper's Fig. 5 weights: {tau:.3f}")


if __name__ == "__main__":
    main()
