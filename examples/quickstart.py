"""Quickstart: a small decision problem through the whole DA cycle.

A three-laptop purchase decision with three criteria shows every stage
the paper walks through for the 23 multimedia ontologies: structuring
(hierarchy, scales, performances), preference quantification (imprecise
utilities and weights), evaluation (min/avg/max ranking) and the three
sensitivity analyses.

Run:  python examples/quickstart.py
"""

from repro.core import (
    AdditiveModel,
    Alternative,
    ContinuousScale,
    DecisionProblem,
    Hierarchy,
    Interval,
    MISSING,
    ObjectiveNode,
    PerformanceTable,
    WeightSystem,
    banded_discrete_utility,
    evaluate,
    linear_utility,
    linguistic_0_3,
    screen,
    simulate,
    stability_report,
)


def build_problem() -> DecisionProblem:
    # -- 1. Structuring: scales, alternatives, objective hierarchy ------
    price = ContinuousScale("price", 300.0, 1500.0, ascending=False, unit="EUR")
    battery = linguistic_0_3("battery")
    support = linguistic_0_3("support")

    table = PerformanceTable(
        {"price": price, "battery": battery, "support": support},
        [
            Alternative("BudgetBook", {"price": 450.0, "battery": 1, "support": 1}),
            # support quality of the mid laptop is unknown -> MISSING,
            # which the model maps to the utility interval [0, 1]
            Alternative("MidBook", {"price": 850.0, "battery": 2, "support": MISSING}),
            Alternative("ProBook", {"price": 1400.0, "battery": 3, "support": 3}),
        ],
    )

    hierarchy = Hierarchy(
        ObjectiveNode(
            "best laptop",
            children=[
                ObjectiveNode("cost", attribute="price"),
                ObjectiveNode(
                    "quality",
                    children=[
                        ObjectiveNode("battery life", attribute="battery"),
                        ObjectiveNode("vendor support", attribute="support"),
                    ],
                ),
            ],
        )
    )

    # -- 2. Quantifying preferences: utilities + trade-off weights ------
    utilities = {
        "price": linear_utility(price),
        "battery": banded_discrete_utility(battery),
        "support": banded_discrete_utility(support),
    }
    weights = WeightSystem(
        hierarchy,
        {
            "cost": Interval(0.30, 0.50),       # elicited with imprecision
            "quality": Interval(0.50, 0.70),
            "battery life": Interval(0.40, 0.60),
            "vendor support": Interval(0.40, 0.60),
        },
    )
    return DecisionProblem(hierarchy, table, utilities, weights, name="laptops")


def main() -> None:
    problem = build_problem()

    print("# Hierarchy")
    print(problem.hierarchy.render())

    # -- 3. Evaluation: min / avg / max overall utilities ---------------
    print("\n# Ranking (min / avg / max overall utility)")
    for row in evaluate(problem):
        print(
            f"  {row.rank}. {row.name:10}  "
            f"{row.minimum:.3f} / {row.average:.3f} / {row.maximum:.3f}"
        )

    # -- 4a. Sensitivity: weight-stability intervals ---------------------
    print("\n# Weight stability (best alternative fixed)")
    report = stability_report(problem, mode="best")
    for name, interval in report.intervals.items():
        print(f"  {name:15} [{interval.lower:.3f}, {interval.upper:.3f}]")

    # -- 4b. Sensitivity: dominance / potential optimality ---------------
    screening = screen(AdditiveModel(problem))
    print(f"\n# Screening: survivors = {', '.join(screening.survivors)}")

    # -- 4c. Sensitivity: Monte Carlo over the weight intervals ----------
    mc = simulate(
        problem, method="intervals", n_simulations=5000, seed=42,
        sample_utilities="missing",
    )
    print("\n# Monte Carlo rank statistics (5000 runs)")
    for stats in mc.statistics():
        print(
            f"  {stats.name:10} mode {stats.mode}  "
            f"range {stats.minimum}-{stats.maximum}  mean {stats.mean:.2f}"
        )
    print(f"  ever ranked first: {', '.join(mc.ever_best())}")


if __name__ == "__main__":
    main()
