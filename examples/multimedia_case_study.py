"""The paper's full multimedia case study (§II-§V), figure by figure.

Rebuilds the complete GMAA workspace — the Fig. 1 hierarchy, the 23 x 14
performance table, the Figs. 3-4 component utilities and the Fig. 5
weight intervals — and prints every figure of the paper as text,
followed by the §V sensitivity analyses.

Run:  python examples/multimedia_case_study.py
(The Monte Carlo section runs 10,000 simulations; the whole script
takes a few seconds.)
"""

from repro.casestudy import multimedia_problem
from repro.reporting import (
    figure_1,
    figure_2,
    figure_3,
    figure_4,
    figure_5,
    figure_6,
    figure_7,
    figure_8,
    figure_9,
    figure_10,
    run_monte_carlo,
    screening_summary,
)


def main() -> None:
    problem = multimedia_problem()

    sections = [
        ("Fig. 1 — objective hierarchy", figure_1(problem)),
        ("Fig. 2 — MM ontology performances", figure_2(problem)),
        ("Fig. 3 — component utility for ValueT", figure_3(problem)),
        ("Fig. 4 — imprecise utilities for Purpose reliability", figure_4(problem)),
        ("Fig. 5 — attribute weights", figure_5(problem)),
        ("Fig. 6 — ranking of MM ontologies", figure_6(problem)),
        ("Fig. 7 — ranking for Understandability", figure_7(problem)),
        ("Fig. 8 — weight stability intervals", figure_8(problem)),
        ("§V — dominance / potential optimality", screening_summary(problem)),
    ]
    for title, body in sections:
        print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")
        print(body)

    print(f"\n{'=' * 72}\nFigs. 9-10 — Monte Carlo simulation (10,000 runs)\n{'=' * 72}")
    result = run_monte_carlo(problem)
    print(figure_9(problem, result))
    print()
    print(figure_10(problem, result))
    print(
        f"\never ranked first: {', '.join(result.ever_best())} "
        "(the paper's Media Ontology + Boemie VDO finding)"
    )


if __name__ == "__main__":
    main()
