"""Registry lifecycle: cold batch run, warm cached run, one mutation.

Builds a synthetic registry of workspace JSONs, evaluates it cold
through the sharded runtime with the persistent registry index
attached, runs it again warm (every result served from sqlite, no
compilation or evaluation), then mutates a single workspace and shows
that only the changed problem re-evaluates.

Run:  PYTHONPATH=src python examples/registry_index_workflow.py
"""

import json
import tempfile
import time
from pathlib import Path

from repro.core import workspace
from repro.core.hierarchy import Hierarchy, ObjectiveNode
from repro.core.index import RegistryIndex
from repro.core.interval import Interval
from repro.core.performance import Alternative, PerformanceTable
from repro.core.problem import DecisionProblem
from repro.core.runtime import BatchOptions, ShardedRunner
from repro.core.scales import ContinuousScale
from repro.core.utility import linear_utility
from repro.core.weights import WeightSystem

N_WORKSPACES = 40


def build_registry(directory: Path) -> list:
    """Write a small synthetic registry: one shortlist per workspace."""
    price = ContinuousScale("price", 0.0, 100.0, ascending=False)
    quality = ContinuousScale("quality", 0.0, 10.0)
    hierarchy = Hierarchy(
        ObjectiveNode(
            "overall",
            children=[
                ObjectiveNode("cost", attribute="price"),
                ObjectiveNode("value", attribute="quality"),
            ],
        )
    )
    utilities = {
        "price": linear_utility(price),
        "quality": linear_utility(quality),
    }
    paths = []
    for w in range(N_WORKSPACES):
        table = PerformanceTable(
            {"price": price, "quality": quality},
            [
                Alternative(
                    f"candidate-{a}",
                    {
                        "price": float(10 + ((7 * w + 13 * a) % 80)),
                        "quality": float((3 * w + 5 * a) % 10),
                    },
                )
                for a in range(4)
            ],
        )
        weights = WeightSystem(
            hierarchy,
            {
                "cost": Interval(0.3, 0.7),
                "value": Interval(0.3, 0.7),
            },
        )
        problem = DecisionProblem(
            hierarchy, table, utilities, weights, name=f"shortlist-{w:03d}"
        )
        path = directory / f"shortlist-{w:03d}.json"
        workspace.save(problem, path)
        paths.append(path)
    return paths


def timed(label: str, fn):
    t0 = time.perf_counter()
    result = fn()
    elapsed = (time.perf_counter() - t0) * 1e3
    print(f"{label:<34}: {elapsed:8.1f} ms")
    return result


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="registry-demo-") as tmp:
        tmp = Path(tmp)
        paths = build_registry(tmp)
        print(f"registry: {len(paths)} workspaces in {tmp}\n")

        runner = ShardedRunner(
            workers=1, options=BatchOptions(simulations=500, seed=2012)
        )
        with RegistryIndex(tmp / ".repro-index.sqlite") as index:
            cold = timed(
                "cold run (compile + evaluate)",
                lambda: runner.run(paths, index=index),
            )
            warm = timed(
                "warm run (index hits)",
                lambda: runner.run(paths, index=index),
            )
            print(
                f"\ncold: {cold.n_cached}/{cold.n_workspaces} cached | "
                f"warm: {warm.n_cached}/{warm.n_workspaces} cached | "
                f"identical results: {warm.results == cold.results}\n"
            )

            # mutate exactly one workspace: nudge one performance value
            target = paths[7]
            data = json.loads(target.read_text())
            data["alternatives"][0]["performances"]["quality"] = 9.5
            target.write_text(json.dumps(data, indent=2, sort_keys=True))

            after = timed(
                "after mutating one workspace",
                lambda: runner.run(paths, index=index),
            )
            print(
                f"\nre-evaluated: "
                f"{after.n_workspaces - after.n_cached} workspace(s) "
                f"(cached {after.n_cached}/{after.n_workspaces})"
            )
            changed = [
                i
                for i, (a, b) in enumerate(zip(cold.results, after.results))
                if a != b
            ]
            print(f"rows that changed: {changed} (registry position 7)")
            print(f"\nindex status: {index.status()}")


if __name__ == "__main__":
    main()
