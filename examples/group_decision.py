"""Group decision support over the multimedia selection.

The paper argues (§VI) that admitting imprecise answers "makes the
system suitable for group decision-making, where individual conflicting
views in a group of DMs can be captured through imprecise answers".
Three decision makers weight the Fig. 1 objectives differently; the
example shows each member's ranking, the disagreement profile, and the
consensus rankings under interval intersection and Borda aggregation.

Run:  python examples/group_decision.py
"""

from repro.casestudy import multimedia_problem
from repro.core import GroupDecision, GroupMember, Interval, WeightSystem
from repro.neon import build_hierarchy


def scaled_member(name: str, emphasis: dict) -> GroupMember:
    """A member emphasising some top-level objectives over others.

    ``emphasis`` maps the four branch names to relative importance
    factors; leaves keep uniform local weights with +-20 % imprecision.
    """
    hierarchy = build_hierarchy()
    raw = {}
    for branch in ("Reuse Cost", "Understandability", "Integration", "Reliability"):
        factor = emphasis.get(branch, 1.0)
        raw[branch] = Interval(0.8 * factor, 1.2 * factor)
    for node in hierarchy.nodes():
        if node.is_leaf:
            raw[node.name] = Interval(0.8, 1.2)
    return GroupMember(name, WeightSystem.from_raw_intervals(hierarchy, raw))


def main() -> None:
    problem = multimedia_problem()
    members = [
        scaled_member("economist", {"Reuse Cost": 3.0}),
        scaled_member("engineer", {"Integration": 3.0}),
        scaled_member("maintainer", {"Reliability": 2.0, "Understandability": 2.0}),
    ]
    group = GroupDecision(problem, members)

    print("# Per-member rankings (top five)")
    for name, ranking in group.member_rankings().items():
        print(f"  {name:10} -> {', '.join(ranking[:5])}")

    print("\n# Where the members disagree (0 = consensus, 1 = disjoint)")
    disagreements = group.disagreement()
    for objective, score in sorted(disagreements.items(), key=lambda kv: -kv[1])[:6]:
        print(f"  {objective:30} {score:.2f}")

    print("\n# Group rankings")
    print(f"  hull aggregation:  {', '.join(group.group_ranking('hull')[:5])}")
    print(f"  Borda aggregation: {', '.join(group.borda()[:5])}")

    try:
        consensus = group.group_ranking("intersection")
        print(f"  intersection:      {', '.join(consensus[:5])}")
    except ValueError as err:
        print(f"  intersection:      impossible ({err})")


if __name__ == "__main__":
    main()
