"""Tests for the triple store."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ontology.graph import Literal, TripleGraph
from repro.ontology.vocab import RDF, RDFS, XSD

EX = "http://example.org/"


def sample_graph() -> TripleGraph:
    g = TripleGraph()
    g.add(EX + "a", RDF.type, EX + "Widget")
    g.add(EX + "a", RDFS.label, Literal.string("widget a"))
    g.add(EX + "b", RDF.type, EX + "Widget")
    g.add(EX + "b", RDFS.subClassOf, EX + "a")
    return g


class TestLiteral:
    def test_lang_xor_datatype(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=XSD.string, lang="en")

    def test_constructors(self):
        assert Literal.integer(3).datatype == XSD.integer
        assert Literal.decimal(1.5).datatype == XSD.decimal
        assert Literal.boolean(True).value == "true"
        assert Literal.string("hi", lang="en").lang == "en"

    def test_hashable_equality(self):
        assert Literal("a") == Literal("a")
        assert Literal("a") != Literal("a", lang="en")
        assert len({Literal("a"), Literal("a")}) == 1


class TestMutation:
    def test_add_and_contains(self):
        g = sample_graph()
        assert (EX + "a", RDF.type, EX + "Widget") in g
        assert len(g) == 4

    def test_add_duplicate(self):
        g = sample_graph()
        assert not g.add(EX + "a", RDF.type, EX + "Widget")
        assert len(g) == 4

    def test_discard(self):
        g = sample_graph()
        assert g.discard(EX + "a", RDF.type, EX + "Widget")
        assert (EX + "a", RDF.type, EX + "Widget") not in g
        assert len(g) == 3
        assert not g.discard(EX + "a", RDF.type, EX + "Widget")

    def test_validation(self):
        g = TripleGraph()
        with pytest.raises(ValueError):
            g.add("", RDF.type, EX)
        with pytest.raises(ValueError):
            g.add(EX, "", EX)
        with pytest.raises(ValueError):
            g.add(EX, "_:blank", EX)
        with pytest.raises(ValueError):
            g.add(EX, RDF.type, "")

    def test_update_counts_new(self):
        g = TripleGraph()
        added = g.update(sample_graph())
        assert added == 4
        assert g.update(sample_graph()) == 0


class TestPatterns:
    def test_spo_patterns(self):
        g = sample_graph()
        assert len(list(g.triples(EX + "a", None, None))) == 2
        assert len(list(g.triples(None, RDF.type, None))) == 2
        assert len(list(g.triples(None, None, EX + "Widget"))) == 2
        assert len(list(g.triples(EX + "a", RDF.type, None))) == 1
        assert len(list(g.triples(None, RDF.type, EX + "Widget"))) == 2
        assert len(list(g.triples())) == 4

    def test_no_match(self):
        g = sample_graph()
        assert list(g.triples(EX + "zzz", None, None)) == []
        assert list(g.triples(None, EX + "zzz", None)) == []
        assert list(g.triples(None, None, EX + "zzz")) == []

    def test_subjects_objects_predicates(self):
        g = sample_graph()
        assert set(g.subjects(RDF.type, EX + "Widget")) == {EX + "a", EX + "b"}
        assert set(g.objects(EX + "a", RDF.type)) == {EX + "Widget"}
        assert RDF.type in set(g.predicates(EX + "a"))

    def test_value(self):
        g = sample_graph()
        assert g.value(EX + "a", RDFS.label) == Literal.string("widget a")
        assert g.value(EX + "a", RDFS.comment) is None


class TestWholeGraph:
    def test_copy_independent(self):
        g = sample_graph()
        h = g.copy()
        h.add(EX + "c", RDF.type, EX + "Widget")
        assert len(g) == 4 and len(h) == 5

    def test_union(self):
        g = sample_graph()
        h = TripleGraph([(EX + "c", RDF.type, EX + "Widget")])
        merged = g | h
        assert len(merged) == 5

    def test_equals(self):
        assert sample_graph().equals(sample_graph())
        other = sample_graph()
        other.add(EX + "x", RDF.type, EX + "Widget")
        assert not sample_graph().equals(other)

    def test_bool(self):
        assert sample_graph()
        assert not TripleGraph()


@given(
    st.lists(
        st.tuples(
            st.sampled_from([EX + s for s in "abcde"]),
            st.sampled_from([RDF.type, RDFS.label, RDFS.subClassOf]),
            st.sampled_from([EX + o for o in "xyz"]),
        ),
        max_size=40,
    )
)
def test_store_behaves_like_a_set(triples):
    g = TripleGraph()
    reference = set()
    for t in triples:
        g.add(*t)
        reference.add(t)
    assert len(g) == len(reference)
    assert set(g) == reference
    for t in list(reference)[: len(reference) // 2]:
        g.discard(*t)
        reference.discard(t)
    assert set(g) == reference
    assert len(g) == len(reference)
