"""Tests for the Turtle-subset parser and serialiser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ontology.graph import Literal, TripleGraph
from repro.ontology.turtle import TurtleSyntaxError, parse, serialise
from repro.ontology.vocab import RDF, RDFS, XSD

EX = "http://example.org/ns#"


class TestParsing:
    def test_prefixes_and_a(self):
        g = parse(
            "@prefix ex: <http://example.org/ns#> .\n"
            "@prefix owl: <http://www.w3.org/2002/07/owl#> .\n"
            "ex:Video a owl:Class .\n"
        )
        assert (EX + "Video", RDF.type,
                "http://www.w3.org/2002/07/owl#Class") in g

    def test_sparql_style_prefix(self):
        g = parse("PREFIX ex: <http://example.org/ns#>\nex:a ex:b ex:c .")
        assert len(g) == 1

    def test_base_resolution(self):
        g = parse("@base <http://example.org/ns#> .\n<Video> <p> <Target> .")
        assert (EX + "Video", EX + "p", EX + "Target") in g

    def test_semicolon_and_comma(self):
        g = parse(
            "@prefix ex: <http://example.org/ns#> .\n"
            "ex:a ex:p ex:b , ex:c ;\n   ex:q ex:d .\n"
        )
        assert len(g) == 3
        assert (EX + "a", EX + "q", EX + "d") in g

    def test_trailing_semicolon(self):
        g = parse("@prefix ex: <http://example.org/ns#> .\nex:a ex:p ex:b ; .")
        assert len(g) == 1

    def test_string_literals(self):
        g = parse(
            '@prefix ex: <http://example.org/ns#> .\n'
            'ex:a ex:label "hello" ; ex:note \'single\' .'
        )
        assert (EX + "a", EX + "label", Literal("hello")) in g
        assert (EX + "a", EX + "note", Literal("single")) in g

    def test_long_string(self):
        g = parse(
            '@prefix ex: <http://example.org/ns#> .\n'
            'ex:a ex:doc """line one\nline two""" .'
        )
        value = next(iter(g))[2]
        assert "line one\nline two" == value.value

    def test_escapes(self):
        g = parse(
            '@prefix ex: <http://example.org/ns#> .\n'
            'ex:a ex:p "tab\\there \\"quoted\\" \\u00e9" .'
        )
        value = next(iter(g))[2]
        assert value.value == 'tab\there "quoted" é'

    def test_lang_and_datatype(self):
        g = parse(
            '@prefix ex: <http://example.org/ns#> .\n'
            '@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n'
            'ex:a ex:p "hi"@en ; ex:q "4"^^xsd:int .'
        )
        assert (EX + "a", EX + "p", Literal("hi", lang="en")) in g
        assert (EX + "a", EX + "q", Literal("4", datatype=XSD.base + "int")) in g

    def test_numbers_and_booleans(self):
        g = parse(
            "@prefix ex: <http://example.org/ns#> .\n"
            "ex:a ex:i 42 ; ex:d 1.25 ; ex:e 2e3 ; ex:t true ; ex:f false .\n"
        )
        objs = {p: o for _, p, o in g}
        assert objs[EX + "i"] == Literal("42", datatype=XSD.integer)
        assert objs[EX + "d"] == Literal("1.25", datatype=XSD.decimal)
        assert objs[EX + "e"] == Literal("2e3", datatype=XSD.double)
        assert objs[EX + "t"] == Literal("true", datatype=XSD.boolean)
        assert objs[EX + "f"] == Literal("false", datatype=XSD.boolean)

    def test_integer_then_terminator(self):
        """``1.`` must parse as integer 1 followed by the end of the
        statement, not as a decimal."""
        g = parse("@prefix ex: <http://example.org/ns#> .\nex:a ex:p 1 .")
        assert (EX + "a", EX + "p", Literal("1", datatype=XSD.integer)) in g

    def test_blank_nodes(self):
        g = parse("@prefix ex: <http://example.org/ns#> .\n_:x ex:p _:y .")
        assert ("_:x", EX + "p", "_:y") in g

    def test_comments_ignored(self):
        g = parse(
            "# leading comment\n"
            "@prefix ex: <http://example.org/ns#> . # trailing\n"
            "ex:a ex:p ex:b . # done\n"
        )
        assert len(g) == 1


class TestErrors:
    def test_undeclared_prefix(self):
        with pytest.raises(TurtleSyntaxError) as err:
            parse("ex:a ex:p ex:b .")
        assert "prefix" in str(err.value)

    def test_missing_dot(self):
        with pytest.raises(TurtleSyntaxError):
            parse("@prefix ex: <http://example.org/> .\nex:a ex:p ex:b")

    def test_unsupported_bnode_list(self):
        with pytest.raises(TurtleSyntaxError) as err:
            parse("@prefix ex: <http://e/> .\nex:a ex:p [ ex:q ex:b ] .")
        assert "subset" in str(err.value)

    def test_line_numbers(self):
        with pytest.raises(TurtleSyntaxError) as err:
            parse("@prefix ex: <http://e/> .\n\nex:a ex:p @@ .")
        assert err.value.line == 3

    def test_literal_as_subject(self):
        with pytest.raises(TurtleSyntaxError):
            parse('@prefix ex: <http://e/> .\n"str" ex:p ex:b .')


class TestSerialisation:
    def test_round_trip_sample(self):
        g = TripleGraph()
        g.add(EX + "Video", RDF.type, "http://www.w3.org/2002/07/owl#Class")
        g.add(EX + "Video", RDFS.label, Literal.string("Video", lang="en"))
        g.add(EX + "Video", RDFS.comment, Literal('with "quotes" and \n newline'))
        g.add(EX + "v", EX + "duration", Literal("12.5", datatype=XSD.decimal))
        g.add("_:b0", RDFS.seeAlso, EX + "Video")
        out = serialise(g, {"ex": EX})
        assert parse(out).equals(g)

    def test_uses_prefixes(self):
        g = TripleGraph([(EX + "a", RDF.type, EX + "B")])
        out = serialise(g, {"ex": EX})
        assert "ex:a" in out and "a ex:B" in out

    def test_deterministic(self):
        g = TripleGraph()
        for i in range(10):
            g.add(EX + f"s{i}", RDFS.label, Literal(f"label {i}"))
        assert serialise(g) == serialise(g)


# ----------------------------------------------------------------------
# Round-trip property over random graphs
# ----------------------------------------------------------------------

_iris = st.sampled_from([EX + name for name in ("A", "B", "prop", "value", "x9")])
_literals = st.one_of(
    st.text(
        alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
        max_size=20,
    ).map(Literal),
    st.integers(-1000, 1000).map(Literal.integer),
    st.booleans().map(Literal.boolean),
    st.text(alphabet="abc", min_size=1, max_size=5).map(
        lambda s: Literal(s, lang="en")
    ),
)
_subjects = st.one_of(_iris, st.sampled_from(["_:b1", "_:b2"]))
_objects = st.one_of(_iris, _literals, st.sampled_from(["_:b1", "_:b2"]))


@given(st.lists(st.tuples(_subjects, _iris, _objects), max_size=25))
def test_round_trip_random_graphs(triples):
    g = TripleGraph()
    for s, p, o in triples:
        g.add(s, p, o)
    assert parse(serialise(g, {"ex": EX})).equals(g)
